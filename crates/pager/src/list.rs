//! Append-only paged sequential lists.
//!
//! A [`PagedList`] is the currency of every operator in the evaluation
//! engine: "each of L1 and L2 are sorted lists of directory entries"
//! (Figures 2–6).
//!
//! Two on-page layouts exist, discriminated by the page header word
//! (see [`crate::PageFormat`]):
//!
//! * **v1** (the seed format, still the default): the header holds the
//!   record count; records follow as `[u32 len][bytes]`.
//! * **v2** (compressed): the header is `PAGE_V2_MARKER | count`; each
//!   record is `[varint shared][vbytes key-suffix][vbytes body]`, where
//!   the key is the record's reverse-DN sort key stored as a delta
//!   against its predecessor on the page (sorted neighbors share long
//!   prefixes by construction) and the body is the record's slim
//!   encoding ([`Record::encode_body`], attribute names interned).
//!   The first record of a page always has `shared = 0`, so every page
//!   decodes independently.
//!
//! Readers dispatch on the per-page header, so lists of both formats
//! coexist on one device. Scanning a list reads each of its pages
//! exactly once (one frame pinned at a time); writing a list of `n`
//! records of size `s` allocates and writes `⌈n/B⌉` pages where `B` is
//! the blocking factor for `s`. These two facts are what make the
//! operators' measured I/O match the paper's `O(|L|/B)` bounds — v2
//! raises `B`, lowering the constant, without touching the accounting.

use crate::disk::{PageId, PAGE_HEADER_BYTES};
use crate::error::{PagerError, PagerResult};
use crate::record::{codec, PageCtx, Record, LEN_PREFIX_BYTES};
use crate::{PageFormat, Pager};
use std::marker::PhantomData;
use std::sync::Arc;

/// Header-word marker bit distinguishing v2 pages from v1 (whose counts
/// can never reach this bit for any plausible page size).
pub const PAGE_V2_MARKER: u32 = 0x0200_0000;
const PAGE_COUNT_MASK: u32 = 0x00FF_FFFF;

/// Length of the longest common prefix of `a` and `b`.
pub(crate) fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn page_err(page: PageId, e: PagerError) -> PagerError {
    match e {
        PagerError::CorruptRecord { detail } => PagerError::CorruptPage { page, detail },
        other => other,
    }
}

/// Parse a page header: `(is_v2, record_count)` with plausibility guards
/// (a corrupt count must not drive unbounded allocation).
fn parse_header(page: PageId, data: &[u8]) -> PagerResult<(bool, usize)> {
    let header = u32::from_le_bytes(data[..4].try_into().unwrap());
    if header & PAGE_V2_MARKER != 0 {
        if header & !(PAGE_V2_MARKER | PAGE_COUNT_MASK) != 0 {
            return Err(PagerError::CorruptPage {
                page,
                detail: format!("unknown page-format bits in header {header:#x}"),
            });
        }
        let count = (header & PAGE_COUNT_MASK) as usize;
        // A v2 record frame is at least 3 bytes (three 1-byte varints).
        if count > data.len() / 3 {
            return Err(PagerError::CorruptPage {
                page,
                detail: format!("implausible record count {count}"),
            });
        }
        Ok((true, count))
    } else {
        let count = header as usize;
        if count > data.len() / LEN_PREFIX_BYTES {
            return Err(PagerError::CorruptPage {
                page,
                detail: format!("implausible record count {count}"),
            });
        }
        Ok((false, count))
    }
}

/// Walk every record on a page, either format, calling
/// `f(slot, key, body, split)`. For v1 pages `key` is empty and `split`
/// false (the body is a full [`Record::encode`] image); for v2 pages the
/// key is materialized from the prefix deltas and `split` is true (the
/// body is a [`Record::encode_body`] image).
fn walk_records<'a>(
    page: PageId,
    data: &'a [u8],
    mut f: impl FnMut(usize, &[u8], &'a [u8], bool) -> PagerResult<()>,
) -> PagerResult<()> {
    let (v2, count) = parse_header(page, data)?;
    if v2 {
        let mut r = codec::Reader::new(&data[PAGE_HEADER_BYTES..]);
        let mut key: Vec<u8> = Vec::new();
        for idx in 0..count {
            let shared = r.get_varint().map_err(|e| page_err(page, e))? as usize;
            let suffix = r.get_vbytes().map_err(|e| page_err(page, e))?;
            let body = r.get_vbytes().map_err(|e| page_err(page, e))?;
            if shared > key.len() || (idx == 0 && shared != 0) {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: format!("shared prefix {shared} exceeds previous key"),
                });
            }
            key.truncate(shared);
            key.extend_from_slice(suffix);
            f(idx, &key, body, true)?;
        }
    } else {
        let mut pos = PAGE_HEADER_BYTES;
        for idx in 0..count {
            if pos + LEN_PREFIX_BYTES > data.len() {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: "record prefix past page end".into(),
                });
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            pos += LEN_PREFIX_BYTES;
            if pos + len > data.len() {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: "record body past page end".into(),
                });
            }
            f(idx, &[], &data[pos..pos + len], false)?;
            pos += len;
        }
    }
    Ok(())
}

/// Fetch `page` and decode every record on it (shared with the
/// journal's live lists, which splice single pages in place).
pub fn read_page_records<T: Record>(pager: &Pager, page: PageId) -> PagerResult<Vec<T>> {
    let guard = pager.pool().fetch(page)?;
    let ctx = pager.ctx();
    guard.with(|data| {
        let mut out = Vec::new();
        walk_records(page, data, |_, key, body, split| {
            out.push(if split {
                T::decode_body(key, body, &ctx)?
            } else {
                T::decode(body)?
            });
            Ok(())
        })?;
        Ok(out)
    })
}

/// A not-yet-decoded record: its sort key and body bytes, lifted off a
/// page. The zero-copy currency of the lazy evaluation paths — boolean
/// merges and hierarchy stacks compare and route records by [`key`]
/// alone and only [`decode`] the ones actually emitted or inspected.
///
/// [`key`]: RawRecord::key
/// [`decode`]: RawRecord::decode
pub struct RawRecord<T> {
    key: Vec<u8>,
    body: Vec<u8>,
    /// True when `body` is a v2 [`Record::encode_body`] image (needs the
    /// key to decode); false when it is a full v1 [`Record::encode`] image.
    split: bool,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for RawRecord<T> {
    fn clone(&self) -> Self {
        RawRecord {
            key: self.key.clone(),
            body: self.body.clone(),
            split: self.split,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for RawRecord<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawRecord")
            .field("key_len", &self.key.len())
            .field("body_len", &self.body.len())
            .field("split", &self.split)
            .finish()
    }
}

impl<T: Record> RawRecord<T> {
    /// The record's sort key (empty for keyless record types on v1
    /// pages — see [`Record::page_key_of_encoded`]).
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// Fully decode the record.
    pub fn decode(&self, ctx: &PageCtx) -> PagerResult<T> {
        if self.split {
            T::decode_body(&self.key, &self.body, ctx)
        } else {
            T::decode(&self.body)
        }
    }
}

/// An immutable, append-only sequence of records stored on pages.
///
/// The page table (`Vec<PageId>`) is kept in memory; like a file system's
/// extent map it is metadata, not data, and is not charged I/O. Lists are
/// cheap to clone (the page table is shared).
pub struct PagedList<T> {
    pager: Pager,
    pages: Arc<Vec<PageId>>,
    /// Cumulative record counts: `cum_counts[i]` = records on pages `0..=i`.
    /// Metadata maintained by the writer; enables positional access.
    cum_counts: Arc<Vec<u64>>,
    len: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PagedList<T> {
    fn clone(&self) -> Self {
        PagedList {
            pager: self.pager.clone(),
            pages: self.pages.clone(),
            cum_counts: self.cum_counts.clone(),
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for PagedList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedList")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl<T: Record> PagedList<T> {
    /// The empty list.
    pub fn empty(pager: &Pager) -> Self {
        PagedList {
            pager: pager.clone(),
            pages: Arc::new(Vec::new()),
            cum_counts: Arc::new(Vec::new()),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Build a list by writing out `items` in order.
    pub fn from_iter<I>(pager: &Pager, items: I) -> PagerResult<Self>
    where
        I: IntoIterator<Item = T>,
    {
        let mut w = ListWriter::new(pager);
        for item in items {
            w.push(&item)?;
        }
        w.finish()
    }

    /// Assemble a list from an existing page table.
    ///
    /// `counts[i]` is the number of records on `pages[i]`; the pages must
    /// already hold records in an on-page format [`ListWriter`] produces
    /// (either version — readers dispatch per page). This is how a
    /// copy-on-write store exposes a point-in-time page table as an
    /// ordinary list without rewriting a single page: the page table is
    /// metadata, so the export costs no I/O.
    pub fn from_parts(pager: &Pager, pages: Vec<PageId>, counts: &[u32]) -> Self {
        debug_assert_eq!(pages.len(), counts.len());
        let mut cum = Vec::with_capacity(counts.len());
        let mut total = 0u64;
        for &c in counts {
            total += u64::from(c);
            cum.push(total);
        }
        PagedList {
            pager: pager.clone(),
            pages: Arc::new(pages),
            cum_counts: Arc::new(cum),
            len: total,
            _marker: PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the list has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the records occupy — the `|L|/B` of the cost
    /// formulas.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// The pager this list lives on.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Sequential scan. Pins one frame at a time; each page is read at most
    /// once per scan.
    pub fn iter(&self) -> ListReader<T> {
        self.iter_from_page(0)
    }

    /// Sequential scan starting at page `page_idx` (earlier pages are
    /// neither read nor decoded). Useful when in-memory fence keys have
    /// already located the relevant range.
    pub fn iter_from_page(&self, page_idx: usize) -> ListReader<T> {
        ListReader {
            list: self.clone(),
            page_idx,
            in_page: Vec::new().into_iter(),
        }
    }

    /// Sequential scan yielding undecoded [`RawRecord`]s: the lazy
    /// entry-point. Same I/O as [`PagedList::iter`], none of the decode
    /// cost for records the caller never materializes.
    pub fn iter_raw(&self) -> RawListReader<T> {
        RawListReader {
            list: self.clone(),
            page_idx: 0,
            in_page: Vec::new().into_iter(),
        }
    }

    /// Record counts per page (metadata; no I/O).
    pub fn page_record_counts(&self) -> Vec<u32> {
        let mut prev = 0u64;
        self.cum_counts
            .iter()
            .map(|&c| {
                let n = (c - prev) as u32;
                prev = c;
                n
            })
            .collect()
    }

    /// Positional access: the record at index `pos` (one page read if
    /// cold), or `None` past the end. Decodes only the requested record —
    /// the index-probe path fetches thousands of single entries, and
    /// decoding whole pages for each would dominate probe cost.
    pub fn get(&self, pos: u64) -> PagerResult<Option<T>> {
        if pos >= self.len {
            return Ok(None);
        }
        let page_idx = self.cum_counts.partition_point(|&c| c <= pos);
        let first_on_page = if page_idx == 0 {
            0
        } else {
            self.cum_counts[page_idx - 1]
        };
        let slot = (pos - first_on_page) as usize;
        let page = self.pages[page_idx];
        let guard = self.pager.pool().fetch(page)?;
        let ctx = self.pager.ctx();
        guard.with(|data| -> PagerResult<Option<T>> {
            let (_, count) = parse_header(page, data)?;
            if slot >= count {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: format!("slot {slot} of {count} records"),
                });
            }
            let mut found = None;
            walk_records(page, data, |idx, key, body, split| {
                if idx == slot {
                    found = Some(if split {
                        T::decode_body(key, body, &ctx)?
                    } else {
                        T::decode(body)?
                    });
                }
                Ok(())
            })?;
            Ok(found)
        })
    }

    /// Materialize the whole list in memory (test/debug helper — not for
    /// use inside external-memory operators).
    pub fn to_vec(&self) -> PagerResult<Vec<T>> {
        self.iter().collect()
    }
}

/// Incremental builder of one page image in the pager's format.
///
/// Shared by [`ListWriter`] and the journal's live lists: feed records
/// with [`PageBuilder::push`] until it reports the page full, then write
/// the image out with [`PageBuilder::seal_to`] (or read
/// [`PageBuilder::header`]/[`PageBuilder::records`] directly).
pub struct PageBuilder {
    format: PageFormat,
    payload: usize,
    bytes: Vec<u8>,
    count: u32,
    last_key: Vec<u8>,
    saved: u64,
    scratch: Vec<u8>,
}

impl PageBuilder {
    /// A builder for pages of `pager`'s size and format.
    pub fn new(pager: &Pager) -> PageBuilder {
        PageBuilder {
            format: pager.format(),
            payload: pager.payload_size(),
            bytes: Vec::new(),
            count: 0,
            last_key: Vec::new(),
            saved: 0,
            scratch: Vec::new(),
        }
    }

    /// Records added to the current page.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True iff the current page has no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The page header word for the current image.
    pub fn header(&self) -> u32 {
        match self.format {
            PageFormat::V1 => self.count,
            PageFormat::V2 => PAGE_V2_MARKER | self.count,
        }
    }

    /// The record-area bytes of the current image.
    pub fn records(&self) -> &[u8] {
        &self.bytes
    }

    /// Bytes the v2 encoding saved versus v1 on this page so far.
    pub fn bytes_saved(&self) -> u64 {
        self.saved
    }

    /// Discard the current image and start a fresh page.
    pub fn reset(&mut self) {
        self.bytes.clear();
        self.count = 0;
        self.last_key.clear();
        self.saved = 0;
    }

    fn append_frame(&mut self, key: &[u8], body: &[u8]) -> PagerResult<bool> {
        debug_assert!(matches!(self.format, PageFormat::V2));
        let shared = if self.count == 0 {
            0
        } else {
            common_prefix_len(&self.last_key, key)
        };
        let frame_len = |shared: usize| {
            let suffix = key.len() - shared;
            codec::varint_len(shared as u64)
                + codec::varint_len(suffix as u64)
                + suffix
                + codec::varint_len(body.len() as u64)
                + body.len()
        };
        // The record must fit even as the first of a page (shared = 0).
        if frame_len(0) > self.payload {
            return Err(PagerError::RecordTooLarge {
                record: key.len() + body.len(),
                payload: self.payload,
            });
        }
        let need = frame_len(shared);
        if self.count > 0 && self.bytes.len() + need > self.payload {
            return Ok(false);
        }
        debug_assert!(self.count < PAGE_COUNT_MASK, "v2 page count overflow");
        codec::put_varint(&mut self.bytes, shared as u64);
        codec::put_vbytes(&mut self.bytes, &key[shared..]);
        codec::put_vbytes(&mut self.bytes, body);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count += 1;
        Ok(true)
    }

    fn append_v1(&mut self, body: &[u8]) -> PagerResult<bool> {
        let need = body.len() + LEN_PREFIX_BYTES;
        if need > self.payload {
            return Err(PagerError::RecordTooLarge {
                record: body.len(),
                payload: self.payload - LEN_PREFIX_BYTES,
            });
        }
        if self.count > 0 && self.bytes.len() + need > self.payload {
            return Ok(false);
        }
        self.bytes
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(body);
        self.count += 1;
        Ok(true)
    }

    /// Add `item` to the page. `Ok(true)` = added; `Ok(false)` = the page
    /// is full (seal it and retry); `Err` = the record can fit on no page.
    pub fn push<T: Record>(&mut self, item: &T, ctx: &PageCtx) -> PagerResult<bool> {
        match self.format {
            PageFormat::V1 => {
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                item.encode(&mut scratch);
                let r = self.append_v1(&scratch);
                self.scratch = scratch;
                r
            }
            PageFormat::V2 => {
                let key = item.page_key().unwrap_or_default();
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                item.encode_body(&mut scratch, ctx);
                let before = self.bytes.len();
                let r = self.append_frame(&key, &scratch);
                if let Ok(true) = r {
                    let v1_cost = item.encoded_len() + LEN_PREFIX_BYTES;
                    let v2_cost = self.bytes.len() - before;
                    self.saved += (v1_cost.saturating_sub(v2_cost)) as u64;
                }
                self.scratch = scratch;
                r
            }
        }
    }

    /// Add an undecoded record. When the raw image's encoding matches the
    /// page format its bytes pass through verbatim (no decode); otherwise
    /// it is transparently decoded and re-encoded.
    pub fn push_raw<T: Record>(&mut self, raw: &RawRecord<T>, ctx: &PageCtx) -> PagerResult<bool> {
        match (self.format, raw.split) {
            (PageFormat::V1, false) => self.append_v1(&raw.body),
            (PageFormat::V2, true) => self.append_frame(&raw.key, &raw.body),
            _ => {
                let item = raw.decode(ctx)?;
                self.push(&item, ctx)
            }
        }
    }

    /// Write the image onto `page` (zero-filling the rest of the frame),
    /// credit the pool's compression-savings counter, and reset the
    /// builder for the next page. Returns the record count written.
    pub fn seal_to(&mut self, pager: &Pager, page: PageId) -> PagerResult<u32> {
        let guard = pager.pool().fetch_zeroed(page)?;
        guard.with_mut(|data| {
            // A reclaimed id may still have a stale frame resident:
            // overwrite the whole page, not just the prefix.
            data.fill(0);
            data[..4].copy_from_slice(&self.header().to_le_bytes());
            data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + self.bytes.len()]
                .copy_from_slice(&self.bytes);
        });
        if self.saved > 0 {
            pager.pool().note_compression_saved(self.saved);
        }
        let count = self.count;
        self.reset();
        Ok(count)
    }
}

/// Streaming writer producing a [`PagedList`].
pub struct ListWriter<T> {
    pager: Pager,
    pages: Vec<PageId>,
    cum_counts: Vec<u64>,
    builder: PageBuilder,
    len: u64,
    _marker: PhantomData<fn(T)>,
}

impl<T: Record> ListWriter<T> {
    /// Start writing a fresh list on `pager`.
    pub fn new(pager: &Pager) -> Self {
        ListWriter {
            pager: pager.clone(),
            pages: Vec::new(),
            cum_counts: Vec::new(),
            builder: PageBuilder::new(pager),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one record.
    pub fn push(&mut self, item: &T) -> PagerResult<()> {
        loop {
            if self.builder.push(item, &self.pager.ctx())? {
                self.len += 1;
                return Ok(());
            }
            self.seal_page()?;
        }
    }

    /// Append an undecoded record (byte passthrough when the raw image
    /// matches the pager's format — the lazy merge paths' fast lane).
    pub fn push_raw(&mut self, raw: &RawRecord<T>) -> PagerResult<()> {
        loop {
            if self.builder.push_raw(raw, &self.pager.ctx())? {
                self.len += 1;
                return Ok(());
            }
            self.seal_page()?;
        }
    }

    fn seal_page(&mut self) -> PagerResult<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let page = self.pager.pool().allocate();
        self.builder.seal_to(&self.pager, page)?;
        self.pages.push(page);
        self.cum_counts.push(self.len);
        Ok(())
    }

    /// Seal the final page and return the finished list.
    pub fn finish(mut self) -> PagerResult<PagedList<T>> {
        self.seal_page()?;
        Ok(PagedList {
            pager: self.pager,
            pages: Arc::new(std::mem::take(&mut self.pages)),
            cum_counts: Arc::new(std::mem::take(&mut self.cum_counts)),
            len: self.len,
            _marker: PhantomData,
        })
    }
}

/// Sequential reader over a [`PagedList`].
///
/// Decodes one page at a time into a small in-memory batch; holds no pins
/// between `next` calls, so any number of readers can run under a small
/// frame budget (the K-way merge in [`crate::extsort`] relies on this).
pub struct ListReader<T> {
    list: PagedList<T>,
    page_idx: usize,
    in_page: std::vec::IntoIter<T>,
}

impl<T: Record> ListReader<T> {
    fn load_next_page(&mut self) -> PagerResult<bool> {
        loop {
            if self.page_idx >= self.list.pages.len() {
                return Ok(false);
            }
            let page = self.list.pages[self.page_idx];
            self.page_idx += 1;
            let guard = self.list.pager.pool().fetch(page)?;
            let ctx = self.list.pager.ctx();
            let mut items = Vec::new();
            guard.with(|data| -> PagerResult<()> {
                walk_records(page, data, |_, key, body, split| {
                    items.push(if split {
                        T::decode_body(key, body, &ctx)?
                    } else {
                        T::decode(body)?
                    });
                    Ok(())
                })
            })?;
            if !items.is_empty() {
                self.in_page = items.into_iter();
                return Ok(true);
            }
        }
    }
}

impl<T: Record> Iterator for ListReader<T> {
    type Item = PagerResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.in_page.next() {
                return Some(Ok(item));
            }
            match self.load_next_page() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Sequential reader yielding [`RawRecord`]s: the same page-at-a-time
/// I/O pattern as [`ListReader`], but records stay undecoded. For v1
/// pages of keyed types the key is extracted via
/// [`Record::page_key_of_encoded`] without a full decode.
pub struct RawListReader<T> {
    list: PagedList<T>,
    page_idx: usize,
    in_page: std::vec::IntoIter<RawRecord<T>>,
}

impl<T: Record> RawListReader<T> {
    fn load_next_page(&mut self) -> PagerResult<bool> {
        loop {
            if self.page_idx >= self.list.pages.len() {
                return Ok(false);
            }
            let page = self.list.pages[self.page_idx];
            self.page_idx += 1;
            let guard = self.list.pager.pool().fetch(page)?;
            let mut items: Vec<RawRecord<T>> = Vec::new();
            guard.with(|data| -> PagerResult<()> {
                walk_records(page, data, |_, key, body, split| {
                    let key = if split {
                        key.to_vec()
                    } else {
                        T::page_key_of_encoded(body)?.unwrap_or_default()
                    };
                    items.push(RawRecord {
                        key,
                        body: body.to_vec(),
                        split,
                        _marker: PhantomData,
                    });
                    Ok(())
                })
            })?;
            if !items.is_empty() {
                self.in_page = items.into_iter();
                return Ok(true);
            }
        }
    }
}

impl<T: Record> Iterator for RawListReader<T> {
    type Item = PagerResult<RawRecord<T>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.in_page.next() {
                return Some(Ok(item));
            }
            match self.load_next_page() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tiny_pager, PoolConfig};

    fn tiny_compressed() -> Pager {
        Pager::custom(256, PoolConfig::new(8), PageFormat::V2)
    }

    /// A keyed test record exercising the full v2 hook surface: the key
    /// carries the name, the body only the value (plus a flag mirroring
    /// Entry's reconstructible-DN trick).
    #[derive(Debug, Clone, PartialEq)]
    struct Keyed {
        name: String,
        value: u64,
    }

    impl Record for Keyed {
        fn encode(&self, out: &mut Vec<u8>) {
            codec::put_str(&mut *out, &self.name);
            codec::put_u64(out, self.value);
        }
        fn decode(bytes: &[u8]) -> PagerResult<Self> {
            let mut r = codec::Reader::new(bytes);
            let name = r.get_str()?.to_string();
            let value = r.get_u64()?;
            r.finish()?;
            Ok(Keyed { name, value })
        }
        fn page_key(&self) -> Option<Vec<u8>> {
            Some(self.name.as_bytes().to_vec())
        }
        fn page_key_of_encoded(bytes: &[u8]) -> PagerResult<Option<Vec<u8>>> {
            let mut r = codec::Reader::new(bytes);
            Ok(Some(r.get_bytes()?.to_vec()))
        }
        fn encode_body(&self, out: &mut Vec<u8>, _ctx: &PageCtx) {
            codec::put_varint(out, self.value);
        }
        fn decode_body(key: &[u8], body: &[u8], _ctx: &PageCtx) -> PagerResult<Self> {
            let name = std::str::from_utf8(key)
                .map_err(|e| PagerError::CorruptRecord {
                    detail: format!("invalid utf-8 key: {e}"),
                })?
                .to_string();
            let mut r = codec::Reader::new(body);
            let value = r.get_varint()?;
            r.finish()?;
            Ok(Keyed { name, value })
        }
    }

    fn keyed_items(n: u64) -> Vec<Keyed> {
        (0..n)
            .map(|i| Keyed {
                name: format!("common=prefix, shared=by, all=records, item={i:05}"),
                value: i,
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_order_and_values() {
        let pager = tiny_pager();
        let items: Vec<u64> = (0..500).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.len(), 500);
        assert!(list.num_pages() > 1);
        assert_eq!(list.to_vec().unwrap(), items);
    }

    #[test]
    fn empty_list_behaves() {
        let pager = tiny_pager();
        let list: PagedList<u64> = PagedList::empty(&pager);
        assert!(list.is_empty());
        assert_eq!(list.num_pages(), 0);
        assert_eq!(list.to_vec().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn variable_sized_records_roundtrip() {
        let pager = tiny_pager();
        let items: Vec<String> = (0..100).map(|i| "x".repeat(i % 40)).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.to_vec().unwrap(), items);
    }

    #[test]
    fn scan_io_is_one_read_per_page_when_cold() {
        let pager = tiny_pager();
        let list = PagedList::from_iter(&pager, 0u64..2000).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let _ = list.to_vec().unwrap();
        let io = pager.io();
        assert_eq!(io.reads, list.num_pages());
        assert_eq!(io.writes, 0);
    }

    #[test]
    fn write_io_is_about_one_write_per_page() {
        let pager = tiny_pager();
        pager.reset_io();
        let list = PagedList::from_iter(&pager, 0u64..2000).unwrap();
        pager.flush().unwrap();
        let io = pager.io();
        assert_eq!(io.writes, list.num_pages());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let pager = tiny_pager(); // 256-byte pages
        let huge = vec![0u8; 5000];
        let mut w: ListWriter<Vec<u8>> = ListWriter::new(&pager);
        assert!(matches!(
            w.push(&huge),
            Err(PagerError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn positional_get_matches_iteration() {
        let pager = tiny_pager();
        let items: Vec<String> = (0..300).map(|i| format!("item-{i:03}")).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        for (i, want) in items.iter().enumerate() {
            assert_eq!(list.get(i as u64).unwrap().as_ref(), Some(want));
        }
        assert_eq!(list.get(300).unwrap(), None);
        assert_eq!(list.get(u64::MAX).unwrap(), None);
    }

    #[test]
    fn positional_get_reads_one_page() {
        let pager = tiny_pager();
        let list = PagedList::from_iter(&pager, 0u64..1000).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        assert_eq!(list.get(500).unwrap(), Some(500));
        assert_eq!(pager.io().reads, 1);
    }

    #[test]
    fn blocking_factor_matches_page_count() {
        let pager = tiny_pager();
        let n = 1000u64;
        let list = PagedList::from_iter(&pager, 0..n).unwrap();
        let b = pager.blocking_factor(8) as u64;
        assert_eq!(list.num_pages(), n.div_ceil(b));
    }

    #[test]
    fn v2_roundtrip_preserves_order_and_values() {
        let pager = tiny_compressed();
        let items = keyed_items(300);
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.to_vec().unwrap(), items);
        // Positional access decodes through the delta chain too.
        for (i, want) in items.iter().enumerate() {
            assert_eq!(list.get(i as u64).unwrap().as_ref(), Some(want));
        }
    }

    #[test]
    fn v2_packs_more_records_per_page() {
        let items = keyed_items(300);
        let v1 = PagedList::from_iter(&tiny_pager(), items.clone()).unwrap();
        let pager2 = tiny_compressed();
        let v2 = PagedList::from_iter(&pager2, items).unwrap();
        assert!(
            v2.num_pages() * 2 <= v1.num_pages(),
            "prefix compression should at least halve {} v1 pages, got {}",
            v1.num_pages(),
            v2.num_pages()
        );
        assert!(pager2.pool().metrics().compressed_bytes_saved > 0);
    }

    #[test]
    fn v2_scan_io_is_one_read_per_page_when_cold() {
        let pager = tiny_compressed();
        let list = PagedList::from_iter(&pager, keyed_items(500)).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let _ = list.to_vec().unwrap();
        assert_eq!(pager.io().reads, list.num_pages());
    }

    #[test]
    fn raw_iteration_exposes_keys_without_decode() {
        for pager in [tiny_pager(), tiny_compressed()] {
            let items = keyed_items(100);
            let list = PagedList::from_iter(&pager, items.clone()).unwrap();
            let keys: Vec<Vec<u8>> = list
                .iter_raw()
                .map(|r| r.unwrap().key().to_vec())
                .collect();
            let want: Vec<Vec<u8>> = items
                .iter()
                .map(|k| k.name.as_bytes().to_vec())
                .collect();
            assert_eq!(keys, want);
        }
    }

    #[test]
    fn push_raw_passthrough_roundtrips() {
        for pager in [tiny_pager(), tiny_compressed()] {
            let items = keyed_items(150);
            let src = PagedList::from_iter(&pager, items.clone()).unwrap();
            let mut w: ListWriter<Keyed> = ListWriter::new(&pager);
            for raw in src.iter_raw() {
                w.push_raw(&raw.unwrap()).unwrap();
            }
            let copy = w.finish().unwrap();
            assert_eq!(copy.to_vec().unwrap(), items);
            assert_eq!(copy.num_pages(), src.num_pages());
        }
    }

    #[test]
    fn raw_records_decode_lazily() {
        let pager = tiny_compressed();
        let items = keyed_items(50);
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        let ctx = pager.ctx();
        let raws: Vec<RawRecord<Keyed>> =
            list.iter_raw().collect::<PagerResult<_>>().unwrap();
        let decoded: Vec<Keyed> = raws.iter().map(|r| r.decode(&ctx).unwrap()).collect();
        assert_eq!(decoded, items);
    }

    #[test]
    fn keyless_records_survive_v2_pages() {
        // Records without page keys still ride v2 framing (empty key).
        let pager = tiny_compressed();
        let items: Vec<u64> = (0..500).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.to_vec().unwrap(), items);
    }

    #[test]
    fn corrupt_v2_count_is_rejected() {
        let pager = tiny_compressed();
        let list = PagedList::from_iter(&pager, keyed_items(20)).unwrap();
        // Stamp an implausible count into the first page's header.
        let page = list.pages[0];
        let guard = pager.pool().fetch(page).unwrap();
        guard.with_mut(|d| {
            d[..4].copy_from_slice(&(PAGE_V2_MARKER | 0x00FF_0000).to_le_bytes())
        });
        drop(guard);
        assert!(list.to_vec().is_err());
    }

    #[test]
    fn mixed_format_pages_coexist_in_one_list() {
        // from_parts over pages written in both formats: readers dispatch
        // on each page's header (the journal's replay path relies on it).
        let v1_pager = tiny_pager();
        let a = PagedList::from_iter(&v1_pager, keyed_items(30)).unwrap();
        let mut more = keyed_items(60);
        let tail: Vec<Keyed> = more.split_off(30);
        // Write v2 pages onto the same device by hand-building images.
        let mut builder = PageBuilder {
            format: PageFormat::V2,
            payload: v1_pager.payload_size(),
            bytes: Vec::new(),
            count: 0,
            last_key: Vec::new(),
            saved: 0,
            scratch: Vec::new(),
        };
        let ctx = v1_pager.ctx();
        let mut pages: Vec<PageId> = a.pages.to_vec();
        let mut counts = a.page_record_counts();
        for item in &tail {
            if !builder.push(item, &ctx).unwrap() {
                let page = v1_pager.pool().allocate();
                counts.push(builder.count());
                builder.seal_to(&v1_pager, page).unwrap();
                pages.push(page);
                assert!(builder.push(item, &ctx).unwrap());
            }
        }
        if !builder.is_empty() {
            let page = v1_pager.pool().allocate();
            counts.push(builder.count());
            builder.seal_to(&v1_pager, page).unwrap();
            pages.push(page);
        }
        let mixed: PagedList<Keyed> = PagedList::from_parts(&v1_pager, pages, &counts);
        let mut want = keyed_items(30);
        want.extend(tail);
        assert_eq!(mixed.to_vec().unwrap(), want);
    }
}
