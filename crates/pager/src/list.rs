//! Append-only paged sequential lists.
//!
//! A [`PagedList`] is the currency of every operator in the evaluation
//! engine: "each of L1 and L2 are sorted lists of directory entries"
//! (Figures 2–6). Records are packed into pages with a 4-byte length prefix
//! each; a page's first [`PAGE_HEADER_BYTES`] hold its record count.
//!
//! Scanning a list reads each of its pages exactly once (one frame pinned at
//! a time); writing a list of `n` records of size `s` allocates and writes
//! `⌈n/B⌉` pages where `B` is the blocking factor for `s`. These two facts
//! are what make the operators' measured I/O match the paper's `O(|L|/B)`
//! bounds.

use crate::disk::{PageId, PAGE_HEADER_BYTES};
use crate::error::{PagerError, PagerResult};
use crate::record::{Record, LEN_PREFIX_BYTES};
use crate::Pager;
use std::marker::PhantomData;
use std::sync::Arc;

/// An immutable, append-only sequence of records stored on pages.
///
/// The page table (`Vec<PageId>`) is kept in memory; like a file system's
/// extent map it is metadata, not data, and is not charged I/O. Lists are
/// cheap to clone (the page table is shared).
pub struct PagedList<T> {
    pager: Pager,
    pages: Arc<Vec<PageId>>,
    /// Cumulative record counts: `cum_counts[i]` = records on pages `0..=i`.
    /// Metadata maintained by the writer; enables positional access.
    cum_counts: Arc<Vec<u64>>,
    len: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PagedList<T> {
    fn clone(&self) -> Self {
        PagedList {
            pager: self.pager.clone(),
            pages: self.pages.clone(),
            cum_counts: self.cum_counts.clone(),
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for PagedList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedList")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl<T: Record> PagedList<T> {
    /// The empty list.
    pub fn empty(pager: &Pager) -> Self {
        PagedList {
            pager: pager.clone(),
            pages: Arc::new(Vec::new()),
            cum_counts: Arc::new(Vec::new()),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Build a list by writing out `items` in order.
    pub fn from_iter<I>(pager: &Pager, items: I) -> PagerResult<Self>
    where
        I: IntoIterator<Item = T>,
    {
        let mut w = ListWriter::new(pager);
        for item in items {
            w.push(&item)?;
        }
        w.finish()
    }

    /// Assemble a list from an existing page table.
    ///
    /// `counts[i]` is the number of records on `pages[i]`; the pages must
    /// already hold records in the on-page format [`ListWriter`] produces
    /// (count header, then length-prefixed records). This is how a
    /// copy-on-write store exposes a point-in-time page table as an
    /// ordinary list without rewriting a single page: the page table is
    /// metadata, so the export costs no I/O.
    pub fn from_parts(pager: &Pager, pages: Vec<PageId>, counts: &[u32]) -> Self {
        debug_assert_eq!(pages.len(), counts.len());
        let mut cum = Vec::with_capacity(counts.len());
        let mut total = 0u64;
        for &c in counts {
            total += u64::from(c);
            cum.push(total);
        }
        PagedList {
            pager: pager.clone(),
            pages: Arc::new(pages),
            cum_counts: Arc::new(cum),
            len: total,
            _marker: PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the list has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the records occupy — the `|L|/B` of the cost
    /// formulas.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// The pager this list lives on.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Sequential scan. Pins one frame at a time; each page is read at most
    /// once per scan.
    pub fn iter(&self) -> ListReader<T> {
        self.iter_from_page(0)
    }

    /// Sequential scan starting at page `page_idx` (earlier pages are
    /// neither read nor decoded). Useful when in-memory fence keys have
    /// already located the relevant range.
    pub fn iter_from_page(&self, page_idx: usize) -> ListReader<T> {
        ListReader {
            list: self.clone(),
            page_idx,
            in_page: Vec::new().into_iter(),
        }
    }

    /// Record counts per page (metadata; no I/O).
    pub fn page_record_counts(&self) -> Vec<u32> {
        let mut prev = 0u64;
        self.cum_counts
            .iter()
            .map(|&c| {
                let n = (c - prev) as u32;
                prev = c;
                n
            })
            .collect()
    }

    /// Positional access: the record at index `pos` (one page read if
    /// cold), or `None` past the end. Decodes only the requested record —
    /// the index-probe path fetches thousands of single entries, and
    /// decoding whole pages for each would dominate probe cost.
    pub fn get(&self, pos: u64) -> PagerResult<Option<T>> {
        if pos >= self.len {
            return Ok(None);
        }
        let page_idx = self.cum_counts.partition_point(|&c| c <= pos);
        let first_on_page = if page_idx == 0 {
            0
        } else {
            self.cum_counts[page_idx - 1]
        };
        let slot = (pos - first_on_page) as usize;
        let page = self.pages[page_idx];
        let guard = self.pager.pool().fetch(page)?;
        guard.with(|data| -> PagerResult<Option<T>> {
            let count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
            if slot >= count || count > data.len() / LEN_PREFIX_BYTES {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: format!("slot {slot} of {count} records"),
                });
            }
            let mut off = PAGE_HEADER_BYTES;
            for _ in 0..slot {
                if off + LEN_PREFIX_BYTES > data.len() {
                    return Err(PagerError::CorruptPage {
                        page,
                        detail: "record prefix past page end".into(),
                    });
                }
                let len =
                    u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
                off += LEN_PREFIX_BYTES + len;
            }
            if off + LEN_PREFIX_BYTES > data.len() {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: "record prefix past page end".into(),
                });
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            off += LEN_PREFIX_BYTES;
            if off + len > data.len() {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: "record body past page end".into(),
                });
            }
            Ok(Some(T::decode(&data[off..off + len])?))
        })
    }

    /// Materialize the whole list in memory (test/debug helper — not for
    /// use inside external-memory operators).
    pub fn to_vec(&self) -> PagerResult<Vec<T>> {
        self.iter().collect()
    }
}

/// Streaming writer producing a [`PagedList`].
pub struct ListWriter<T> {
    pager: Pager,
    pages: Vec<PageId>,
    cum_counts: Vec<u64>,
    current: Vec<u8>,
    count_in_page: u32,
    len: u64,
    scratch: Vec<u8>,
    _marker: PhantomData<fn(T)>,
}

impl<T: Record> ListWriter<T> {
    /// Start writing a fresh list on `pager`.
    pub fn new(pager: &Pager) -> Self {
        ListWriter {
            pager: pager.clone(),
            pages: Vec::new(),
            cum_counts: Vec::new(),
            current: Vec::new(),
            count_in_page: 0,
            len: 0,
            scratch: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one record.
    pub fn push(&mut self, item: &T) -> PagerResult<()> {
        self.scratch.clear();
        item.encode(&mut self.scratch);
        let need = self.scratch.len() + LEN_PREFIX_BYTES;
        let payload = self.pager.payload_size();
        if need > payload {
            return Err(PagerError::RecordTooLarge {
                record: self.scratch.len(),
                payload: payload - LEN_PREFIX_BYTES,
            });
        }
        if self.current.len() + need > payload {
            self.seal_page()?;
        }
        self.current
            .extend_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        self.current.extend_from_slice(&self.scratch);
        self.count_in_page += 1;
        self.len += 1;
        Ok(())
    }

    fn seal_page(&mut self) -> PagerResult<()> {
        if self.count_in_page == 0 {
            return Ok(());
        }
        let page = self.pager.pool().allocate();
        let guard = self.pager.pool().fetch_zeroed(page)?;
        guard.with_mut(|data| {
            data[..4].copy_from_slice(&self.count_in_page.to_le_bytes());
            data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + self.current.len()]
                .copy_from_slice(&self.current);
        });
        drop(guard);
        self.pages.push(page);
        self.cum_counts.push(self.len);
        self.current.clear();
        self.count_in_page = 0;
        Ok(())
    }

    /// Seal the final page and return the finished list.
    pub fn finish(mut self) -> PagerResult<PagedList<T>> {
        self.seal_page()?;
        Ok(PagedList {
            pager: self.pager,
            pages: Arc::new(std::mem::take(&mut self.pages)),
            cum_counts: Arc::new(std::mem::take(&mut self.cum_counts)),
            len: self.len,
            _marker: PhantomData,
        })
    }
}

/// Sequential reader over a [`PagedList`].
///
/// Decodes one page at a time into a small in-memory batch; holds no pins
/// between `next` calls, so any number of readers can run under a small
/// frame budget (the K-way merge in [`crate::extsort`] relies on this).
pub struct ListReader<T> {
    list: PagedList<T>,
    page_idx: usize,
    in_page: std::vec::IntoIter<T>,
}

impl<T: Record> ListReader<T> {
    fn load_next_page(&mut self) -> PagerResult<bool> {
        loop {
            if self.page_idx >= self.list.pages.len() {
                return Ok(false);
            }
            let page = self.list.pages[self.page_idx];
            self.page_idx += 1;
            let guard = self.list.pager.pool().fetch(page)?;
            let mut items = Vec::new();
            guard.with(|data| -> PagerResult<()> {
                let count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
                // A page can hold at most payload/prefix records; a
                // larger count is corruption (and must not drive an
                // unbounded allocation).
                if count > data.len() / LEN_PREFIX_BYTES {
                    return Err(PagerError::CorruptPage {
                        page,
                        detail: format!("implausible record count {count}"),
                    });
                }
                let mut pos = PAGE_HEADER_BYTES;
                items.reserve(count);
                for _ in 0..count {
                    if pos + LEN_PREFIX_BYTES > data.len() {
                        return Err(PagerError::CorruptPage {
                            page,
                            detail: "record prefix past page end".into(),
                        });
                    }
                    let len =
                        u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += LEN_PREFIX_BYTES;
                    if pos + len > data.len() {
                        return Err(PagerError::CorruptPage {
                            page,
                            detail: "record body past page end".into(),
                        });
                    }
                    items.push(T::decode(&data[pos..pos + len])?);
                    pos += len;
                }
                Ok(())
            })?;
            if !items.is_empty() {
                self.in_page = items.into_iter();
                return Ok(true);
            }
        }
    }
}

impl<T: Record> Iterator for ListReader<T> {
    type Item = PagerResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.in_page.next() {
                return Some(Ok(item));
            }
            match self.load_next_page() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_pager;

    #[test]
    fn roundtrip_preserves_order_and_values() {
        let pager = tiny_pager();
        let items: Vec<u64> = (0..500).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.len(), 500);
        assert!(list.num_pages() > 1);
        assert_eq!(list.to_vec().unwrap(), items);
    }

    #[test]
    fn empty_list_behaves() {
        let pager = tiny_pager();
        let list: PagedList<u64> = PagedList::empty(&pager);
        assert!(list.is_empty());
        assert_eq!(list.num_pages(), 0);
        assert_eq!(list.to_vec().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn variable_sized_records_roundtrip() {
        let pager = tiny_pager();
        let items: Vec<String> = (0..100).map(|i| "x".repeat(i % 40)).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        assert_eq!(list.to_vec().unwrap(), items);
    }

    #[test]
    fn scan_io_is_one_read_per_page_when_cold() {
        let pager = tiny_pager();
        let list = PagedList::from_iter(&pager, 0u64..2000).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let _ = list.to_vec().unwrap();
        let io = pager.io();
        assert_eq!(io.reads, list.num_pages());
        assert_eq!(io.writes, 0);
    }

    #[test]
    fn write_io_is_about_one_write_per_page() {
        let pager = tiny_pager();
        pager.reset_io();
        let list = PagedList::from_iter(&pager, 0u64..2000).unwrap();
        pager.flush().unwrap();
        let io = pager.io();
        assert_eq!(io.writes, list.num_pages());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let pager = tiny_pager(); // 256-byte pages
        let huge = vec![0u8; 5000];
        let mut w: ListWriter<Vec<u8>> = ListWriter::new(&pager);
        assert!(matches!(
            w.push(&huge),
            Err(PagerError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn positional_get_matches_iteration() {
        let pager = tiny_pager();
        let items: Vec<String> = (0..300).map(|i| format!("item-{i:03}")).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        for (i, want) in items.iter().enumerate() {
            assert_eq!(list.get(i as u64).unwrap().as_ref(), Some(want));
        }
        assert_eq!(list.get(300).unwrap(), None);
        assert_eq!(list.get(u64::MAX).unwrap(), None);
    }

    #[test]
    fn positional_get_reads_one_page() {
        let pager = tiny_pager();
        let list = PagedList::from_iter(&pager, 0u64..1000).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        assert_eq!(list.get(500).unwrap(), Some(500));
        assert_eq!(pager.io().reads, 1);
    }

    #[test]
    fn blocking_factor_matches_page_count() {
        let pager = tiny_pager();
        let n = 1000u64;
        let list = PagedList::from_iter(&pager, 0..n).unwrap();
        let b = pager.blocking_factor(8) as u64;
        assert_eq!(list.num_pages(), n.div_ceil(b));
    }
}
