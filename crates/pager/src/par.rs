//! Scoped worker pool for intra-query parallelism.
//!
//! The paper's evaluator walks the query tree bottom-up; nothing in its
//! cost model requires the walk to be *serial*. Sibling subtrees are
//! data-independent until they meet at their parent operator, so they may
//! be evaluated concurrently — the I/O cost (page transfers) is unchanged,
//! only the wall-clock time shrinks as independent transfers overlap.
//!
//! [`parallel_map`] is the only primitive: run a closure over a batch of
//! items on up to `degree` scoped threads (`std::thread::scope`, no new
//! dependencies), preserving the *sequential* semantics observably:
//!
//! * Results come back in item order, regardless of completion order.
//! * Items are claimed in index order and an error aborts the claiming of
//!   further items, so the reported error is exactly the one sequential
//!   execution would have hit first (the lowest-index failure).
//! * Each worker installs an [`IoShard`] sub-ledger, so callers get a
//!   per-worker I/O breakdown whose sum equals the shared ledger's delta.
//!
//! With `degree <= 1` (or a single item) everything runs inline on the
//! caller's thread — the sequential fallback costs no thread spawn.

use crate::stats::{IoShard, IoSnapshot};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What one worker thread did during a [`parallel_map`] call.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index within the pool (0-based).
    pub worker: usize,
    /// Number of items this worker completed.
    pub tasks: usize,
    /// The worker's I/O sub-ledger for the call.
    pub io: IoSnapshot,
}

/// Apply `f` to every item on up to `degree` scoped worker threads.
///
/// Returns the results in item order plus one [`WorkerReport`] per worker
/// actually used. On error, returns the failure that sequential execution
/// would have reported first: items are claimed in index order, every item
/// claimed before the failing one runs to completion, and the lowest-index
/// error wins.
pub fn parallel_map<T, R, E, F>(
    degree: usize,
    items: Vec<T>,
    f: F,
) -> Result<(Vec<R>, Vec<WorkerReport>), E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = degree.min(n).max(1);
    if workers == 1 {
        // Sequential fallback: same claim order, same first-error rule,
        // still shard-accounted so callers see a uniform report shape.
        let shard = IoShard::new();
        let mut out = Vec::with_capacity(n);
        {
            let _guard = shard.install();
            for (idx, item) in items.into_iter().enumerate() {
                out.push(f(idx, item)?);
            }
        }
        let report = WorkerReport {
            worker: 0,
            tasks: n,
            io: shard.snapshot(),
        };
        return Ok((out, vec![report]));
    }

    // Work claiming: a shared cursor hands out item indices in order; the
    // per-item slots let workers take ownership of a `T` without a global
    // queue lock being held during `f`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);

    struct WorkerOutcome<R, E> {
        worker: usize,
        results: Vec<(usize, R)>,
        error: Option<(usize, E)>,
        io: IoSnapshot,
    }

    let outcomes: Vec<WorkerOutcome<R, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let slots = &slots;
                let cursor = &cursor;
                let failed = &failed;
                let f = &f;
                scope.spawn(move || {
                    let shard = IoShard::new();
                    let mut results = Vec::new();
                    let mut error = None;
                    {
                        let _guard = shard.install();
                        while !failed.load(Ordering::Acquire) {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= slots.len() {
                                break;
                            }
                            let item = slots[idx]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .take()
                                .expect("each slot is claimed exactly once");
                            match f(idx, item) {
                                Ok(r) => results.push((idx, r)),
                                Err(e) => {
                                    failed.store(true, Ordering::Release);
                                    error = Some((idx, e));
                                    break;
                                }
                            }
                        }
                    }
                    WorkerOutcome {
                        worker,
                        results,
                        error,
                        io: shard.snapshot(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });

    // The cursor hands indices out in order, so by the time index `i`
    // failed every index below `i` was already claimed and ran to
    // completion — the minimum-index error is the sequential one.
    let mut first_error: Option<(usize, E)> = None;
    let mut slots_out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut reports = Vec::with_capacity(workers);
    for outcome in outcomes {
        reports.push(WorkerReport {
            worker: outcome.worker,
            tasks: outcome.results.len() + usize::from(outcome.error.is_some()),
            io: outcome.io,
        });
        for (idx, r) in outcome.results {
            slots_out[idx] = Some(r);
        }
        if let Some((idx, e)) = outcome.error {
            if first_error.as_ref().is_none_or(|(i, _)| idx < *i) {
                first_error = Some((idx, e));
            }
        }
    }
    reports.sort_by_key(|r| r.worker);
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let out = slots_out
        .into_iter()
        .map(|r| r.expect("no error, so every item completed"))
        .collect();
    Ok((out, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..40).collect();
        for degree in [1, 2, 4, 8] {
            let (out, reports) =
                parallel_map(degree, items.clone(), |_, x| Ok::<_, ()>(x * 2)).unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
            let total: usize = reports.iter().map(|r| r.tasks).sum();
            assert_eq!(total, items.len());
            assert!(reports.len() <= degree.max(1));
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        // Items 7 and 23 both fail; the reported error must be 7's at any
        // degree — the same error sequential execution reports.
        for degree in [1, 2, 4, 8] {
            let err = parallel_map(degree, (0..40).collect::<Vec<u64>>(), |idx, _| {
                if idx == 7 || idx == 23 {
                    Err(idx)
                } else {
                    Ok(idx)
                }
            })
            .unwrap_err();
            assert_eq!(err, 7, "degree {degree}");
        }
    }

    #[test]
    fn degree_one_runs_inline() {
        let tid = std::thread::current().id();
        let (out, reports) = parallel_map(1, vec![(), ()], |idx, _| {
            assert_eq!(std::thread::current().id(), tid);
            Ok::<_, ()>(idx)
        })
        .unwrap();
        assert_eq!(out, vec![0, 1]);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn worker_shards_partition_the_work() {
        let counter = AtomicU64::new(0);
        let (out, reports) = parallel_map(4, (0..32).collect::<Vec<u64>>(), |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(x)
        })
        .unwrap();
        assert_eq!(out.len(), 32);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(reports.iter().map(|r| r.tasks).sum::<usize>(), 32);
    }
}
