//! Record (de)serialization onto pages.
//!
//! Records are stored length-prefixed. The encoding helpers in [`codec`]
//! are deliberately tiny and hand-rolled: the on-page format is part of the
//! experiment (record size determines the blocking factor `B`), so we keep
//! byte-level control instead of pulling in a serialization framework.

use crate::error::{PagerError, PagerResult};
use crate::intern::Interner;

/// Bytes used for each record's length prefix on a page.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Context threaded through the v2 (compressed) page codec.
///
/// The interner maps attribute names to fixed-width ids directory-wide;
/// it lives on the [`crate::Pager`] so every list written through one
/// pager shares a single table.
pub struct PageCtx<'a> {
    /// Directory-wide attribute-name interner.
    pub interner: &'a Interner,
}

/// A value that can be stored on pages.
///
/// `encode` must be the exact inverse of `decode`; the property tests in
/// this crate and in `netdir-model` check round-tripping.
///
/// The `page_*` / `*_body` hooks feed the v2 compressed page format
/// (see `list.rs`): a record may expose a reverse-DN sort key that the
/// page stores prefix-delta-compressed against its predecessor, plus a
/// slimmer body encoding that omits whatever the key already carries.
/// The defaults make every record keyless with `encode` as its body, so
/// v1-only record types need no changes. These hooks never alter
/// `encode`/`decode` themselves — that wire encoding is frozen.
pub trait Record: Sized {
    /// Append this record's bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a record from exactly the bytes `encode` produced.
    fn decode(bytes: &[u8]) -> PagerResult<Self>;

    /// Encoded size in bytes (default: encode into a scratch buffer).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Sort key stored delta-compressed on v2 pages, or `None` for
    /// keyless records (stored with an empty key).
    fn page_key(&self) -> Option<Vec<u8>> {
        None
    }

    /// Extract the sort key from a full (`encode`) image without a full
    /// decode, for lazy iteration over v1 pages. `None` = keyless.
    fn page_key_of_encoded(bytes: &[u8]) -> PagerResult<Option<Vec<u8>>> {
        let _ = bytes;
        Ok(None)
    }

    /// Body bytes stored alongside the compressed key on v2 pages.
    /// Must round-trip through [`Record::decode_body`] given the same key.
    fn encode_body(&self, out: &mut Vec<u8>, ctx: &PageCtx) {
        let _ = ctx;
        self.encode(out);
    }

    /// Inverse of [`Record::encode_body`].
    fn decode_body(key: &[u8], body: &[u8], ctx: &PageCtx) -> PagerResult<Self> {
        let _ = (key, ctx);
        Self::decode(body)
    }
}

/// Little building blocks for record encodings.
pub mod codec {
    use super::*;

    /// Append a `u32` little-endian.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` little-endian.
    pub fn put_i64(out: &mut Vec<u8>, v: i64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
        put_u32(out, v.len() as u32);
        out.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, v: &str) {
        put_bytes(out, v.as_bytes());
    }

    /// Append a LEB128 varint (7 bits per byte, little-endian groups).
    pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Encoded size of `v` as a varint.
    pub fn varint_len(v: u64) -> usize {
        (1 + (64 - (v | 1).leading_zeros() as usize - 1) / 7).max(1)
    }

    /// Append a varint-length-prefixed byte string (v2 body encodings).
    pub fn put_vbytes(out: &mut Vec<u8>, v: &[u8]) {
        put_varint(out, v.len() as u64);
        out.extend_from_slice(v);
    }

    /// Append a varint-length-prefixed UTF-8 string.
    pub fn put_vstr(out: &mut Vec<u8>, v: &str) {
        put_vbytes(out, v.as_bytes());
    }

    /// Cursor over encoded bytes with checked reads.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Start reading at the front of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        fn take(&mut self, n: usize) -> PagerResult<&'a [u8]> {
            if self.remaining() < n {
                return Err(PagerError::CorruptRecord {
                    detail: format!("wanted {n} bytes, {} remain", self.remaining()),
                });
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Read a single byte.
        pub fn get_u8(&mut self) -> PagerResult<u8> {
            Ok(self.take(1)?[0])
        }

        /// Read a `u32` little-endian.
        pub fn get_u32(&mut self) -> PagerResult<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        /// Read a `u64` little-endian.
        pub fn get_u64(&mut self) -> PagerResult<u64> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Read an `i64` little-endian.
        pub fn get_i64(&mut self) -> PagerResult<i64> {
            Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Read a length-prefixed byte string.
        pub fn get_bytes(&mut self) -> PagerResult<&'a [u8]> {
            let n = self.get_u32()? as usize;
            self.take(n)
        }

        /// Read a LEB128 varint.
        pub fn get_varint(&mut self) -> PagerResult<u64> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = self.get_u8()?;
                if shift >= 64 {
                    return Err(PagerError::CorruptRecord {
                        detail: "varint overflows u64".into(),
                    });
                }
                v |= u64::from(byte & 0x7F) << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }

        /// Read a varint-length-prefixed byte string.
        pub fn get_vbytes(&mut self) -> PagerResult<&'a [u8]> {
            let n = self.get_varint()? as usize;
            self.take(n)
        }

        /// Read a varint-length-prefixed UTF-8 string.
        pub fn get_vstr(&mut self) -> PagerResult<&'a str> {
            let b = self.get_vbytes()?;
            std::str::from_utf8(b).map_err(|e| PagerError::CorruptRecord {
                detail: format!("invalid utf-8: {e}"),
            })
        }

        /// Read a length-prefixed UTF-8 string.
        pub fn get_str(&mut self) -> PagerResult<&'a str> {
            let b = self.get_bytes()?;
            std::str::from_utf8(b).map_err(|e| PagerError::CorruptRecord {
                detail: format!("invalid utf-8: {e}"),
            })
        }

        /// Error unless every byte was consumed.
        pub fn finish(self) -> PagerResult<()> {
            if self.remaining() != 0 {
                return Err(PagerError::CorruptRecord {
                    detail: format!("{} trailing bytes", self.remaining()),
                });
            }
            Ok(())
        }
    }
}

impl Record for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        Ok(bytes.to_vec())
    }
    fn encoded_len(&self) -> usize {
        self.len()
    }
}

impl Record for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, *self);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let v = r.get_u64()?;
        r.finish()?;
        Ok(v)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Record for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_i64(out, *self);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let v = r.get_i64()?;
        r.finish()?;
        Ok(v)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Record for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        String::from_utf8(bytes.to_vec()).map_err(|e| PagerError::CorruptRecord {
            detail: format!("invalid utf-8: {e}"),
        })
    }
    fn encoded_len(&self) -> usize {
        self.len()
    }
}

/// A pair of records, encoded as two length-prefixed fields.
impl<A: Record, B: Record> Record for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut a = Vec::new();
        self.0.encode(&mut a);
        codec::put_bytes(out, &a);
        let mut b = Vec::new();
        self.1.encode(&mut b);
        codec::put_bytes(out, &b);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let a = A::decode(r.get_bytes()?)?;
        let b = B::decode(r.get_bytes()?)?;
        r.finish()?;
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        assert_eq!(u64::decode(&buf).unwrap(), 42);

        let mut buf = Vec::new();
        (-7i64).encode(&mut buf);
        assert_eq!(i64::decode(&buf).unwrap(), -7);

        let mut buf = Vec::new();
        "héllo".to_string().encode(&mut buf);
        assert_eq!(String::decode(&buf).unwrap(), "héllo");

        let mut buf = Vec::new();
        (3u64, "x".to_string()).encode(&mut buf);
        assert_eq!(
            <(u64, String)>::decode(&buf).unwrap(),
            (3u64, "x".to_string())
        );
    }

    #[test]
    fn reader_detects_truncation_and_trailing() {
        let mut buf = Vec::new();
        codec::put_str(&mut buf, "abc");
        let mut r = codec::Reader::new(&buf[..3]);
        assert!(r.get_str().is_err());

        let mut r = codec::Reader::new(&buf);
        r.get_str().unwrap();
        r.finish().unwrap();

        buf.push(0);
        let mut r = codec::Reader::new(&buf);
        r.get_str().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        assert!(String::decode(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn varints_roundtrip_at_every_width() {
        let samples: Vec<u64> = (0..64)
            .flat_map(|b| {
                let v = 1u64 << b;
                [v - 1, v, v + 1]
            })
            .chain([0, u64::MAX])
            .collect();
        for v in samples {
            let mut buf = Vec::new();
            codec::put_varint(&mut buf, v);
            assert_eq!(buf.len(), codec::varint_len(v), "len of {v}");
            let mut r = codec::Reader::new(&buf);
            assert_eq!(r.get_varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        codec::put_varint(&mut buf, u64::MAX);
        let mut r = codec::Reader::new(&buf[..buf.len() - 1]);
        assert!(r.get_varint().is_err());
        // 11 continuation bytes shift past 64 bits.
        let too_long = [0x80u8; 11];
        let mut r = codec::Reader::new(&too_long);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn vbytes_roundtrip() {
        let mut buf = Vec::new();
        codec::put_vstr(&mut buf, "hello");
        assert_eq!(buf.len(), 6); // 1-byte length + 5 bytes
        let mut r = codec::Reader::new(&buf);
        assert_eq!(r.get_vstr().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn encoded_len_matches_encode() {
        let v = (99u64, "hello".to_string());
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(v.encoded_len(), buf.len());
    }
}
