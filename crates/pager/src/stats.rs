//! I/O accounting.
//!
//! Every theorem in the paper is a statement about the number of page
//! transfers. [`IoStats`] is the shared ledger in which the disk layer
//! records each transfer; experiments read a [`IoSnapshot`] before and after
//! an operator to obtain its exact I/O cost.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// Cloning is cheap and clones share the same counters.
#[derive(Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages transferred disk → memory.
    pub reads: u64,
    /// Pages transferred memory → disk.
    pub writes: u64,
    /// Pages allocated on the device.
    pub allocs: u64,
}

impl IoSnapshot {
    /// Total page transfers (reads + writes) — the quantity the paper's
    /// `O(|L|/B)` bounds count.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self - earlier`; the cost of whatever ran
    /// between the two snapshots.
    pub fn since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
        }
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reads + {} writes = {} I/Os ({} pages allocated)",
            self.reads,
            self.writes,
            self.total(),
            self.allocs
        )
    }
}

impl IoStats {
    /// Fresh ledger with all counters at zero.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Count one page read.
    pub fn record_read(&self) {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        IoShard::bump(|c| &c.reads);
    }

    /// Count one page write.
    pub fn record_write(&self) {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        IoShard::bump(|c| &c.writes);
    }

    /// Count one page allocation.
    pub fn record_alloc(&self) {
        self.inner.allocs.fetch_add(1, Ordering::Relaxed);
        IoShard::bump(|c| &c.allocs);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            allocs: self.inner.allocs.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
        self.inner.allocs.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IoStats({:?})", self.snapshot())
    }
}

thread_local! {
    static ACTIVE_SHARD: RefCell<Option<IoShard>> = const { RefCell::new(None) };
}

/// A per-worker I/O sub-ledger.
///
/// The shared [`IoStats`] ledger stays the single source of truth: every
/// transfer is always recorded there. A worker thread may additionally
/// [`install`](IoShard::install) a shard, after which the same events are
/// *also* mirrored into the shard for as long as the returned guard lives.
/// Summing the shards of a worker pool therefore reproduces the ledger's
/// delta exactly — EXPLAIN ANALYZE totals do not change when evaluation
/// goes parallel, they merely gain a per-worker breakdown.
#[derive(Clone, Default)]
pub struct IoShard {
    inner: Arc<Counters>,
}

impl IoShard {
    /// Fresh sub-ledger with all counters at zero.
    pub fn new() -> Self {
        IoShard::default()
    }

    /// Mirror this thread's I/O events into the shard until the guard
    /// drops. Nesting restores the previously installed shard on drop.
    pub fn install(&self) -> ShardGuard {
        let prev = ACTIVE_SHARD.with(|s| s.borrow_mut().replace(self.clone()));
        ShardGuard { prev }
    }

    /// Copy out the shard's counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            allocs: self.inner.allocs.load(Ordering::Relaxed),
        }
    }

    fn bump(field: impl Fn(&Counters) -> &AtomicU64) {
        ACTIVE_SHARD.with(|s| {
            if let Some(shard) = s.borrow().as_ref() {
                field(&shard.inner).fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

impl std::fmt::Debug for IoShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IoShard({:?})", self.snapshot())
    }
}

/// Uninstalls the shard installed by [`IoShard::install`] when dropped.
pub struct ShardGuard {
    prev: Option<IoShard>,
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        ACTIVE_SHARD.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.total(), 3);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_write();
        let delta = s.snapshot().since(before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        a.record_write();
        assert_eq!(b.snapshot().writes, 1);
    }

    #[test]
    fn installed_shard_mirrors_the_ledger() {
        let stats = IoStats::new();
        let shard = IoShard::new();
        stats.record_read(); // before install: ledger only
        {
            let _g = shard.install();
            stats.record_read();
            stats.record_write();
            stats.record_alloc();
        }
        stats.record_write(); // after uninstall: ledger only
        assert_eq!(
            shard.snapshot(),
            IoSnapshot {
                reads: 1,
                writes: 1,
                allocs: 1
            }
        );
        let total = stats.snapshot();
        assert_eq!((total.reads, total.writes, total.allocs), (2, 2, 1));
    }

    #[test]
    fn nested_shards_restore_the_outer_one() {
        let stats = IoStats::new();
        let outer = IoShard::new();
        let inner = IoShard::new();
        let _og = outer.install();
        {
            let _ig = inner.install();
            stats.record_read();
        }
        stats.record_read();
        assert_eq!(inner.snapshot().reads, 1);
        assert_eq!(outer.snapshot().reads, 1);
        assert_eq!(stats.snapshot().reads, 2);
    }
}
