//! Multiway external merge sort.
//!
//! Algorithm `ComputeERAggDV` (Figure 3) sorts its pair list `LP` "based on
//! the lexicographic ordering of the reverse of the dn's in the first
//! column"; with inputs larger than memory that sort is external, and it is
//! the source of the `(|L2|/B · m) · log(|L2|/B · m)` term in Theorem 7.1.
//!
//! Classic two-phase design:
//!   1. **Run formation** — read the input, filling an in-memory buffer of
//!      roughly `fan_in` pages' worth of records, sort it, write a run.
//!   2. **Merge passes** — merge up to `fan_in` runs at a time (one page of
//!      each run resident, courtesy of [`crate::list::ListReader`]'s page-at-a-time
//!      buffering) until one run remains.
//!
//! With `R` initial runs the number of passes is `⌈log_fan_in(R)⌉`, matching
//! the textbook `O(N/B · log_{M/B}(N/B))` bound the paper cites.

use crate::error::PagerResult;
use crate::list::{ListWriter, PagedList};
use crate::par::parallel_map;
use crate::record::Record;
use crate::Pager;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning for the external sort.
#[derive(Debug, Clone, Copy)]
pub struct ExtSortConfig {
    /// Maximum runs merged at once, and the page budget for run formation.
    /// Should be at most `pool frames - 2` to honor the memory budget.
    pub fan_in: usize,
}

impl Default for ExtSortConfig {
    fn default() -> Self {
        ExtSortConfig { fan_in: 6 }
    }
}

/// Sort `input` by the records' natural order.
pub fn external_sort<T>(pager: &Pager, input: &PagedList<T>) -> PagerResult<PagedList<T>>
where
    T: Record + Ord,
{
    external_sort_by(pager, input, ExtSortConfig::default(), |a, b| a.cmp(b))
}

/// Sort `input` by `cmp` with explicit configuration.
///
/// The sort is stable across equal keys (ties broken by input order within
/// a run and by run index across runs).
pub fn external_sort_by<T, F>(
    pager: &Pager,
    input: &PagedList<T>,
    config: ExtSortConfig,
    cmp: F,
) -> PagerResult<PagedList<T>>
where
    T: Record,
    F: Fn(&T, &T) -> Ordering + Copy,
{
    // Clamp from below (a 1-way merge never terminates) AND from above:
    // a merge holds one resident page per input run plus the output
    // page, so `fan_in` beyond `frames - 2` busts the Theorem 7.1
    // memory budget the pool was sized for. A caller-requested fan-in
    // larger than the pool delivers extra merge passes, not extra
    // memory.
    let frame_cap = pager.pool().capacity().saturating_sub(2).max(2);
    let fan_in = config.fan_in.clamp(2, frame_cap);
    let budget_bytes = fan_in * pager.payload_size();

    // Phase 1: run formation.
    let runs = form_runs(pager, input.iter(), budget_bytes, cmp)?;
    merge_all(pager, runs, fan_in, cmp)
}

/// Sort `input` like [`external_sort_by`], forming the initial runs on up
/// to `degree` worker threads.
///
/// The input's pages are partitioned into `degree` contiguous chunks and
/// each worker forms sorted runs over its chunk concurrently, within a
/// per-worker buffer budget of `fan_in / degree` pages (clamped below at
/// one page) so the *combined* run-formation memory stays within the same
/// fan-in budget the sequential sort uses. Runs are then merged serially,
/// exactly as in [`external_sort_by`].
///
/// Output is byte-identical to a stable sequential sort of the same input:
/// a stable sort's output is fully determined by the input order and the
/// comparator, runs are kept in input order, and the merge breaks ties by
/// run index (= input position) — so per-worker run boundaries cannot leak
/// into the result.
pub fn external_sort_by_par<T, F>(
    pager: &Pager,
    input: &PagedList<T>,
    config: ExtSortConfig,
    degree: usize,
    cmp: F,
) -> PagerResult<PagedList<T>>
where
    T: Record + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Copy + Send + Sync,
{
    let frame_cap = pager.pool().capacity().saturating_sub(2).max(2);
    let fan_in = config.fan_in.clamp(2, frame_cap);
    let counts = input.page_record_counts();
    let workers = degree.clamp(1, counts.len().max(1));
    if workers <= 1 {
        return external_sort_by(pager, input, config, cmp);
    }

    // Contiguous page-range chunks, one per worker; (start page, records).
    let pages_per_chunk = counts.len().div_ceil(workers);
    let chunks: Vec<(usize, usize)> = counts
        .chunks(pages_per_chunk)
        .enumerate()
        .map(|(i, chunk)| {
            let start_page = i * pages_per_chunk;
            let records: usize = chunk.iter().map(|&c| c as usize).sum();
            (start_page, records)
        })
        .collect();

    // Per-worker buffer budget: the same clamp discipline as the fan-in
    // clamp above, applied to each worker's share of the budget.
    let per_worker_pages = (fan_in / workers).max(1);
    let budget_bytes = per_worker_pages * pager.payload_size();

    let (chunk_runs, _reports) = parallel_map(workers, chunks, |_, (start_page, records)| {
        form_runs(
            pager,
            input.iter_from_page(start_page).take(records),
            budget_bytes,
            cmp,
        )
    })?;

    let runs: Vec<PagedList<T>> = chunk_runs.into_iter().flatten().collect();
    merge_all(pager, runs, fan_in, cmp)
}

/// Phase 1: read `input`, cutting sorted runs of roughly `budget_bytes`.
fn form_runs<T, F, I>(
    pager: &Pager,
    input: I,
    budget_bytes: usize,
    cmp: F,
) -> PagerResult<Vec<PagedList<T>>>
where
    T: Record,
    F: Fn(&T, &T) -> Ordering + Copy,
    I: Iterator<Item = PagerResult<T>>,
{
    let mut runs: Vec<PagedList<T>> = Vec::new();
    let mut buf: Vec<T> = Vec::new();
    let mut buf_bytes = 0usize;
    for item in input {
        let item = item?;
        buf_bytes += item.encoded_len() + 4;
        buf.push(item);
        if buf_bytes >= budget_bytes {
            runs.push(write_sorted_run(pager, &mut buf, cmp)?);
            buf_bytes = 0;
        }
    }
    if !buf.is_empty() {
        runs.push(write_sorted_run(pager, &mut buf, cmp)?);
    }
    Ok(runs)
}

/// Phase 2: merge `fan_in` runs at a time until one remains.
fn merge_all<T, F>(
    pager: &Pager,
    mut runs: Vec<PagedList<T>>,
    fan_in: usize,
    cmp: F,
) -> PagerResult<PagedList<T>>
where
    T: Record,
    F: Fn(&T, &T) -> Ordering + Copy,
{
    if runs.is_empty() {
        return Ok(PagedList::empty(pager));
    }
    while runs.len() > 1 {
        let mut next: Vec<PagedList<T>> = Vec::new();
        for group in runs.chunks(fan_in) {
            next.push(merge_runs(pager, group, cmp)?);
        }
        runs = next;
    }
    Ok(runs.pop().expect("at least one run"))
}

fn write_sorted_run<T, F>(
    pager: &Pager,
    buf: &mut Vec<T>,
    cmp: F,
) -> PagerResult<PagedList<T>>
where
    T: Record,
    F: Fn(&T, &T) -> Ordering,
{
    buf.sort_by(&cmp);
    let mut w = ListWriter::new(pager);
    for item in buf.drain(..) {
        w.push(&item)?;
    }
    w.finish()
}

struct HeapEntry<T> {
    item: T,
    run: usize,
    seq: u64,
}

fn merge_runs<T, F>(pager: &Pager, runs: &[PagedList<T>], cmp: F) -> PagerResult<PagedList<T>>
where
    T: Record,
    F: Fn(&T, &T) -> Ordering + Copy,
{
    struct Wrapped<T, F> {
        entry: HeapEntry<T>,
        cmp: F,
    }
    impl<T, F: Fn(&T, &T) -> Ordering> PartialEq for Wrapped<T, F> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl<T, F: Fn(&T, &T) -> Ordering> Eq for Wrapped<T, F> {}
    impl<T, F: Fn(&T, &T) -> Ordering> Wrapped<T, F> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; reverse for ascending output.
            // Stability: tie-break on (run, seq) ascending.
            (self.cmp)(&self.entry.item, &other.entry.item)
                .then_with(|| self.entry.run.cmp(&other.entry.run))
                .then_with(|| self.entry.seq.cmp(&other.entry.seq))
                .reverse()
        }
    }
    #[allow(clippy::non_canonical_partial_ord_impl)] // inherent cmp shadows Ord::cmp
    impl<T, F: Fn(&T, &T) -> Ordering> PartialOrd for Wrapped<T, F> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T, F: Fn(&T, &T) -> Ordering> Ord for Wrapped<T, F> {
        fn cmp(&self, other: &Self) -> Ordering {
            Wrapped::cmp(self, other)
        }
    }

    let mut readers: Vec<_> = runs.iter().map(|r| r.iter()).collect();
    let mut heap: BinaryHeap<Wrapped<T, F>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (run, reader) in readers.iter_mut().enumerate() {
        if let Some(item) = reader.next() {
            heap.push(Wrapped {
                entry: HeapEntry {
                    item: item?,
                    run,
                    seq,
                },
                cmp,
            });
            seq += 1;
        }
    }
    let mut out = ListWriter::new(pager);
    while let Some(Wrapped { entry, .. }) = heap.pop() {
        out.push(&entry.item)?;
        if let Some(item) = readers[entry.run].next() {
            heap.push(Wrapped {
                entry: HeapEntry {
                    item: item?,
                    run: entry.run,
                    seq,
                },
                cmp,
            });
            seq += 1;
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_pager;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_input() {
        let pager = tiny_pager();
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..100_000)).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        let sorted = external_sort(&pager, &list).unwrap();
        let mut expect = items;
        expect.sort();
        assert_eq!(sorted.to_vec().unwrap(), expect);
    }

    #[test]
    fn sorts_with_custom_comparator() {
        let pager = tiny_pager();
        let list = PagedList::from_iter(&pager, 0u64..1000).unwrap();
        let desc = external_sort_by(&pager, &list, ExtSortConfig { fan_in: 3 }, |a, b| {
            b.cmp(a)
        })
        .unwrap();
        let got = desc.to_vec().unwrap();
        let expect: Vec<u64> = (0..1000).rev().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_single() {
        let pager = tiny_pager();
        let empty: PagedList<u64> = PagedList::empty(&pager);
        assert!(external_sort(&pager, &empty).unwrap().is_empty());
        let one = PagedList::from_iter(&pager, [42u64]).unwrap();
        assert_eq!(external_sort(&pager, &one).unwrap().to_vec().unwrap(), [42]);
    }

    #[test]
    fn stability_for_equal_keys() {
        let pager = tiny_pager();
        // (key, original index); compare by key only.
        let items: Vec<(u64, u64)> = (0..2000).map(|i| (i % 7, i)).collect();
        let list = PagedList::from_iter(&pager, items).unwrap();
        let sorted = external_sort_by(&pager, &list, ExtSortConfig { fan_in: 3 }, |a, b| {
            a.0.cmp(&b.0)
        })
        .unwrap();
        let got = sorted.to_vec().unwrap();
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0, "keys out of order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys reordered: not stable");
            }
        }
    }

    #[test]
    fn oversized_fan_in_is_clamped_to_the_pool_budget() {
        // A caller asking for a 10_000-way merge on an 8-frame pool must
        // get the budget-respecting merge (frames − 2 = 6 runs at a
        // time), not a single pass that holds 10_000 decoded run pages
        // in memory at once.
        let pager = tiny_pager();
        let frames = pager.pool().capacity();
        let budget = frames - 2;
        let mut rng = StdRng::seed_from_u64(11);
        let items: Vec<u64> = (0..20_000).map(|_| rng.gen()).collect();
        let list = PagedList::from_iter(&pager, items.clone()).unwrap();
        pager.flush().unwrap();

        // Resident pages stay within the pool's frame budget *during*
        // the merge: the comparator runs on every heap operation of
        // every pass, so it observes the working set mid-merge.
        let greedy = ExtSortConfig { fan_in: 10_000 };
        pager.reset_io();
        let sorted = external_sort_by(&pager, &list, greedy, |a: &u64, b: &u64| {
            assert!(
                pager.pool().resident() <= frames,
                "merge holds {} resident pages on a {frames}-frame pool",
                pager.pool().resident()
            );
            a.cmp(b)
        })
        .unwrap();
        pager.flush().unwrap();
        let greedy_io = pager.io();

        let mut expect = items;
        expect.sort();
        assert_eq!(sorted.to_vec().unwrap(), expect);

        // The clamp is observable in the I/O ledger: run formation under
        // a 6-page buffer yields far more than `budget` runs, so a
        // budget-respecting sort needs at least two merge passes —
        // strictly more page traffic than the one-pass sort an
        // unclamped 10_000-way merge would do.
        let n_pages = list.num_pages();
        assert!(n_pages > budget as u64 * 2, "input too small to force runs");
        assert!(
            greedy_io.total() > 3 * n_pages,
            "io {} vs {n_pages} input pages: merge ran as a single pass, \
             fan_in was not clamped",
            greedy_io.total()
        );

        // And the clamped sort is *identical* in I/O shape to explicitly
        // asking for the budget.
        let fresh = tiny_pager();
        let list2 = PagedList::from_iter(&fresh, sorted.to_vec().unwrap()).unwrap();
        fresh.flush().unwrap();
        fresh.reset_io();
        external_sort_by(&fresh, &list2, ExtSortConfig { fan_in: 10_000 }, |a, b| a.cmp(b))
            .unwrap();
        let clamped = fresh.io();
        fresh.flush().unwrap();
        fresh.reset_io();
        external_sort_by(&fresh, &list2, ExtSortConfig { fan_in: budget }, |a, b| a.cmp(b))
            .unwrap();
        let explicit = fresh.io();
        assert_eq!(
            (clamped.reads, clamped.writes),
            (explicit.reads, explicit.writes),
            "clamped oversize fan_in must behave exactly like fan_in = frames - 2"
        );
    }

    #[test]
    fn parallel_run_formation_matches_sequential_exactly() {
        // A stable sort's output is a pure function of (input, comparator);
        // the parallel path must reproduce it record for record at every
        // degree, including on ties (the (key, index) pairs make any
        // instability visible).
        let pager = Pager::new(256, 64);
        let mut rng = StdRng::seed_from_u64(19);
        let items: Vec<(u64, u64)> = (0..8000).map(|i| (rng.gen_range(0..50), i)).collect();
        let list = PagedList::from_iter(&pager, items).unwrap();
        let cfg = ExtSortConfig { fan_in: 8 };
        let expect = external_sort_by(&pager, &list, cfg, |a, b| a.0.cmp(&b.0))
            .unwrap()
            .to_vec()
            .unwrap();
        for degree in [1, 2, 4, 8] {
            let got = external_sort_by_par(&pager, &list, cfg, degree, |a, b| a.0.cmp(&b.0))
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(got, expect, "degree {degree}");
        }
    }

    #[test]
    fn parallel_sort_handles_empty_and_tiny_inputs() {
        let pager = tiny_pager();
        let empty: PagedList<u64> = PagedList::empty(&pager);
        let cfg = ExtSortConfig::default();
        assert!(external_sort_by_par(&pager, &empty, cfg, 4, |a, b| a.cmp(b))
            .unwrap()
            .is_empty());
        let one = PagedList::from_iter(&pager, [9u64, 3, 7]).unwrap();
        assert_eq!(
            external_sort_by_par(&pager, &one, cfg, 8, |a, b| a.cmp(b))
                .unwrap()
                .to_vec()
                .unwrap(),
            [3, 7, 9]
        );
    }

    #[test]
    fn io_grows_superlinearly_but_bounded() {
        // Sanity-check the N log N shape: pages touched per input page grows
        // with the number of merge passes.
        let pager = tiny_pager();
        let cfg = ExtSortConfig { fan_in: 2 };
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<u64> = (0..20_000).map(|_| rng.gen()).collect();
        let list = PagedList::from_iter(&pager, items).unwrap();
        pager.flush().unwrap();
        pager.reset_io();
        let sorted = external_sort_by(&pager, &list, cfg, |a, b| a.cmp(b)).unwrap();
        pager.flush().unwrap();
        let io = pager.io();
        let n_pages = list.num_pages();
        // At least two passes happened.
        assert!(io.total() > 3 * n_pages, "io {} vs pages {n_pages}", io.total());
        // But bounded by ~2 * passes * pages with passes <= log2(runs)+1.
        assert!(io.total() < 60 * n_pages);
        assert_eq!(sorted.len(), list.len());
    }
}
