//! The distributed evaluator of Section 8.3.
//!
//! "First, each atomic query, whose base dn is managed by a directory
//! server different from the queried server, is issued to the directory
//! server that manages the base dn … The results of those atomic queries
//! are shipped to the original queried directory server, which then
//! computes the query result using the algorithms described previously."
//!
//! The evaluator itself is transport-agnostic: [`Router`] pairs a
//! [`Delegation`] table with any [`Transport`] and evaluates a full
//! L0–L3 query *as posed to one server*. A routing [`AtomicSource`]
//! ships each atomic sub-query to every server whose zone can intersect
//! its scope (the owner of the base plus carved-out subdomains), merges
//! the disjoint sorted responses, and the ordinary [`Evaluator`] runs
//! the operator tree locally.
//!
//! [`Cluster`] is the in-process packaging: running [`ServerNode`]
//! threads plus a [`Router`] over the channel transport. The
//! `netdir-wire` crate builds the same [`Router`] over TCP sockets.

use crate::delegation::{Delegation, ServerId};
use crate::health::{BreakerConfig, HealthTracker};
use crate::net::NetStats;
use crate::node::{decode_entries, ServerConfig, ServerNode};
use crate::retry::{RetryPolicy, RetryStats};
use crate::transport::{ChannelTransport, Transport};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::{Directory, Dn, Entry};
use netdir_obs::{Clock, MonotonicClock};
use netdir_pager::{parallel_map, ListWriter, PagedList, Pager, PagerError, PagerResult};
use netdir_query::eval::{AtomicSource, Evaluator};
use netdir_query::planner::{ObservingSource, Planner};
use netdir_query::{Query, QueryError, QueryResult};
use std::sync::{Arc, Mutex};

/// How a distributed query treats unreachable partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// Any unreachable zone fails the whole query (the paper's §8.3
    /// shipping model assumes every sub-result arrives). The default.
    #[default]
    Strict,
    /// Unreachable zones are skipped: the query returns the surviving
    /// partitions' entries plus a precise account of what was missed.
    /// Note the semantics: results are a *subset* view of the directory
    /// with the dead zones' entries absent, so negation over a dead zone
    /// can return entries Strict mode would have excluded.
    Partial,
}

/// One zone a degraded query could not reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionError {
    /// The naming context of the unreachable zone.
    pub zone: Dn,
    /// The zone's owner group (primary + secondaries), all unavailable
    /// or failing.
    pub servers: Vec<ServerId>,
    /// Why the last attempt failed.
    pub detail: String,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "zone {} (servers {:?}) unavailable: {}",
            self.zone, self.servers, self.detail
        )
    }
}

/// The result of a query evaluated with an explicit
/// [`ConsistencyMode`]: entries plus the zones that were skipped
/// (always empty under [`ConsistencyMode::Strict`]).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Sorted result entries from the reachable partitions.
    pub entries: Vec<Entry>,
    /// Zones skipped by graceful degradation, in first-failure order.
    pub partial: Vec<PartitionError>,
}

impl QueryOutcome {
    /// True iff no zone was skipped — the answer is exact.
    pub fn is_complete(&self) -> bool {
        self.partial.is_empty()
    }
}

/// Builder for a [`Cluster`]: declare contexts, then partition a
/// directory across them.
#[derive(Default)]
pub struct ClusterBuilder {
    configs: Vec<ServerConfig>,
    /// Indices of configs that are secondaries (replicas) of an earlier
    /// context registration.
    secondaries: Vec<bool>,
    /// Intra-query parallelism degree for the built router (0 → 1).
    eval_threads: usize,
    /// Cost-based planner for the built router, if any.
    planner: Option<Arc<Planner>>,
}

/// The outcome of partitioning a directory across declared contexts,
/// before any server has been started. [`ClusterBuilder::build`] spawns
/// in-process nodes from this; `netdir-wire` launches TCP daemons from
/// the same parts so both deployments share one partitioning rule.
pub struct ClusterParts {
    /// One config per declared server, in declaration order.
    pub configs: Vec<ServerConfig>,
    /// The delegation table (primaries head their owner groups).
    pub delegation: Delegation,
    /// Entries owned by each server (replicas hold full zone copies).
    pub partitions: Vec<Vec<Entry>>,
    /// Entries that matched no declared context.
    pub orphaned: usize,
}

impl ClusterBuilder {
    /// Start with no servers.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Add a server owning `context` as primary.
    pub fn server(mut self, name: impl Into<String>, context: Dn) -> Self {
        self.configs.push(ServerConfig::new(name, context));
        self.secondaries.push(false);
        self
    }

    /// Add a **secondary** server replicating `context` (Section 3.3:
    /// "secondary directory servers ensure that one unreachable network
    /// will not necessarily cut off network directory service"). It
    /// receives a full copy of the zone and answers when the primary is
    /// down.
    pub fn secondary(mut self, name: impl Into<String>, context: Dn) -> Self {
        self.configs.push(ServerConfig::new(name, context));
        self.secondaries.push(true);
        self
    }

    /// Set the intra-query parallelism degree of the built cluster's
    /// router (see [`Router::with_eval_threads`]). Defaults to 1
    /// (sequential).
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Attach a cost-based planner to the built cluster's router (see
    /// [`Router::with_planner`]). Pass the *same* `Arc` when rebuilding
    /// the cluster after a mutation so the stats catalog persists; call
    /// [`Planner::bump_epoch`] at each rebuild so stale cached plans are
    /// dropped.
    pub fn planner(mut self, planner: Arc<Planner>) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Partition `dir` by longest-matching context without spawning
    /// anything.
    ///
    /// Entries matching no context are dropped with a count returned in
    /// [`ClusterParts::orphaned`] (a real deployment would reject them
    /// at registration).
    pub fn into_parts(self, dir: &Directory) -> ClusterParts {
        let mut delegation = Delegation::new();
        // Primaries register first so they head their owner groups.
        for (id, cfg) in self.configs.iter().enumerate() {
            if !self.secondaries[id] {
                delegation.register(cfg.context.clone(), id);
            }
        }
        for (id, cfg) in self.configs.iter().enumerate() {
            if self.secondaries[id] {
                delegation.register(cfg.context.clone(), id);
            }
        }
        let mut partitions: Vec<Vec<Entry>> = vec![Vec::new(); self.configs.len()];
        let mut orphaned = 0usize;
        for e in dir.iter_sorted() {
            match delegation.owner_group_of(e.dn()) {
                Some(group) => {
                    // Every replica of the zone stores the entry.
                    for &owner in group {
                        partitions[owner].push(e.clone());
                    }
                }
                None => orphaned += 1,
            }
        }
        ClusterParts {
            configs: self.configs,
            delegation,
            partitions,
            orphaned,
        }
    }

    /// Partition `dir` by longest-matching context and spawn the nodes.
    pub fn build(mut self, dir: &Directory) -> Cluster {
        let eval_threads = self.eval_threads.max(1);
        let planner = self.planner.take();
        let parts = self.into_parts(dir);
        let nodes: Vec<ServerNode> = parts
            .configs
            .into_iter()
            .zip(parts.partitions)
            .map(|(cfg, entries)| ServerNode::spawn(cfg, entries))
            .collect();
        let transport =
            ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
        let mut router =
            Router::new(parts.delegation, Box::new(transport)).with_eval_threads(eval_threads);
        if let Some(p) = planner {
            router = router.with_planner(p);
        }
        Cluster {
            router,
            nodes,
            orphaned: parts.orphaned,
        }
    }
}

/// The transport-agnostic distributed evaluator: a [`Delegation`] table
/// plus a [`Transport`], with per-server circuit breakers
/// ([`HealthTracker`]) for §3.3 failover and a shared [`RetryPolicy`]
/// for transient transport failures.
pub struct Router {
    delegation: Delegation,
    transport: Box<dyn Transport>,
    health: HealthTracker,
    retry: RetryPolicy,
    retry_stats: RetryStats,
    /// Intra-query parallelism degree: >1 evaluates independent query
    /// subtrees concurrently and fans atomic sub-queries out to their
    /// zones in parallel. 1 (the default) is the sequential path.
    eval_threads: usize,
    /// Time source for retry backoff and EXPLAIN ANALYZE timings.
    clock: Arc<dyn Clock>,
    /// Cost-based planner (opt-in). When set, queries are planned before
    /// evaluation — byte-identical output, fewer pages — atomic results
    /// feed its stats catalog, and EXPLAIN ANALYZE traces are harvested.
    planner: Option<Arc<Planner>>,
}

impl Router {
    /// Route over `transport` according to `delegation`, with the
    /// default retry policy and breaker configuration.
    pub fn new(delegation: Delegation, transport: Box<dyn Transport>) -> Router {
        let health = HealthTracker::new(transport.num_servers(), BreakerConfig::default());
        Router {
            delegation,
            transport,
            health,
            retry: RetryPolicy::default(),
            retry_stats: RetryStats::new(),
            eval_threads: 1,
            clock: Arc::new(MonotonicClock::new()),
            planner: None,
        }
    }

    /// Attach a cost-based [`Planner`] (builder-style): every query is
    /// planned before evaluation, atomic results feed the planner's
    /// stats catalog, and cached plans replay for repeated query shapes.
    /// Output is byte-identical to unplanned evaluation. Share one
    /// planner across generations of a rebuilt cluster so its catalog
    /// survives mutations.
    pub fn with_planner(mut self, planner: Arc<Planner>) -> Router {
        self.planner = Some(planner);
        self
    }

    /// The attached planner, if any.
    pub fn planner(&self) -> Option<&Arc<Planner>> {
        self.planner.as_ref()
    }

    /// Replace the time source driving retry backoff and traced-query
    /// timings (builder-style). Tests inject a
    /// [`netdir_obs::ManualClock`] so backoff runs instantly.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Router {
        self.clock = clock;
        self
    }

    /// Replace the retry policy (builder-style, before first use).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Router {
        self.retry = retry;
        self
    }

    /// Set the intra-query parallelism degree (builder-style).
    ///
    /// With `threads > 1`, [`Router::query_with`] evaluates independent
    /// query subtrees concurrently and each atomic sub-query fans out to
    /// its zones in parallel. Results are byte-identical to the
    /// sequential path (zone responses merge in delegation order, subtree
    /// results join by node identity); under Strict mode the first error
    /// in zone order is reported, exactly as sequentially. The default of
    /// 1 keeps the sequential path — fault-injection harnesses that seed
    /// per-call fault schedules rely on the deterministic call order that
    /// only sequential evaluation provides, so parallelism is opt-in.
    pub fn with_eval_threads(mut self, threads: usize) -> Router {
        self.eval_threads = threads.max(1);
        self
    }

    /// The configured intra-query parallelism degree.
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Replace the circuit-breaker configuration (builder-style, before
    /// first use). Resets all breakers to Closed.
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Router {
        self.health = HealthTracker::new(self.transport.num_servers(), cfg);
        self
    }

    /// The delegation table.
    pub fn delegation(&self) -> &Delegation {
        &self.delegation
    }

    /// The transport's network counters.
    pub fn net(&self) -> &NetStats {
        self.transport.net()
    }

    /// The underlying transport.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.transport.num_servers()
    }

    /// Per-server health (circuit breakers + forced outages).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Retry-effort counters (attempts, backoff rounds, abandoned
    /// fetches).
    pub fn retry_stats(&self) -> &RetryStats {
        &self.retry_stats
    }

    /// Force a server down/up (operator-controlled outage): subsequent
    /// routing skips forced-down servers, falling back to secondaries of
    /// their zones. Unlike a tripped breaker, a forced outage never
    /// recovers on its own.
    pub fn force_down(&self, id: ServerId, down: bool) {
        self.health.force_down(id, down);
    }

    /// **Deprecated** — use [`Router::force_down`], which no longer
    /// needs `&mut` now that liveness lives behind interior mutability.
    /// Kept as a shim so pre-breaker callers compile unchanged.
    pub fn set_down(&mut self, id: ServerId, down: bool) {
        self.force_down(id, down);
    }

    /// Is the server currently unavailable (forced down or breaker
    /// open)?
    pub fn is_down(&self, id: ServerId) -> bool {
        !self.health.available(id)
    }

    /// Evaluate `query` as posed to server `home`. Operator evaluation
    /// happens on `pager` (the queried server's scratch space); remote
    /// atomic results are counted on the transport's [`NetStats`].
    pub fn query(
        &self,
        home: ServerId,
        pager: &Pager,
        query: &Query,
    ) -> QueryResult<Vec<Entry>> {
        Ok(self
            .query_with(home, pager, query, ConsistencyMode::Strict)?
            .entries)
    }

    /// Evaluate `query` as posed to server `home` under an explicit
    /// [`ConsistencyMode`]. Under [`ConsistencyMode::Partial`], zones
    /// that stay unreachable after failover and retries are skipped and
    /// reported in [`QueryOutcome::partial`] instead of failing the
    /// query.
    pub fn query_with(
        &self,
        home: ServerId,
        pager: &Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<QueryOutcome> {
        let source = RoutingSource {
            router: self,
            home,
            pager: pager.clone(),
            mode,
            partial: Mutex::new(Vec::new()),
        };
        // With a planner attached, evaluate the chosen (byte-identical)
        // plan and feed every atomic result back into the stats catalog.
        let planned = self.planner.as_ref().map(|p| p.plan(query));
        let query = planned.as_ref().map_or(query, |p| &p.query);
        let out = match &self.planner {
            Some(p) => {
                let observing = ObservingSource::new(&source, p.catalog());
                let evaluator = Evaluator::new(&observing, pager);
                if self.eval_threads > 1 {
                    evaluator.evaluate_parallel(query, self.eval_threads)?
                } else {
                    evaluator.evaluate(query)?
                }
            }
            None => {
                let evaluator = Evaluator::new(&source, pager);
                if self.eval_threads > 1 {
                    evaluator.evaluate_parallel(query, self.eval_threads)?
                } else {
                    evaluator.evaluate(query)?
                }
            }
        };
        let entries = out.to_vec().map_err(QueryError::from)?;
        Ok(QueryOutcome {
            entries,
            partial: source.into_partial(),
        })
    }

    /// Evaluate `query` as posed to server `home` and return its result
    /// together with a per-operator [`QueryTrace`] — `EXPLAIN ANALYZE`
    /// over the distributed evaluator. The trace's I/O ledger covers the
    /// queried server's local operator evaluation (remote shipping is
    /// counted separately on [`Router::net`]).
    pub fn query_analyzed(
        &self,
        home: ServerId,
        pager: &Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<(QueryOutcome, netdir_obs::QueryTrace)> {
        let source = RoutingSource {
            router: self,
            home,
            pager: pager.clone(),
            mode,
            partial: Mutex::new(Vec::new()),
        };
        // Traced evaluation stays sequential regardless of `eval_threads`:
        // per-node I/O attribution snapshots the shared ledger around each
        // node, which is only meaningful when nodes run one at a time.
        let planned = self.planner.as_ref().map(|p| p.plan(query));
        let query = planned.as_ref().map_or(query, |p| &p.query);
        let started = self.clock.now();
        let (out, traces) = Evaluator::new(&source, pager).evaluate_traced(query)?;
        let elapsed =
            u64::try_from(self.clock.now().saturating_sub(started).as_nanos()).unwrap_or(u64::MAX);
        let trace = netdir_query::build_trace(query, &traces, elapsed);
        // Observed-vs-predicted feedback: per-node cardinalities from the
        // ANALYZE trace calibrate the planner's estimates.
        if let Some(p) = &self.planner {
            p.observe_trace(query, &trace);
        }
        let entries = out.to_vec().map_err(QueryError::from)?;
        Ok((
            QueryOutcome {
                entries,
                partial: source.into_partial(),
            },
            trace,
        ))
    }

    /// Evaluate one atomic query as posed to server `home`: ship it to
    /// every zone intersecting its scope and merge the sorted responses.
    /// This is the building block wire daemons expose directly.
    pub fn atomic(
        &self,
        home: ServerId,
        pager: &Pager,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<Vec<Entry>> {
        let source = RoutingSource {
            router: self,
            home,
            pager: pager.clone(),
            mode: ConsistencyMode::Strict,
            partial: Mutex::new(Vec::new()),
        };
        source.evaluate_atomic(base, scope, filter)?.to_vec()
    }

    /// Fetch one zone's share of an atomic query, with failover across
    /// the owner group and retries with backoff for transient failures.
    ///
    /// Each round tries every currently-available replica once (failures
    /// feed the circuit breakers); between rounds the shared
    /// [`RetryPolicy`] sleeps. Fatal errors (protocol violations, remote
    /// evaluation failures, mis-addressing) abort immediately — retrying
    /// reproduces them.
    fn fetch_zone(
        &self,
        zone: &Dn,
        group: &[ServerId],
        home: ServerId,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> Result<Vec<Entry>, PartitionError> {
        let fail = |detail: String| PartitionError {
            zone: zone.clone(),
            servers: group.to_vec(),
            detail,
        };
        let mut last_detail = format!("no live server for zone {zone}");
        for attempt in 0..self.retry.max_attempts.max(1) {
            let candidates: Vec<ServerId> = group
                .iter()
                .copied()
                .filter(|&id| self.health.available(id))
                .collect();
            if candidates.is_empty() {
                // Sleeping will not conjure a replica: every member is
                // forced down or inside its breaker cooldown.
                break;
            }
            for id in candidates {
                self.retry_stats.record_attempt();
                match self.transport.atomic(id, home, base, scope, filter) {
                    Ok(resp) => match decode_entries(&resp.encoded) {
                        Ok(entries) => {
                            self.health.record_success(id);
                            return Ok(entries);
                        }
                        Err(e) => {
                            // Corrupt payload: charge the server and let
                            // the next attempt re-fetch.
                            self.health.record_failure(id);
                            last_detail = format!("server {id}: corrupt response: {e}");
                        }
                    },
                    Err(e) if e.kind.is_retryable() => {
                        self.health.record_failure(id);
                        last_detail = format!("server {id}: {e}");
                    }
                    Err(e) => return Err(fail(e.to_string())),
                }
            }
            if attempt + 1 < self.retry.max_attempts {
                self.retry_stats.record_retry();
                let delay = self.retry.backoff(attempt, home as u64);
                if !delay.is_zero() {
                    self.clock.sleep(delay);
                }
            }
        }
        self.retry_stats.record_give_up();
        Err(fail(last_detail))
    }
}

/// A running cluster of in-process directory servers.
pub struct Cluster {
    nodes: Vec<ServerNode>,
    router: Router,
    orphaned: usize,
}

impl Cluster {
    /// Network counters (messages, shipped entries/bytes).
    pub fn net(&self) -> &NetStats {
        self.router.net()
    }

    /// The delegation table.
    pub fn delegation(&self) -> &Delegation {
        self.router.delegation()
    }

    /// The routing layer (delegation + transport + liveness).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Entries that matched no context at build time.
    pub fn orphaned(&self) -> usize {
        self.orphaned
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.nodes.len()
    }

    /// Server id by name.
    pub fn server_id(&self, name: &str) -> Option<ServerId> {
        self.nodes.iter().position(|n| n.config.name == name)
    }

    /// Direct handle to a node (tests, baseline measurements).
    pub fn node(&self, id: ServerId) -> &ServerNode {
        &self.nodes[id]
    }

    /// Simulate an outage of `server` (by name): subsequent routing
    /// skips it, falling back to secondaries of its zones.
    ///
    /// **Deprecated** — use [`Cluster::force_down`], which no longer
    /// needs `&mut`. Kept as a shim for pre-breaker callers.
    pub fn set_down(&mut self, server: &str, down: bool) {
        self.force_down(server, down);
    }

    /// Force an outage of `server` (by name): subsequent routing skips
    /// it, falling back to secondaries of its zones, until forced back
    /// up.
    pub fn force_down(&self, server: &str, down: bool) {
        if let Some(id) = self.server_id(server) {
            self.router.force_down(id, down);
        }
    }

    /// Is the server currently unavailable (forced down or breaker
    /// open)?
    pub fn is_down(&self, id: ServerId) -> bool {
        self.router.is_down(id)
    }

    /// Evaluate `query` as posed to server `home` (by name).
    pub fn query_from(
        &self,
        home: &str,
        pager: &Pager,
        query: &Query,
    ) -> QueryResult<Vec<Entry>> {
        Ok(self
            .query_from_with(home, pager, query, ConsistencyMode::Strict)?
            .entries)
    }

    /// Evaluate `query` as posed to server `home` (by name) under an
    /// explicit [`ConsistencyMode`].
    pub fn query_from_with(
        &self,
        home: &str,
        pager: &Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<QueryOutcome> {
        let home = self.server_id(home).ok_or_else(|| QueryError::Parse {
            input: home.into(),
            detail: "no such server".into(),
        })?;
        self.router.query_with(home, pager, query, mode)
    }

    /// Evaluate `query` as posed to server `home` (by name) and return
    /// its result plus a per-operator [`netdir_obs::QueryTrace`].
    pub fn query_analyzed_from(
        &self,
        home: &str,
        pager: &Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<(QueryOutcome, netdir_obs::QueryTrace)> {
        let home = self.server_id(home).ok_or_else(|| QueryError::Parse {
            input: home.into(),
            detail: "no such server".into(),
        })?;
        self.router.query_analyzed(home, pager, query, mode)
    }
}

/// [`AtomicSource`] that routes atomic queries across the cluster.
struct RoutingSource<'r> {
    router: &'r Router,
    home: ServerId,
    pager: Pager,
    mode: ConsistencyMode,
    /// Zones skipped so far (Partial mode), deduplicated by context.
    /// A `Mutex` (not `RefCell`) so the source is `Sync` — parallel
    /// evaluation drives one source from several scoped workers at once.
    partial: Mutex<Vec<PartitionError>>,
}

impl RoutingSource<'_> {
    fn record_skip(&self, err: PartitionError) {
        let mut partial = self.partial.lock().unwrap_or_else(|e| e.into_inner());
        if !partial.iter().any(|p| p.zone == err.zone) {
            partial.push(err);
        }
    }

    fn into_partial(self) -> Vec<PartitionError> {
        self.partial
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl AtomicSource for RoutingSource<'_> {
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        let zones: Vec<(&Dn, &[ServerId])> = match scope {
            Scope::Base => self.router.delegation.zone_of(base).into_iter().collect(),
            Scope::One | Scope::Sub => self.router.delegation.zones_for_subtree(base),
        };
        // Fetch each zone from its owner group (§3.3 failover + retry);
        // under Partial mode a zone that stays unreachable is skipped
        // and accounted for instead of failing the query. With
        // `eval_threads > 1` the zones are fetched concurrently, but
        // outcomes are *collected in zone (delegation) order*, so the
        // merged bytes, the Strict-mode first error, and the Partial-mode
        // skip accounting are identical to the sequential loop.
        let degree = self.router.eval_threads;
        let outcomes: Vec<Result<Vec<Entry>, PartitionError>> =
            if degree > 1 && zones.len() > 1 {
                let (outcomes, _reports) =
                    parallel_map(degree, zones, |_, (zone, group)| {
                        Ok::<_, std::convert::Infallible>(self.router.fetch_zone(
                            zone, group, self.home, base, scope, filter,
                        ))
                    })
                    .expect("zone fetch outcomes are data, not errors");
                outcomes
            } else {
                zones
                    .into_iter()
                    .map(|(zone, group)| {
                        self.router
                            .fetch_zone(zone, group, self.home, base, scope, filter)
                    })
                    .collect()
            };
        let mut responses: Vec<Vec<Entry>> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                Ok(entries) => responses.push(entries),
                Err(err) => match self.mode {
                    ConsistencyMode::Strict => {
                        return Err(PagerError::CorruptRecord {
                            detail: format!("required by base {base}: {err}"),
                        })
                    }
                    ConsistencyMode::Partial => self.record_skip(err),
                },
            }
        }
        let mut pos: Vec<usize> = vec![0; responses.len()];
        let mut out = ListWriter::new(&self.pager);
        loop {
            let mut best: Option<usize> = None;
            for (i, resp) in responses.iter().enumerate() {
                let Some(e) = resp.get(pos[i]) else { continue };
                let better = match best {
                    None => true,
                    Some(b) => e.dn() < responses[b][pos[b]].dn(),
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(b) = best else { break };
            out.push(&responses[b][pos[b]])?;
            pos[b] += 1;
        }
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_query::parse_query;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// A directory spanning three zones.
    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |s: &str, sn: Option<&str>| {
            let mut b = Entry::builder(dn(s)).class("thing");
            if let Some(sn) = sn {
                b = b.attr("surName", sn);
            }
            d.insert(b.build().unwrap()).unwrap();
        };
        add("dc=com", None);
        add("dc=att, dc=com", None);
        add("ou=people, dc=att, dc=com", None);
        add("uid=jag, ou=people, dc=att, dc=com", Some("jagadish"));
        add("dc=research, dc=att, dc=com", None);
        add("ou=people, dc=research, dc=att, dc=com", None);
        add(
            "uid=jag2, ou=people, dc=research, dc=att, dc=com",
            Some("jagadish"),
        );
        add("dc=org", None);
        d
    }

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .build(&dir())
    }

    #[test]
    fn partitioning_respects_zone_cuts() {
        let c = cluster();
        assert_eq!(c.orphaned(), 0);
        assert_eq!(c.node(0).num_entries, 1); // dc=com only
        assert_eq!(c.node(1).num_entries, 3); // att minus research zone
        assert_eq!(c.node(2).num_entries, 3); // research zone
        assert_eq!(c.node(3).num_entries, 1); // org
    }

    #[test]
    fn into_parts_matches_build_partitioning() {
        let parts = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .into_parts(&dir());
        assert_eq!(parts.orphaned, 0);
        let sizes: Vec<usize> = parts.partitions.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![1, 3, 3, 1]);
        assert_eq!(parts.configs.len(), 4);
        assert!(parts.delegation.owner_group_of(&dn("dc=org")).is_some());
    }

    #[test]
    fn distributed_equals_single_server() {
        let c = cluster();
        let single = ClusterBuilder::new()
            .server("all", Dn::root())
            .build(&dir());
        let q = parse_query(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
        let pager = netdir_pager::default_pager();
        let a = c.query_from("att", &pager, &q).unwrap();
        let b = single.query_from("all", &pager, &q).unwrap();
        let names = |v: &[Entry]| -> Vec<String> {
            v.iter().map(|e| e.dn().to_string()).collect()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(names(&a), vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }

    #[test]
    fn parallel_eval_threads_pin_strict_bytes_and_partial_accounts() {
        let seq = cluster();
        let par = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .eval_threads(4)
            .build(&dir());
        assert_eq!(par.router().eval_threads(), 4);
        let pager = netdir_pager::default_pager();
        let queries = [
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
            "(null-dn ? sub ? objectClass=thing)",
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        ];
        for text in queries {
            let q = parse_query(text).unwrap();
            // Strict mode: the encoded entry stream must be byte-identical.
            let a = seq.query_from("att", &pager, &q).unwrap();
            let b = par.query_from("att", &pager, &q).unwrap();
            assert_eq!(a, b, "strict results diverged for {text}");
        }
        // Partial mode with a dead unreplicated zone: same surviving
        // entries, same skip account, at any degree.
        seq.force_down("research", true);
        par.force_down("research", true);
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        let a = seq
            .query_from_with("att", &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        let b = par
            .query_from_with("att", &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.partial.len(), 1);
        assert_eq!(a.partial[0].zone, b.partial[0].zone);
        assert_eq!(a.partial[0].servers, b.partial[0].servers);
    }

    #[test]
    fn network_shipping_is_counted() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? surName=jagadish)").unwrap();
        c.net().reset();
        let hits = c.query_from("att", &pager, &q).unwrap();
        assert_eq!(hits.len(), 2);
        let net = c.net().snapshot();
        // Sub from the forest root touches all four servers; three are
        // remote from "att".
        assert_eq!(net.requests, 3);
        assert!(net.entries_shipped >= 1); // jag2 ships from research
        assert!(net.bytes_shipped > 0);
    }

    #[test]
    fn local_queries_ship_nothing() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query(
            "(dc=research, dc=att, dc=com ? sub ? surName=jagadish)",
        )
        .unwrap();
        c.net().reset();
        let hits = c.query_from("research", &pager, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.net().snapshot().requests, 0);
    }

    #[test]
    fn merged_results_are_globally_sorted() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        let hits = c.query_from("org", &pager, &q).unwrap();
        assert_eq!(hits.len(), 8);
        for w in hits.windows(2) {
            assert!(w[0].dn() < w[1].dn());
        }
    }

    #[test]
    fn hierarchy_ops_across_zones() {
        // Children relation crossing a zone cut: dc=att (att zone) has
        // child dc=research (research zone).
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query(
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        )
        .unwrap();
        let hits = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &dn("dc=att, dc=com"));
    }

    #[test]
    fn secondary_takes_over_when_primary_is_down() {
        let mut c = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .secondary("att-backup", dn("dc=att, dc=com"))
            .build(&dir());
        // The replica holds the same zone data.
        assert_eq!(
            c.node(c.server_id("att").unwrap()).num_entries,
            c.node(c.server_id("att-backup").unwrap()).num_entries
        );
        let q = parse_query("(dc=att, dc=com ? sub ? surName=jagadish)").unwrap();
        let pager = netdir_pager::default_pager();
        let before = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(before.len(), 2);
        // Primary down → the secondary answers; results identical.
        c.set_down("att", true);
        let after = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(
            before.iter().map(|e| e.dn().to_string()).collect::<Vec<_>>(),
            after.iter().map(|e| e.dn().to_string()).collect::<Vec<_>>()
        );
        // Both replicas down → the zone is unreachable.
        c.set_down("att-backup", true);
        assert!(c.query_from("root", &pager, &q).is_err());
        // Recovery.
        c.set_down("att", false);
        assert_eq!(c.query_from("root", &pager, &q).unwrap().len(), 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        // Many clients hammer the cluster in parallel; every one must see
        // the same answer (server nodes serialize on their channels, but
        // nothing else is shared mutable).
        let c = cluster();
        let q = parse_query("(null-dn ? sub ? surName=jagadish)").unwrap();
        let expected: Vec<String> = {
            let pager = netdir_pager::default_pager();
            c.query_from("att", &pager, &q)
                .unwrap()
                .iter()
                .map(|e| e.dn().to_string())
                .collect()
        };
        assert_eq!(expected.len(), 2);
        std::thread::scope(|s| {
            for i in 0..8 {
                let c = &c;
                let q = &q;
                let expected = &expected;
                let home = ["root", "att", "research", "org"][i % 4];
                s.spawn(move || {
                    let pager = netdir_pager::default_pager();
                    for _ in 0..5 {
                        let got: Vec<String> = c
                            .query_from(home, &pager, q)
                            .unwrap()
                            .iter()
                            .map(|e| e.dn().to_string())
                            .collect();
                        assert_eq!(&got, expected, "client at {home} diverged");
                    }
                });
            }
        });
    }

    #[test]
    fn analyzed_distributed_query_matches_plain_and_traces_every_node() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query(
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        )
        .unwrap();
        let plain = c.query_from("root", &pager, &q).unwrap();
        let (out, trace) = c
            .query_analyzed_from("root", &pager, &q, ConsistencyMode::Strict)
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(plain.len(), out.entries.len());
        assert_eq!(trace.spans.len(), q.num_nodes());
        assert_eq!(trace.root_entries(), out.entries.len() as u64);
        assert!(trace.predicted_io > 0.0);
    }

    #[test]
    fn planned_cluster_matches_unplanned_and_learns() {
        let planner = Arc::new(Planner::new());
        let planned = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .planner(planner.clone())
            .build(&dir());
        let plain = cluster();
        let pager = netdir_pager::default_pager();
        let queries = [
            "(& (null-dn ? sub ? objectClass=thing) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
            "(a (null-dn ? sub ? surName=jagadish) \
                (dc=com ? sub ? objectClass=thing))",
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=att, dc=com ? sub ? surName=jagadish))",
        ];
        for text in queries {
            let q = parse_query(text).unwrap();
            let a = plain.query_from("att", &pager, &q).unwrap();
            let b = planned.query_from("att", &pager, &q).unwrap();
            assert_eq!(a, b, "planned results diverged for {text}");
        }
        let snap = planner.snapshot();
        assert_eq!(snap.planned, queries.len() as u64);
        assert!(snap.catalog_observations > 0, "atomic results must feed the catalog");
        // Repeating a shape (different constant) hits the plan cache.
        let again = parse_query(
            "(& (null-dn ? sub ? objectClass=thing) \
                (dc=att, dc=com ? sub ? surName=someoneelse))",
        )
        .unwrap();
        planned.query_from("att", &pager, &again).unwrap();
        assert!(planner.snapshot().cache_hits >= 1);
        // ANALYZE feeds the catalog through the trace path too.
        let before = planner.snapshot().catalog_observations;
        let q = parse_query("(dc=org ? sub ? objectClass=thing)").unwrap();
        planned
            .query_analyzed_from("att", &pager, &q, ConsistencyMode::Strict)
            .unwrap();
        assert!(planner.snapshot().catalog_observations > before);
    }

    #[test]
    fn unknown_home_server_errors() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(dc=com ? base ? objectClass=*)").unwrap();
        assert!(c.query_from("nope", &pager, &q).is_err());
    }

    #[test]
    fn force_down_needs_no_mut() {
        let c = cluster(); // note: not `mut`
        let org = c.server_id("org").unwrap();
        c.force_down("org", true);
        assert!(c.is_down(org));
        c.force_down("org", false);
        assert!(!c.is_down(org));
    }

    #[test]
    fn partial_mode_returns_surviving_partitions_with_account() {
        let c = cluster();
        c.force_down("research", true);
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        // Strict: the dead non-replicated zone fails the query.
        assert!(c.query_from("att", &pager, &q).is_err());
        // Partial: every entry owned by surviving partitions, sorted,
        // plus a precise account of the skipped zone.
        let out = c
            .query_from_with("att", &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert!(!out.is_complete());
        assert_eq!(out.entries.len(), 5, "8 entries minus research's 3");
        let research_zone = dn("dc=research, dc=att, dc=com");
        for e in &out.entries {
            assert!(
                !research_zone.sort_key().subsumes(e.dn().sort_key()),
                "entry {} belongs to the dead zone",
                e.dn()
            );
        }
        for w in out.entries.windows(2) {
            assert!(w[0].dn() < w[1].dn(), "partial results must stay sorted");
        }
        assert_eq!(out.partial.len(), 1, "one zone skipped, reported once");
        assert_eq!(out.partial[0].zone, research_zone);
        assert_eq!(
            out.partial[0].servers,
            vec![c.server_id("research").unwrap()]
        );
        // A replicated zone's forced-down primary is NOT a partial
        // result: the secondary answers.
        let out = c
            .query_from_with("root", &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert_eq!(out.partial.len(), 1, "only the unreplicated zone is lost");
    }

    #[test]
    fn partial_equals_strict_on_healthy_cluster() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? surName=jagadish)").unwrap();
        let strict = c.query_from("att", &pager, &q).unwrap();
        let out = c
            .query_from_with("att", &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert!(out.is_complete());
        let names = |v: &[Entry]| -> Vec<String> {
            v.iter().map(|e| e.dn().to_string()).collect()
        };
        assert_eq!(names(&strict), names(&out.entries));
    }

    /// A cluster whose transport is wrapped in a seeded [`FaultTransport`].
    fn faulty_cluster(
        cfg: crate::FaultConfig,
        retry: crate::RetryPolicy,
        breaker: crate::BreakerConfig,
    ) -> (Vec<ServerNode>, Router, crate::FaultStats) {
        let parts = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .into_parts(&dir());
        let nodes: Vec<ServerNode> = parts
            .configs
            .into_iter()
            .zip(parts.partitions)
            .map(|(cfg, entries)| ServerNode::spawn(cfg, entries))
            .collect();
        let channel = ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
        let fault = crate::FaultTransport::new(Box::new(channel), cfg);
        let stats = fault.stats();
        let router = Router::new(parts.delegation, Box::new(fault))
            .with_retry(retry)
            .with_breaker(breaker);
        (nodes, router, stats)
    }

    #[test]
    fn breaker_trips_on_hard_outage_and_short_circuits_later_fetches() {
        use crate::{BreakerConfig, BreakerState, FaultConfig, RetryPolicy};
        let (_nodes, router, stats) = faulty_cluster(
            FaultConfig::seeded(11).with_server_fail(2, 1.0), // research dead
            RetryPolicy::immediate(2),
            BreakerConfig {
                failure_threshold: 2,
                cooldown: std::time::Duration::from_secs(600),
            },
        );
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        let first = router
            .query_with(0, &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert_eq!(first.partial.len(), 1);
        assert_eq!(router.health().state(2), BreakerState::Open);
        assert!(router.retry_stats().snapshot().gave_up >= 1);
        let calls_before = stats.snapshot().calls;
        // Second query: the open breaker short-circuits — no transport
        // calls reach the dead server, yet the answer is identical.
        let second = router
            .query_with(0, &pager, &q, ConsistencyMode::Partial)
            .unwrap();
        assert_eq!(
            first.entries.len(),
            second.entries.len(),
            "degraded answers must be stable"
        );
        // The skipped zone is identical; only the detail string differs
        // (attempted-and-failed vs breaker-short-circuited).
        assert_eq!(first.partial[0].zone, second.partial[0].zone);
        assert_eq!(first.partial[0].servers, second.partial[0].servers);
        assert_eq!(
            stats.snapshot().unreachable,
            2,
            "breaker must stop probing the dead server"
        );
        assert!(stats.snapshot().calls > calls_before, "live zones still fetched");
    }

    #[test]
    fn retry_refetches_a_corrupted_response() {
        use crate::{BreakerConfig, FaultConfig, RetryPolicy};
        // Call 0 (the first zone fetch) returns a truncated payload;
        // the retry layer re-fetches and the query still succeeds.
        let (_nodes, router, stats) = faulty_cluster(
            FaultConfig::seeded(5).with_truncate_nth(0),
            RetryPolicy::immediate(3),
            BreakerConfig::default(),
        );
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        let hits = router.query(0, &pager, &q).unwrap();
        assert_eq!(hits.len(), 8);
        assert_eq!(stats.snapshot().truncated, 1);
        let retry = router.retry_stats().snapshot();
        assert!(retry.retries >= 1, "corrupt response must cost a retry");
        assert_eq!(retry.gave_up, 0);
    }
}
