//! The distributed evaluator of Section 8.3.
//!
//! "First, each atomic query, whose base dn is managed by a directory
//! server different from the queried server, is issued to the directory
//! server that manages the base dn … The results of those atomic queries
//! are shipped to the original queried directory server, which then
//! computes the query result using the algorithms described previously."
//!
//! The evaluator itself is transport-agnostic: [`Router`] pairs a
//! [`Delegation`] table with any [`Transport`] and evaluates a full
//! L0–L3 query *as posed to one server*. A routing [`AtomicSource`]
//! ships each atomic sub-query to every server whose zone can intersect
//! its scope (the owner of the base plus carved-out subdomains), merges
//! the disjoint sorted responses, and the ordinary [`Evaluator`] runs
//! the operator tree locally.
//!
//! [`Cluster`] is the in-process packaging: running [`ServerNode`]
//! threads plus a [`Router`] over the channel transport. The
//! `netdir-wire` crate builds the same [`Router`] over TCP sockets.

use crate::delegation::{Delegation, ServerId};
use crate::net::NetStats;
use crate::node::{decode_entries, ServerConfig, ServerNode};
use crate::transport::{ChannelTransport, Transport};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::{ListWriter, PagedList, Pager, PagerError, PagerResult};
use netdir_query::eval::{AtomicSource, Evaluator};
use netdir_query::{Query, QueryError, QueryResult};

/// Builder for a [`Cluster`]: declare contexts, then partition a
/// directory across them.
#[derive(Default)]
pub struct ClusterBuilder {
    configs: Vec<ServerConfig>,
    /// Indices of configs that are secondaries (replicas) of an earlier
    /// context registration.
    secondaries: Vec<bool>,
}

/// The outcome of partitioning a directory across declared contexts,
/// before any server has been started. [`ClusterBuilder::build`] spawns
/// in-process nodes from this; `netdir-wire` launches TCP daemons from
/// the same parts so both deployments share one partitioning rule.
pub struct ClusterParts {
    /// One config per declared server, in declaration order.
    pub configs: Vec<ServerConfig>,
    /// The delegation table (primaries head their owner groups).
    pub delegation: Delegation,
    /// Entries owned by each server (replicas hold full zone copies).
    pub partitions: Vec<Vec<Entry>>,
    /// Entries that matched no declared context.
    pub orphaned: usize,
}

impl ClusterBuilder {
    /// Start with no servers.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Add a server owning `context` as primary.
    pub fn server(mut self, name: impl Into<String>, context: Dn) -> Self {
        self.configs.push(ServerConfig::new(name, context));
        self.secondaries.push(false);
        self
    }

    /// Add a **secondary** server replicating `context` (Section 3.3:
    /// "secondary directory servers ensure that one unreachable network
    /// will not necessarily cut off network directory service"). It
    /// receives a full copy of the zone and answers when the primary is
    /// down.
    pub fn secondary(mut self, name: impl Into<String>, context: Dn) -> Self {
        self.configs.push(ServerConfig::new(name, context));
        self.secondaries.push(true);
        self
    }

    /// Partition `dir` by longest-matching context without spawning
    /// anything.
    ///
    /// Entries matching no context are dropped with a count returned in
    /// [`ClusterParts::orphaned`] (a real deployment would reject them
    /// at registration).
    pub fn into_parts(self, dir: &Directory) -> ClusterParts {
        let mut delegation = Delegation::new();
        // Primaries register first so they head their owner groups.
        for (id, cfg) in self.configs.iter().enumerate() {
            if !self.secondaries[id] {
                delegation.register(cfg.context.clone(), id);
            }
        }
        for (id, cfg) in self.configs.iter().enumerate() {
            if self.secondaries[id] {
                delegation.register(cfg.context.clone(), id);
            }
        }
        let mut partitions: Vec<Vec<Entry>> = vec![Vec::new(); self.configs.len()];
        let mut orphaned = 0usize;
        for e in dir.iter_sorted() {
            match delegation.owner_group_of(e.dn()) {
                Some(group) => {
                    // Every replica of the zone stores the entry.
                    for &owner in group {
                        partitions[owner].push(e.clone());
                    }
                }
                None => orphaned += 1,
            }
        }
        ClusterParts {
            configs: self.configs,
            delegation,
            partitions,
            orphaned,
        }
    }

    /// Partition `dir` by longest-matching context and spawn the nodes.
    pub fn build(self, dir: &Directory) -> Cluster {
        let parts = self.into_parts(dir);
        let nodes: Vec<ServerNode> = parts
            .configs
            .into_iter()
            .zip(parts.partitions)
            .map(|(cfg, entries)| ServerNode::spawn(cfg, entries))
            .collect();
        let transport =
            ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
        Cluster {
            router: Router::new(parts.delegation, Box::new(transport)),
            nodes,
            orphaned: parts.orphaned,
        }
    }
}

/// The transport-agnostic distributed evaluator: a [`Delegation`] table
/// plus a [`Transport`], with per-server down flags for §3.3 failover.
pub struct Router {
    delegation: Delegation,
    transport: Box<dyn Transport>,
    /// Simulated outages: requests route around downed servers.
    down: Vec<bool>,
}

impl Router {
    /// Route over `transport` according to `delegation`.
    pub fn new(delegation: Delegation, transport: Box<dyn Transport>) -> Router {
        Router {
            down: vec![false; transport.num_servers()],
            delegation,
            transport,
        }
    }

    /// The delegation table.
    pub fn delegation(&self) -> &Delegation {
        &self.delegation
    }

    /// The transport's network counters.
    pub fn net(&self) -> &NetStats {
        self.transport.net()
    }

    /// The underlying transport.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.transport.num_servers()
    }

    /// Mark a server down/up: subsequent routing skips downed servers,
    /// falling back to secondaries of their zones.
    pub fn set_down(&mut self, id: ServerId, down: bool) {
        if id < self.down.len() {
            self.down[id] = down;
        }
    }

    /// Is the server currently marked down?
    pub fn is_down(&self, id: ServerId) -> bool {
        self.down[id]
    }

    /// The first live server of an owner group, if any.
    fn live_member(&self, group: &[ServerId]) -> Option<ServerId> {
        group.iter().copied().find(|&id| !self.down[id])
    }

    /// Evaluate `query` as posed to server `home`. Operator evaluation
    /// happens on `pager` (the queried server's scratch space); remote
    /// atomic results are counted on the transport's [`NetStats`].
    pub fn query(
        &self,
        home: ServerId,
        pager: &Pager,
        query: &Query,
    ) -> QueryResult<Vec<Entry>> {
        let source = RoutingSource {
            router: self,
            home,
            pager: pager.clone(),
        };
        let out = Evaluator::new(&source, pager).evaluate(query)?;
        out.to_vec().map_err(QueryError::from)
    }

    /// Evaluate one atomic query as posed to server `home`: ship it to
    /// every zone intersecting its scope and merge the sorted responses.
    /// This is the building block wire daemons expose directly.
    pub fn atomic(
        &self,
        home: ServerId,
        pager: &Pager,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<Vec<Entry>> {
        let source = RoutingSource {
            router: self,
            home,
            pager: pager.clone(),
        };
        source.evaluate_atomic(base, scope, filter)?.to_vec()
    }
}

/// A running cluster of in-process directory servers.
pub struct Cluster {
    nodes: Vec<ServerNode>,
    router: Router,
    orphaned: usize,
}

impl Cluster {
    /// Network counters (messages, shipped entries/bytes).
    pub fn net(&self) -> &NetStats {
        self.router.net()
    }

    /// The delegation table.
    pub fn delegation(&self) -> &Delegation {
        self.router.delegation()
    }

    /// The routing layer (delegation + transport + liveness).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Entries that matched no context at build time.
    pub fn orphaned(&self) -> usize {
        self.orphaned
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.nodes.len()
    }

    /// Server id by name.
    pub fn server_id(&self, name: &str) -> Option<ServerId> {
        self.nodes.iter().position(|n| n.config.name == name)
    }

    /// Direct handle to a node (tests, baseline measurements).
    pub fn node(&self, id: ServerId) -> &ServerNode {
        &self.nodes[id]
    }

    /// Simulate an outage of `server` (by name): subsequent routing
    /// skips it, falling back to secondaries of its zones.
    pub fn set_down(&mut self, server: &str, down: bool) {
        if let Some(id) = self.server_id(server) {
            self.router.set_down(id, down);
        }
    }

    /// Is the server currently marked down?
    pub fn is_down(&self, id: ServerId) -> bool {
        self.router.is_down(id)
    }

    /// Evaluate `query` as posed to server `home` (by name).
    pub fn query_from(
        &self,
        home: &str,
        pager: &Pager,
        query: &Query,
    ) -> QueryResult<Vec<Entry>> {
        let home = self.server_id(home).ok_or_else(|| QueryError::Parse {
            input: home.into(),
            detail: "no such server".into(),
        })?;
        self.router.query(home, pager, query)
    }
}

/// [`AtomicSource`] that routes atomic queries across the cluster.
struct RoutingSource<'r> {
    router: &'r Router,
    home: ServerId,
    pager: Pager,
}

impl AtomicSource for RoutingSource<'_> {
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        let groups: Vec<&[ServerId]> = match scope {
            Scope::Base => self
                .router
                .delegation
                .owner_group_of(base)
                .into_iter()
                .collect(),
            Scope::One | Scope::Sub => self.router.delegation.groups_for_subtree(base),
        };
        // Route each zone to its first live replica (§3.3 failover).
        let mut servers = Vec::with_capacity(groups.len());
        for group in groups {
            match self.router.live_member(group) {
                Some(id) => servers.push(id),
                None => {
                    return Err(PagerError::CorruptRecord {
                        detail: format!(
                            "no live server for a zone required by base {base}"
                        ),
                    })
                }
            }
        }
        // Each server's zone is disjoint; responses are sorted; a k-way
        // merge preserves global order.
        let mut responses: Vec<Vec<Entry>> = Vec::with_capacity(servers.len());
        for server in servers {
            let resp = self
                .router
                .transport
                .atomic(server, self.home, base, scope, filter)
                .map_err(|e| PagerError::CorruptRecord {
                    detail: e.to_string(),
                })?;
            responses.push(decode_entries(&resp.encoded)?);
        }
        let mut pos: Vec<usize> = vec![0; responses.len()];
        let mut out = ListWriter::new(&self.pager);
        loop {
            let mut best: Option<usize> = None;
            for (i, resp) in responses.iter().enumerate() {
                let Some(e) = resp.get(pos[i]) else { continue };
                let better = match best {
                    None => true,
                    Some(b) => e.dn() < responses[b][pos[b]].dn(),
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(b) = best else { break };
            out.push(&responses[b][pos[b]])?;
            pos[b] += 1;
        }
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_query::parse_query;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// A directory spanning three zones.
    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |s: &str, sn: Option<&str>| {
            let mut b = Entry::builder(dn(s)).class("thing");
            if let Some(sn) = sn {
                b = b.attr("surName", sn);
            }
            d.insert(b.build().unwrap()).unwrap();
        };
        add("dc=com", None);
        add("dc=att, dc=com", None);
        add("ou=people, dc=att, dc=com", None);
        add("uid=jag, ou=people, dc=att, dc=com", Some("jagadish"));
        add("dc=research, dc=att, dc=com", None);
        add("ou=people, dc=research, dc=att, dc=com", None);
        add(
            "uid=jag2, ou=people, dc=research, dc=att, dc=com",
            Some("jagadish"),
        );
        add("dc=org", None);
        d
    }

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .build(&dir())
    }

    #[test]
    fn partitioning_respects_zone_cuts() {
        let c = cluster();
        assert_eq!(c.orphaned(), 0);
        assert_eq!(c.node(0).num_entries, 1); // dc=com only
        assert_eq!(c.node(1).num_entries, 3); // att minus research zone
        assert_eq!(c.node(2).num_entries, 3); // research zone
        assert_eq!(c.node(3).num_entries, 1); // org
    }

    #[test]
    fn into_parts_matches_build_partitioning() {
        let parts = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .server("org", dn("dc=org"))
            .into_parts(&dir());
        assert_eq!(parts.orphaned, 0);
        let sizes: Vec<usize> = parts.partitions.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![1, 3, 3, 1]);
        assert_eq!(parts.configs.len(), 4);
        assert!(parts.delegation.owner_group_of(&dn("dc=org")).is_some());
    }

    #[test]
    fn distributed_equals_single_server() {
        let c = cluster();
        let single = ClusterBuilder::new()
            .server("all", Dn::root())
            .build(&dir());
        let q = parse_query(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
        let pager = netdir_pager::default_pager();
        let a = c.query_from("att", &pager, &q).unwrap();
        let b = single.query_from("all", &pager, &q).unwrap();
        let names = |v: &[Entry]| -> Vec<String> {
            v.iter().map(|e| e.dn().to_string()).collect()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(names(&a), vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }

    #[test]
    fn network_shipping_is_counted() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? surName=jagadish)").unwrap();
        c.net().reset();
        let hits = c.query_from("att", &pager, &q).unwrap();
        assert_eq!(hits.len(), 2);
        let net = c.net().snapshot();
        // Sub from the forest root touches all four servers; three are
        // remote from "att".
        assert_eq!(net.requests, 3);
        assert!(net.entries_shipped >= 1); // jag2 ships from research
        assert!(net.bytes_shipped > 0);
    }

    #[test]
    fn local_queries_ship_nothing() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query(
            "(dc=research, dc=att, dc=com ? sub ? surName=jagadish)",
        )
        .unwrap();
        c.net().reset();
        let hits = c.query_from("research", &pager, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.net().snapshot().requests, 0);
    }

    #[test]
    fn merged_results_are_globally_sorted() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(null-dn ? sub ? objectClass=thing)").unwrap();
        let hits = c.query_from("org", &pager, &q).unwrap();
        assert_eq!(hits.len(), 8);
        for w in hits.windows(2) {
            assert!(w[0].dn() < w[1].dn());
        }
    }

    #[test]
    fn hierarchy_ops_across_zones() {
        // Children relation crossing a zone cut: dc=att (att zone) has
        // child dc=research (research zone).
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query(
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        )
        .unwrap();
        let hits = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &dn("dc=att, dc=com"));
    }

    #[test]
    fn secondary_takes_over_when_primary_is_down() {
        let mut c = ClusterBuilder::new()
            .server("root", dn("dc=com"))
            .server("att", dn("dc=att, dc=com"))
            .secondary("att-backup", dn("dc=att, dc=com"))
            .build(&dir());
        // The replica holds the same zone data.
        assert_eq!(
            c.node(c.server_id("att").unwrap()).num_entries,
            c.node(c.server_id("att-backup").unwrap()).num_entries
        );
        let q = parse_query("(dc=att, dc=com ? sub ? surName=jagadish)").unwrap();
        let pager = netdir_pager::default_pager();
        let before = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(before.len(), 2);
        // Primary down → the secondary answers; results identical.
        c.set_down("att", true);
        let after = c.query_from("root", &pager, &q).unwrap();
        assert_eq!(
            before.iter().map(|e| e.dn().to_string()).collect::<Vec<_>>(),
            after.iter().map(|e| e.dn().to_string()).collect::<Vec<_>>()
        );
        // Both replicas down → the zone is unreachable.
        c.set_down("att-backup", true);
        assert!(c.query_from("root", &pager, &q).is_err());
        // Recovery.
        c.set_down("att", false);
        assert_eq!(c.query_from("root", &pager, &q).unwrap().len(), 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        // Many clients hammer the cluster in parallel; every one must see
        // the same answer (server nodes serialize on their channels, but
        // nothing else is shared mutable).
        let c = cluster();
        let q = parse_query("(null-dn ? sub ? surName=jagadish)").unwrap();
        let expected: Vec<String> = {
            let pager = netdir_pager::default_pager();
            c.query_from("att", &pager, &q)
                .unwrap()
                .iter()
                .map(|e| e.dn().to_string())
                .collect()
        };
        assert_eq!(expected.len(), 2);
        std::thread::scope(|s| {
            for i in 0..8 {
                let c = &c;
                let q = &q;
                let expected = &expected;
                let home = ["root", "att", "research", "org"][i % 4];
                s.spawn(move || {
                    let pager = netdir_pager::default_pager();
                    for _ in 0..5 {
                        let got: Vec<String> = c
                            .query_from(home, &pager, q)
                            .unwrap()
                            .iter()
                            .map(|e| e.dn().to_string())
                            .collect();
                        assert_eq!(&got, expected, "client at {home} diverged");
                    }
                });
            }
        });
    }

    #[test]
    fn unknown_home_server_errors() {
        let c = cluster();
        let pager = netdir_pager::default_pager();
        let q = parse_query("(dc=com ? base ? objectClass=*)").unwrap();
        assert!(c.query_from("nope", &pager, &q).is_err());
    }
}
