//! Simulated-network accounting.
//!
//! Distribution cost in Section 8.3 is "results of those atomic queries
//! are shipped to the original queried directory server"; the experiment
//! harness quantifies that shipping. Counters are shared and thread-safe
//! (servers run on real threads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared network counters.
#[derive(Clone, Default)]
pub struct NetStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    responses: AtomicU64,
    entries_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
}

/// Point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Atomic-query requests sent to remote servers.
    pub requests: u64,
    /// Responses received.
    pub responses: u64,
    /// Entries shipped back to the queried server.
    pub entries_shipped: u64,
    /// Bytes of encoded entries shipped.
    pub bytes_shipped: u64,
}

impl NetSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    ///
    /// Saturating matters because counters are relaxed atomics updated
    /// from many threads: a snapshot raced against `reset()` (or taken
    /// from a different [`NetStats`]) may be component-wise *behind*
    /// `earlier`, and a panicking subtraction would take down the
    /// experiment harness over a measurement artifact.
    pub fn since(&self, earlier: NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            responses: self.responses.saturating_sub(earlier.responses),
            entries_shipped: self.entries_shipped.saturating_sub(earlier.entries_shipped),
            bytes_shipped: self.bytes_shipped.saturating_sub(earlier.bytes_shipped),
        }
    }
}

impl std::fmt::Display for NetSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests, {} responses, {} entries / {} bytes shipped",
            self.requests, self.responses, self.entries_shipped, self.bytes_shipped
        )
    }
}

impl NetStats {
    /// Fresh counters.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Record a remote atomic-query round trip shipping `entries` totaling
    /// `bytes`.
    pub fn record_round_trip(&self, entries: u64, bytes: u64) {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        self.inner.responses.fetch_add(1, Ordering::Relaxed);
        self.inner
            .entries_shipped
            .fetch_add(entries, Ordering::Relaxed);
        self.inner.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            requests: self.inner.requests.load(Ordering::Relaxed),
            responses: self.inner.responses.load(Ordering::Relaxed),
            entries_shipped: self.inner.entries_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.inner.bytes_shipped.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.inner.requests.store(0, Ordering::Relaxed);
        self.inner.responses.store(0, Ordering::Relaxed);
        self.inner.entries_shipped.store(0, Ordering::Relaxed);
        self.inner.bytes_shipped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let n = NetStats::new();
        n.record_round_trip(5, 500);
        n.record_round_trip(2, 100);
        let s = n.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.responses, 2);
        assert_eq!(s.entries_shipped, 7);
        assert_eq!(s.bytes_shipped, 600);
        n.reset();
        assert_eq!(n.snapshot(), NetSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let n = NetStats::new();
        n.record_round_trip(1, 10);
        let before = n.snapshot();
        n.record_round_trip(3, 30);
        let d = n.snapshot().since(before);
        assert_eq!(d.requests, 1);
        assert_eq!(d.entries_shipped, 3);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let n = NetStats::new();
        n.record_round_trip(4, 40);
        let before = n.snapshot();
        n.reset(); // counters went backwards relative to `before`
        let d = n.snapshot().since(before);
        assert_eq!(d, NetSnapshot::default());
    }
}
