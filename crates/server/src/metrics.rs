//! The bridge from per-subsystem counters to one [`MetricsRegistry`].
//!
//! Every subsystem keeps its own cheap cumulative counters ([`IoStats`],
//! [`NetStats`], [`RetryStats`], [`FaultStats`], breaker transition
//! counts). This module projects their snapshots onto the stable metric
//! names of [`netdir_obs::names`], so one registry — and one
//! Prometheus-style exposition — covers the whole stack. Sync functions
//! *set* cumulative values (idempotent: re-syncing the same snapshot is
//! a no-op), so callers can refresh the registry on every scrape.
//!
//! [`IoStats`]: netdir_pager::IoStats
//! [`NetStats`]: crate::net::NetStats
//! [`RetryStats`]: crate::retry::RetryStats
//! [`FaultStats`]: crate::fault::FaultStats

use crate::fault::FaultSnapshot;
use crate::health::BreakerTransitions;
use crate::net::NetSnapshot;
use crate::retry::RetrySnapshot;
use netdir_obs::{names, MetricsRegistry};
use netdir_pager::{IoSnapshot, PoolMetricsSnapshot};

/// Pre-register every tracked metric so the exposition shows explicit
/// zeros before the first sync (absent and zero are different claims).
pub fn register_all(reg: &MetricsRegistry) {
    for &name in names::TRACKED {
        match name {
            names::QUERY_DURATION_US
            | names::QUERY_PAGES
            | names::PAR_READY_WIDTH
            | names::PAR_WORKER_PAGES
            | names::WAL_REPLAY_US
            | names::DEADLINE_USED_US => {
                reg.histogram(name);
            }
            names::EPOCH_LAG
            | names::ADMISSION_INFLIGHT
            | names::ADMISSION_QUEUE_DEPTH
            | names::DEADLINE_ABANDONED
            | names::PLANNER_CATALOG_SHAPES
            | names::PLANNER_EPOCH => {
                reg.gauge(name);
            }
            _ => {
                reg.counter(name);
            }
        }
    }
}

/// Project a cumulative pager I/O snapshot onto the registry.
pub fn sync_io(reg: &MetricsRegistry, io: IoSnapshot) {
    reg.counter(names::IO_READS).set(io.reads);
    reg.counter(names::IO_WRITES).set(io.writes);
    reg.counter(names::IO_ALLOCS).set(io.allocs);
}

/// Accumulate a per-query I/O *delta* into the cumulative counters.
///
/// For callers that evaluate each query on a fresh scratch pager (wire
/// daemons): there is no long-lived cumulative `IoStats` to [`sync_io`]
/// from, so each query's ledger is added instead.
pub fn absorb_io(reg: &MetricsRegistry, io: IoSnapshot) {
    reg.counter(names::IO_READS).add(io.reads);
    reg.counter(names::IO_WRITES).add(io.writes);
    reg.counter(names::IO_ALLOCS).add(io.allocs);
}

/// Project a cumulative buffer-pool behavior snapshot onto the registry.
pub fn sync_pool(reg: &MetricsRegistry, pool: PoolMetricsSnapshot) {
    reg.counter(names::POOL_HITS).set(pool.hits);
    reg.counter(names::POOL_MISSES).set(pool.misses);
    reg.counter(names::POOL_EVICTIONS).set(pool.evictions);
    reg.counter(names::POOL_GHOST_READMISSIONS)
        .set(pool.ghost_readmissions);
    reg.counter(names::POOL_COMPRESSED_BYTES_SAVED)
        .set(pool.compressed_bytes_saved);
}

/// Accumulate a per-query pool-behavior *delta* into the cumulative
/// counters — the scratch-pager counterpart of [`absorb_io`].
pub fn absorb_pool(reg: &MetricsRegistry, pool: PoolMetricsSnapshot) {
    reg.counter(names::POOL_HITS).add(pool.hits);
    reg.counter(names::POOL_MISSES).add(pool.misses);
    reg.counter(names::POOL_EVICTIONS).add(pool.evictions);
    reg.counter(names::POOL_GHOST_READMISSIONS)
        .add(pool.ghost_readmissions);
    reg.counter(names::POOL_COMPRESSED_BYTES_SAVED)
        .add(pool.compressed_bytes_saved);
}

/// Project a cumulative network-shipping snapshot onto the registry.
pub fn sync_net(reg: &MetricsRegistry, net: NetSnapshot) {
    reg.counter(names::NET_REQUESTS).set(net.requests);
    reg.counter(names::NET_RESPONSES).set(net.responses);
    reg.counter(names::NET_ENTRIES_SHIPPED).set(net.entries_shipped);
    reg.counter(names::NET_BYTES_SHIPPED).set(net.bytes_shipped);
}

/// Project a cumulative retry-effort snapshot onto the registry.
pub fn sync_retry(reg: &MetricsRegistry, retry: RetrySnapshot) {
    reg.counter(names::RETRY_ATTEMPTS).set(retry.attempts);
    reg.counter(names::RETRY_RETRIES).set(retry.retries);
    reg.counter(names::RETRY_GAVE_UP).set(retry.gave_up);
}

/// Project a cumulative fault-injection snapshot onto the registry.
pub fn sync_fault(reg: &MetricsRegistry, fault: FaultSnapshot) {
    reg.counter(names::FAULT_CALLS).set(fault.calls);
    reg.counter(names::FAULT_DROPPED).set(fault.dropped);
    reg.counter(names::FAULT_ERRORED).set(fault.errored);
    reg.counter(names::FAULT_DELAYED).set(fault.delayed);
    reg.counter(names::FAULT_TRUNCATED).set(fault.truncated);
    reg.counter(names::FAULT_UNREACHABLE).set(fault.unreachable);
}

/// Project cumulative circuit-breaker transition counts onto the
/// registry.
pub fn sync_health(reg: &MetricsRegistry, t: BreakerTransitions) {
    reg.counter(names::BREAKER_OPENED).set(t.opened);
    reg.counter(names::BREAKER_HALF_OPENED).set(t.half_opened);
    reg.counter(names::BREAKER_CLOSED).set(t.closed);
}

/// Project a cumulative planner snapshot onto the registry.
pub fn sync_planner(reg: &MetricsRegistry, p: netdir_query::PlannerSnapshot) {
    reg.counter(names::PLANNER_PLANNED).set(p.planned);
    reg.counter(names::PLANNER_CACHE_HITS).set(p.cache_hits);
    reg.counter(names::PLANNER_CACHE_MISSES).set(p.cache_misses);
    reg.counter(names::PLANNER_STEPS_APPLIED).set(p.steps_applied);
    reg.counter(names::PLANNER_CANDIDATES)
        .set(p.candidates_considered);
    reg.gauge(names::PLANNER_CATALOG_SHAPES).set(p.catalog_shapes);
    reg.counter(names::PLANNER_CATALOG_OBSERVATIONS)
        .set(p.catalog_observations);
    reg.gauge(names::PLANNER_EPOCH).set(p.epoch);
}

/// Record one completed query: bumps the query counter and feeds the
/// duration/pages histograms.
pub fn record_query(reg: &MetricsRegistry, elapsed_nanos: u64, pages: u64) {
    reg.counter(names::QUERIES).inc();
    reg.histogram(names::QUERY_DURATION_US)
        .observe(elapsed_nanos / 1_000);
    reg.histogram(names::QUERY_PAGES).observe(pages);
}

/// Record one parallel evaluation's schedule: how many workers ran,
/// how wide each ready-set wave was, and how many pages each worker's
/// sub-ledger absorbed.
pub fn record_par(reg: &MetricsRegistry, par: &netdir_query::ParReport) {
    reg.counter(names::PAR_WORKERS_SPAWNED).add(par.workers_spawned);
    for &width in &par.ready_widths {
        reg.histogram(names::PAR_READY_WIDTH).observe(width as u64);
    }
    for io in &par.worker_io {
        reg.histogram(names::PAR_WORKER_PAGES).observe(io.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_exposes_every_tracked_name() {
        let reg = MetricsRegistry::default();
        register_all(&reg);
        let text = reg.render_prometheus();
        for name in names::TRACKED {
            assert!(text.contains(name), "exposition missing {name}");
        }
    }

    #[test]
    fn syncs_are_idempotent_and_cumulative() {
        let reg = MetricsRegistry::default();
        let net = NetSnapshot {
            requests: 3,
            responses: 3,
            entries_shipped: 40,
            bytes_shipped: 4096,
        };
        sync_net(&reg, net);
        sync_net(&reg, net); // re-sync must not double-count
        assert_eq!(reg.counter(names::NET_REQUESTS).get(), 3);
        assert_eq!(reg.counter(names::NET_BYTES_SHIPPED).get(), 4096);
        sync_health(
            &reg,
            BreakerTransitions {
                opened: 2,
                half_opened: 1,
                closed: 1,
            },
        );
        assert_eq!(reg.counter(names::BREAKER_OPENED).get(), 2);
    }

    #[test]
    fn pool_sync_sets_and_absorb_accumulates() {
        let reg = MetricsRegistry::default();
        let snap = PoolMetricsSnapshot {
            hits: 10,
            misses: 4,
            evictions: 2,
            ghost_readmissions: 1,
            compressed_bytes_saved: 512,
        };
        sync_pool(&reg, snap);
        sync_pool(&reg, snap); // idempotent
        assert_eq!(reg.counter(names::POOL_HITS).get(), 10);
        assert_eq!(reg.counter(names::POOL_GHOST_READMISSIONS).get(), 1);
        absorb_pool(&reg, snap); // delta path adds
        assert_eq!(reg.counter(names::POOL_HITS).get(), 20);
        assert_eq!(reg.counter(names::POOL_COMPRESSED_BYTES_SAVED).get(), 1024);
    }

    #[test]
    fn record_par_feeds_schedule_series() {
        let reg = MetricsRegistry::default();
        let par = netdir_query::ParReport {
            degree: 4,
            waves: 2,
            ready_widths: vec![3, 1],
            workers_spawned: 4,
            worker_io: vec![
                netdir_pager::IoSnapshot { reads: 2, writes: 1, allocs: 3 },
                netdir_pager::IoSnapshot { reads: 4, writes: 0, allocs: 0 },
            ],
        };
        record_par(&reg, &par);
        assert_eq!(reg.counter(names::PAR_WORKERS_SPAWNED).get(), 4);
        let w = reg.histogram(names::PAR_READY_WIDTH).snapshot();
        assert_eq!((w.count, w.sum), (2, 4));
        let p = reg.histogram(names::PAR_WORKER_PAGES).snapshot();
        // `total()` counts physical page I/O: reads + writes.
        assert_eq!((p.count, p.sum), (2, 7));
    }

    #[test]
    fn record_query_feeds_counter_and_histograms() {
        let reg = MetricsRegistry::default();
        record_query(&reg, 2_500_000, 17); // 2.5ms
        record_query(&reg, 900, 1); // 0.9µs rounds to 0
        assert_eq!(reg.counter(names::QUERIES).get(), 2);
        let d = reg.histogram(names::QUERY_DURATION_US).snapshot();
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 2_500);
        let p = reg.histogram(names::QUERY_PAGES).snapshot();
        assert_eq!(p.sum, 18);
    }
}
