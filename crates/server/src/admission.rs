//! Admission control: the policy layer that decides, request by
//! request, whether the daemon does work or sheds load.
//!
//! Three independent limits compose, checked in this order:
//!
//! 1. **Concurrency cap** (`max_inflight`) — a global ceiling on
//!    requests admitted and not yet finished. The cheapest check, and
//!    refusing here charges no per-peer state.
//! 2. **Anti-enumeration cap** (`enumeration`) — a per-peer ceiling on
//!    result entries read per window, so a client cannot walk the whole
//!    directory by issuing many individually-cheap queries (ZippyViewer's
//!    dirnode hardening list names exactly this).
//! 3. **Rate limit** (`rate`) — a per-peer token bucket over request
//!    *count*; bursts up to `burst`, sustained at `per_sec`.
//!
//! Every rejection maps to one wire frame — `Busy { retry_after_ms }` —
//! carrying the limiter's own estimate of when retrying could succeed.
//! The controller never sleeps and never reads the wall clock directly:
//! time comes from an injected [`Clock`], so every limiter decision is
//! deterministic under a [`ManualClock`](netdir_obs::ManualClock) and
//! the chaos suite can pin `Busy` accounting bit-for-bit.
//!
//! Token-bucket arithmetic is integer-only (nanotokens: one token =
//! 10⁹), so two controllers fed the same clock readings agree exactly.

use netdir_obs::{names, Clock, Counter, Gauge, Histogram, MetricsRegistry, MonotonicClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One token, in nanotokens.
const TOKEN: u64 = 1_000_000_000;

/// A per-peer token bucket over request count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained refill rate, requests per second.
    pub per_sec: u32,
    /// Bucket capacity: how many requests a cold peer may burst.
    pub burst: u32,
}

/// A per-peer ceiling on result entries per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumCap {
    /// Entries a peer may read per window before being shed.
    pub max_entries: u64,
    /// Window length; the counter resets when it elapses.
    pub window: Duration,
}

/// The policy knobs. `Default` is fully permissive (no limits), so a
/// controller is safe to install unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Max concurrently admitted requests; `0` = unlimited.
    pub max_inflight: usize,
    /// Per-peer request-rate limit, if any.
    pub rate: Option<RateLimit>,
    /// Per-peer anti-enumeration cap, if any.
    pub enumeration: Option<EnumCap>,
    /// Retry hint attached to rejections that have no natural horizon
    /// of their own (queue full, inflight cap).
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 0,
            rate: None,
            enumeration: None,
            retry_after: Duration::from_millis(50),
        }
    }
}

/// Why a request was shed. Every variant carries the limiter's estimate
/// of when a retry could succeed; all of them travel as `Busy` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The concurrency cap (or the accept queue) is full.
    Busy {
        /// Suggested client backoff.
        retry_after: Duration,
    },
    /// The peer's token bucket ran dry.
    RateLimited {
        /// Time until the bucket holds one whole token again.
        retry_after: Duration,
    },
    /// The peer exhausted its per-window results budget.
    EnumCapped {
        /// Time until the current window rolls over.
        retry_after: Duration,
    },
}

impl Rejection {
    /// The retry hint, whatever the cause.
    pub fn retry_after(&self) -> Duration {
        match *self {
            Rejection::Busy { retry_after }
            | Rejection::RateLimited { retry_after }
            | Rejection::EnumCapped { retry_after } => retry_after,
        }
    }

    /// The retry hint in whole milliseconds, as the `Busy` frame
    /// carries it (rounded up so "0.4ms" does not become "retry now").
    pub fn retry_after_ms(&self) -> u32 {
        let ms = self.retry_after().as_millis();
        let ms = if ms == 0 && !self.retry_after().is_zero() { 1 } else { ms };
        u32::try_from(ms).unwrap_or(u32::MAX)
    }
}

/// Per-peer limiter state.
#[derive(Debug)]
struct PeerState {
    /// Bucket level in nanotokens.
    tokens: u64,
    /// Clock reading of the last refill.
    refilled_at: Duration,
    /// Start of the current enumeration window.
    window_start: Duration,
    /// Entries charged in the current window.
    window_entries: u64,
}

/// A point-in-time view of the admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed with `Busy`, all causes.
    pub busy_rejections: u64,
    /// ... of which: token bucket dry.
    pub rate_limited: u64,
    /// ... of which: enumeration cap hit.
    pub enum_capped: u64,
    /// Requests admitted and not yet released.
    pub inflight: u64,
    /// Requests whose execution deadline expired.
    pub deadline_exceeded: u64,
}

/// The shared admission policy: one per daemon, consulted by the accept
/// thread (queue bound) and by every worker (per-request limits).
///
/// All series are recorded through [`MetricsRegistry`] handles, so a
/// controller built on the daemon's registry surfaces in its Prometheus
/// exposition with no extra sync step.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    clock: Arc<dyn Clock>,
    peers: Mutex<HashMap<IpAddr, PeerState>>,
    /// Authoritative inflight count (the gauge mirrors it).
    inflight_raw: AtomicU64,
    /// Runaway evaluator threads (deadline fired, thread still running).
    abandoned_raw: AtomicU64,
    admitted: Counter,
    busy: Counter,
    rate_limited: Counter,
    enum_capped: Counter,
    deadline_exceeded: Counter,
    inflight: Gauge,
    queue_depth: Gauge,
    abandoned: Gauge,
    deadline_used: Histogram,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("cfg", &self.cfg)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl AdmissionController {
    /// A controller enforcing `cfg`, reading time from `clock`,
    /// recording into `reg`.
    pub fn new(
        cfg: AdmissionConfig,
        clock: Arc<dyn Clock>,
        reg: &MetricsRegistry,
    ) -> AdmissionController {
        AdmissionController {
            cfg,
            clock,
            peers: Mutex::new(HashMap::new()),
            inflight_raw: AtomicU64::new(0),
            abandoned_raw: AtomicU64::new(0),
            admitted: reg.counter(names::ADMISSION_ADMITTED),
            busy: reg.counter(names::BUSY_REJECTIONS),
            rate_limited: reg.counter(names::ADMISSION_RATE_LIMITED),
            enum_capped: reg.counter(names::ADMISSION_ENUM_CAPPED),
            deadline_exceeded: reg.counter(names::DEADLINE_EXCEEDED),
            inflight: reg.gauge(names::ADMISSION_INFLIGHT),
            queue_depth: reg.gauge(names::ADMISSION_QUEUE_DEPTH),
            abandoned: reg.gauge(names::DEADLINE_ABANDONED),
            deadline_used: reg.histogram(names::DEADLINE_USED_US),
        }
    }

    /// A fully permissive controller on its own private registry — the
    /// default when a server is built without an explicit policy, so
    /// accounting always works even when no limit ever fires.
    pub fn unlimited() -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::default(),
            Arc::new(MonotonicClock::new()),
            &MetricsRegistry::new(),
        )
    }

    /// The configured policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The controller's time source — the daemon's single clock, shared
    /// so callers measuring deadlines use the same time the admission
    /// accounting does (and so tests driving a [`ManualClock`] steer
    /// both).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Decide one request from `peer`. `Ok` means the caller owns one
    /// inflight slot and must call [`release`](Self::release) when the
    /// response has been written.
    pub fn admit(&self, peer: Option<IpAddr>) -> Result<(), Rejection> {
        // 1. Concurrency cap.
        if self.cfg.max_inflight > 0 {
            let cap = self.cfg.max_inflight as u64;
            let won = self
                .inflight_raw
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    (cur < cap).then_some(cur + 1)
                })
                .is_ok();
            if !won {
                self.busy.inc();
                return Err(Rejection::Busy {
                    retry_after: self.cfg.retry_after,
                });
            }
        } else {
            self.inflight_raw.fetch_add(1, Ordering::Relaxed);
        }

        if let Some(ip) = peer {
            if let Err(rejection) = self.admit_peer(ip) {
                // Give the slot back before reporting the shed.
                self.inflight_raw.fetch_sub(1, Ordering::Relaxed);
                self.mirror_inflight();
                self.busy.inc();
                match rejection {
                    Rejection::RateLimited { .. } => self.rate_limited.inc(),
                    Rejection::EnumCapped { .. } => self.enum_capped.inc(),
                    Rejection::Busy { .. } => {}
                }
                return Err(rejection);
            }
        }

        self.admitted.inc();
        self.mirror_inflight();
        Ok(())
    }

    /// The per-peer limits (enumeration window, then token bucket).
    fn admit_peer(&self, ip: IpAddr) -> Result<(), Rejection> {
        let now = self.clock.now();
        let mut peers = self.peers.lock();
        let burst = self.cfg.rate.map_or(0, |r| u64::from(r.burst));
        let st = peers.entry(ip).or_insert(PeerState {
            tokens: burst.saturating_mul(TOKEN),
            refilled_at: now,
            window_start: now,
            window_entries: 0,
        });

        if let Some(cap) = self.cfg.enumeration {
            if now >= st.window_start + cap.window {
                st.window_start = now;
                st.window_entries = 0;
            }
            if st.window_entries >= cap.max_entries {
                return Err(Rejection::EnumCapped {
                    retry_after: (st.window_start + cap.window) - now,
                });
            }
        }

        if let Some(rate) = self.cfg.rate {
            // Refill in nanotokens: `per_sec` tokens/s is exactly
            // `per_sec` nanotokens per nanosecond.
            let elapsed = now.saturating_sub(st.refilled_at).as_nanos();
            let refill = elapsed.saturating_mul(u128::from(rate.per_sec));
            let cap = u64::from(rate.burst).saturating_mul(TOKEN);
            st.tokens = u64::try_from(u128::from(st.tokens).saturating_add(refill))
                .unwrap_or(u64::MAX)
                .min(cap);
            st.refilled_at = now;
            if st.tokens >= TOKEN {
                st.tokens -= TOKEN;
            } else {
                let deficit = TOKEN - st.tokens;
                let nanos = deficit.div_ceil(u64::from(rate.per_sec.max(1)));
                return Err(Rejection::RateLimited {
                    retry_after: Duration::from_nanos(nanos),
                });
            }
        }
        Ok(())
    }

    /// Return an admitted request's inflight slot.
    pub fn release(&self) {
        self.inflight_raw.fetch_sub(1, Ordering::Relaxed);
        self.mirror_inflight();
    }

    fn mirror_inflight(&self) {
        self.inflight.set(self.inflight_raw.load(Ordering::Relaxed));
    }

    /// Charge `entries` result entries to `peer`'s enumeration window.
    pub fn note_results(&self, peer: Option<IpAddr>, entries: u64) {
        let (Some(ip), Some(cap)) = (peer, self.cfg.enumeration) else {
            return;
        };
        let now = self.clock.now();
        let mut peers = self.peers.lock();
        if let Some(st) = peers.get_mut(&ip) {
            if now >= st.window_start + cap.window {
                st.window_start = now;
                st.window_entries = 0;
            }
            st.window_entries = st.window_entries.saturating_add(entries);
        }
    }

    /// Count a shed performed before admission — the accept thread's
    /// queue bound — and return the retry hint to put on the wire.
    pub fn reject_queue_full(&self) -> Duration {
        self.busy.inc();
        self.cfg.retry_after
    }

    /// Mirror the accept→worker queue depth into its gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.set(depth);
    }

    /// Count one request whose execution deadline expired.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.inc();
    }

    /// Record the execution time of a request that finished in budget.
    pub fn record_deadline_used(&self, elapsed: Duration) {
        self.deadline_used
            .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// A runaway evaluator thread outlived its deadline…
    pub fn abandon_begin(&self) {
        self.abandoned
            .set(self.abandoned_raw.fetch_add(1, Ordering::Relaxed) + 1);
    }

    /// …and eventually finished.
    pub fn abandon_end(&self) {
        self.abandoned
            .set(self.abandoned_raw.fetch_sub(1, Ordering::Relaxed).saturating_sub(1));
    }

    /// Point-in-time counter values.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            admitted: self.admitted.get(),
            busy_rejections: self.busy.get(),
            rate_limited: self.rate_limited.get(),
            enum_capped: self.enum_capped.get(),
            inflight: self.inflight_raw.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_obs::ManualClock;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> Option<IpAddr> {
        Some(IpAddr::V4(Ipv4Addr::new(127, 0, 0, last)))
    }

    fn controller(cfg: AdmissionConfig) -> (AdmissionController, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let reg = MetricsRegistry::new();
        (AdmissionController::new(cfg, clock.clone(), &reg), clock)
    }

    #[test]
    fn inflight_cap_rejects_then_recovers_on_release() {
        let (c, _) = controller(AdmissionConfig {
            max_inflight: 2,
            ..AdmissionConfig::default()
        });
        assert!(c.admit(ip(1)).is_ok());
        assert!(c.admit(ip(1)).is_ok());
        let rej = c.admit(ip(1)).unwrap_err();
        assert!(matches!(rej, Rejection::Busy { .. }));
        assert!(rej.retry_after_ms() > 0);
        c.release();
        assert!(c.admit(ip(1)).is_ok());
        let snap = c.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.inflight, 2);
    }

    #[test]
    fn token_bucket_bursts_then_refills_with_the_clock() {
        let (c, clock) = controller(AdmissionConfig {
            rate: Some(RateLimit { per_sec: 1, burst: 2 }),
            ..AdmissionConfig::default()
        });
        assert!(c.admit(ip(1)).is_ok());
        assert!(c.admit(ip(1)).is_ok());
        let rej = c.admit(ip(1)).unwrap_err();
        match rej {
            Rejection::RateLimited { retry_after } => {
                assert_eq!(retry_after, Duration::from_secs(1));
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // Frozen clock: still dry.
        assert!(c.admit(ip(1)).is_err());
        // One second refills exactly one token.
        clock.advance(Duration::from_secs(1));
        assert!(c.admit(ip(1)).is_ok());
        assert!(c.admit(ip(1)).is_err());
        // Rejected requests release their inflight slot.
        assert_eq!(c.snapshot().inflight, 3);
        let snap = c.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rate_limited, 3);
        assert_eq!(snap.busy_rejections, 3);
    }

    #[test]
    fn buckets_are_per_peer() {
        let (c, _) = controller(AdmissionConfig {
            rate: Some(RateLimit { per_sec: 1, burst: 1 }),
            ..AdmissionConfig::default()
        });
        assert!(c.admit(ip(1)).is_ok());
        assert!(c.admit(ip(1)).is_err());
        assert!(c.admit(ip(2)).is_ok(), "a different peer has its own bucket");
        // A peerless caller (e.g. a unix-domain future) skips the
        // per-peer limits entirely.
        assert!(c.admit(None).is_ok());
    }

    #[test]
    fn enumeration_cap_sheds_until_the_window_rolls() {
        let (c, clock) = controller(AdmissionConfig {
            enumeration: Some(EnumCap {
                max_entries: 10,
                window: Duration::from_secs(60),
            }),
            ..AdmissionConfig::default()
        });
        assert!(c.admit(ip(1)).is_ok());
        c.note_results(ip(1), 12);
        c.release();
        let rej = c.admit(ip(1)).unwrap_err();
        match rej {
            Rejection::EnumCapped { retry_after } => {
                assert_eq!(retry_after, Duration::from_secs(60));
            }
            other => panic!("expected EnumCapped, got {other:?}"),
        }
        assert_eq!(c.snapshot().enum_capped, 1);
        clock.advance(Duration::from_secs(60));
        assert!(c.admit(ip(1)).is_ok(), "fresh window, fresh budget");
    }

    #[test]
    fn identical_histories_produce_identical_snapshots() {
        let cfg = AdmissionConfig {
            max_inflight: 3,
            rate: Some(RateLimit { per_sec: 5, burst: 2 }),
            enumeration: Some(EnumCap {
                max_entries: 100,
                window: Duration::from_secs(1),
            }),
            ..AdmissionConfig::default()
        };
        let run = || {
            let (c, clock) = controller(cfg);
            let mut outcomes = Vec::new();
            for i in 0..20u64 {
                let r = c.admit(ip((i % 3) as u8));
                outcomes.push(r.map_err(|e| e.retry_after()));
                if r.is_ok() {
                    c.note_results(ip((i % 3) as u8), 7);
                    c.release();
                }
                clock.advance(Duration::from_millis(37));
            }
            (outcomes, c.snapshot())
        };
        assert_eq!(run(), run(), "admission is a pure function of the clock");
    }

    #[test]
    fn queue_and_deadline_accounting_feed_the_snapshot() {
        let (c, _) = controller(AdmissionConfig::default());
        assert_eq!(c.reject_queue_full(), Duration::from_millis(50));
        c.record_deadline_exceeded();
        c.abandon_begin();
        c.abandon_end();
        c.record_deadline_used(Duration::from_micros(1234));
        let snap = c.snapshot();
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.deadline_exceeded, 1);
    }
}
