//! Per-server health tracking: a circuit breaker behind `&self`.
//!
//! Section 3.3's promise — "one unreachable network will not necessarily
//! cut off network directory service" — needs liveness the router can
//! *learn*, not a flag an operator flips by hand. Each server gets a
//! small three-state circuit breaker:
//!
//! ```text
//!            failure (× threshold)
//!   Closed ──────────────────────────▶ Open
//!     ▲  ▲                              │ cooldown elapses
//!     │  └── success ── HalfOpen ◀──────┘
//!     │                    │
//!     └────────────────────┘ failure → Open (cooldown re-arms)
//! ```
//!
//! * **Closed** — healthy; consecutive failures are counted, a success
//!   resets the count.
//! * **Open** — tripped after `failure_threshold` consecutive failures;
//!   routing skips the server entirely (no connection attempts) until
//!   `cooldown` elapses.
//! * **HalfOpen** — the cooldown expired; the server is offered probe
//!   traffic again. The first success closes the breaker, the first
//!   failure re-opens it and re-arms the cooldown.
//!
//! Everything is interior-mutable (an `AtomicBool` plus one small mutex
//! per server), so the router's query path stays `&self` and concurrent
//! clients share one view of cluster health. A separate **forced-down**
//! flag preserves the old operator-controlled `set_down` semantics: a
//! forced-down server is unavailable regardless of breaker state and
//! never recovers on its own.

use crate::delegation::ServerId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for the per-server circuit breakers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker to Open.
    pub failure_threshold: u32,
    /// How long an Open breaker rejects traffic before offering a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state (for tests, logs, and experiment tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy, serving traffic.
    Closed,
    /// Tripped, rejecting traffic until the cooldown expires.
    Open,
    /// Cooldown expired, accepting probe traffic.
    HalfOpen,
}

enum State {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

struct ServerHealth {
    forced_down: AtomicBool,
    state: Mutex<State>,
}

impl ServerHealth {
    fn new() -> ServerHealth {
        ServerHealth {
            forced_down: AtomicBool::new(false),
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }
}

/// Health of every server in a cluster, indexed by [`ServerId`].
pub struct HealthTracker {
    cfg: BreakerConfig,
    servers: Vec<ServerHealth>,
}

impl HealthTracker {
    /// Track `n` servers, all initially healthy.
    pub fn new(n: usize, cfg: BreakerConfig) -> HealthTracker {
        HealthTracker {
            cfg,
            servers: (0..n).map(|_| ServerHealth::new()).collect(),
        }
    }

    /// Number of tracked servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True iff no servers are tracked.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The breaker configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// May traffic be routed to `id` right now? An Open breaker whose
    /// cooldown has expired transitions to HalfOpen here (this is the
    /// probe admission point). Unknown ids are unavailable.
    pub fn available(&self, id: ServerId) -> bool {
        let Some(s) = self.servers.get(id) else {
            return false;
        };
        if s.forced_down.load(Ordering::SeqCst) {
            return false;
        }
        let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
        match &*state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { since } => {
                if since.elapsed() >= self.cfg.cooldown {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful exchange with `id`: closes the breaker and
    /// clears the failure count.
    pub fn record_success(&self, id: ServerId) {
        if let Some(s) = self.servers.get(id) {
            let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
            *state = State::Closed { failures: 0 };
        }
    }

    /// Record a failed exchange with `id`: counts toward the trip
    /// threshold; a HalfOpen probe failure re-opens immediately.
    pub fn record_failure(&self, id: ServerId) {
        let Some(s) = self.servers.get(id) else { return };
        let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match &*state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold.max(1) {
                    State::Open { since: Instant::now() }
                } else {
                    State::Closed { failures }
                }
            }
            // A failed probe (or a straggler failure racing the trip)
            // re-arms the cooldown from now.
            State::HalfOpen | State::Open { .. } => State::Open { since: Instant::now() },
        };
    }

    /// Operator-forced outage: unavailable regardless of breaker state,
    /// until forced back up. This is the §3.3 "simulated outage" switch
    /// the old `set_down` API flipped.
    pub fn force_down(&self, id: ServerId, down: bool) {
        if let Some(s) = self.servers.get(id) {
            s.forced_down.store(down, Ordering::SeqCst);
        }
    }

    /// Is the server operator-forced down?
    pub fn is_forced_down(&self, id: ServerId) -> bool {
        self.servers
            .get(id)
            .is_some_and(|s| s.forced_down.load(Ordering::SeqCst))
    }

    /// The server's breaker state, without admitting a probe (an Open
    /// breaker past its cooldown still reads Open until
    /// [`HealthTracker::available`] admits the probe).
    pub fn state(&self, id: ServerId) -> BreakerState {
        match self.servers.get(id).map(|s| {
            let state = s.state.lock().unwrap_or_else(|e| e.into_inner());
            match &*state {
                State::Closed { .. } => BreakerState::Closed,
                State::Open { .. } => BreakerState::Open,
                State::HalfOpen => BreakerState::HalfOpen,
            }
        }) {
            Some(st) => st,
            None => BreakerState::Open,
        }
    }

    /// Consecutive failures recorded while Closed (0 in other states).
    pub fn consecutive_failures(&self, id: ServerId) -> u32 {
        self.servers
            .get(id)
            .map(|s| {
                let state = s.state.lock().unwrap_or_else(|e| e.into_inner());
                match &*state {
                    State::Closed { failures } => *failures,
                    _ => 0,
                }
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(threshold: u32, cooldown_ms: u64) -> HealthTracker {
        HealthTracker::new(
            2,
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(cooldown_ms),
            },
        )
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let h = tracker(3, 60_000);
        h.record_failure(0);
        h.record_failure(0);
        assert!(h.available(0));
        assert_eq!(h.consecutive_failures(0), 2);
        h.record_success(0); // streak broken
        h.record_failure(0);
        h.record_failure(0);
        assert!(h.available(0), "streak must reset on success");
        h.record_failure(0);
        assert!(!h.available(0), "third consecutive failure trips");
        assert_eq!(h.state(0), BreakerState::Open);
        // The other server is unaffected.
        assert!(h.available(1));
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close_or_reopen() {
        let h = tracker(1, 20);
        h.record_failure(0);
        assert!(!h.available(0));
        std::thread::sleep(Duration::from_millis(30));
        // Cooldown expired: probe admitted.
        assert!(h.available(0));
        assert_eq!(h.state(0), BreakerState::HalfOpen);
        // Probe fails → straight back to Open, cooldown re-armed.
        h.record_failure(0);
        assert!(!h.available(0));
        std::thread::sleep(Duration::from_millis(30));
        assert!(h.available(0));
        // Probe succeeds → Closed.
        h.record_success(0);
        assert_eq!(h.state(0), BreakerState::Closed);
        assert!(h.available(0));
    }

    #[test]
    fn forced_down_overrides_breaker_and_never_self_heals() {
        let h = tracker(3, 1);
        h.force_down(0, true);
        assert!(!h.available(0));
        assert!(h.is_forced_down(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!h.available(0), "forced outage must not cool down");
        h.record_success(0);
        assert!(!h.available(0), "successes do not lift a forced outage");
        h.force_down(0, false);
        assert!(h.available(0));
    }

    #[test]
    fn unknown_ids_are_unavailable_and_harmless() {
        let h = tracker(1, 1);
        assert!(!h.available(99));
        h.record_failure(99);
        h.record_success(99);
        h.force_down(99, true);
        assert_eq!(h.state(99), BreakerState::Open);
    }
}
