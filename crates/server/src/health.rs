//! Per-server health tracking: a circuit breaker behind `&self`.
//!
//! Section 3.3's promise — "one unreachable network will not necessarily
//! cut off network directory service" — needs liveness the router can
//! *learn*, not a flag an operator flips by hand. Each server gets a
//! small three-state circuit breaker:
//!
//! ```text
//!            failure (× threshold)
//!   Closed ──────────────────────────▶ Open
//!     ▲  ▲                              │ cooldown elapses
//!     │  └── success ── HalfOpen ◀──────┘
//!     │                    │
//!     └────────────────────┘ failure → Open (cooldown re-arms)
//! ```
//!
//! * **Closed** — healthy; consecutive failures are counted, a success
//!   resets the count.
//! * **Open** — tripped after `failure_threshold` consecutive failures;
//!   routing skips the server entirely (no connection attempts) until
//!   `cooldown` elapses.
//! * **HalfOpen** — the cooldown expired; the server is offered probe
//!   traffic again. The first success closes the breaker, the first
//!   failure re-opens it and re-arms the cooldown.
//!
//! Everything is interior-mutable (an `AtomicBool` plus one small mutex
//! per server), so the router's query path stays `&self` and concurrent
//! clients share one view of cluster health. A separate **forced-down**
//! flag preserves the old operator-controlled `set_down` semantics: a
//! forced-down server is unavailable regardless of breaker state and
//! never recovers on its own.
//!
//! Time comes from an injected [`Clock`] — monotonic in production,
//! manually advanced in tests — so cooldown behaviour is testable
//! without sleeping. Every state transition is counted
//! ([`HealthTracker::transitions`]) for the metrics registry.

use crate::delegation::ServerId;
use netdir_obs::{Clock, MonotonicClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning for the per-server circuit breakers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker to Open.
    pub failure_threshold: u32,
    /// How long an Open breaker rejects traffic before offering a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state (for tests, logs, and experiment tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy, serving traffic.
    Closed,
    /// Tripped, rejecting traffic until the cooldown expires.
    Open,
    /// Cooldown expired, accepting probe traffic.
    HalfOpen,
}

/// Cumulative counts of breaker state transitions across all servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerTransitions {
    /// Trips into Open (Closed→Open and re-opened HalfOpen→Open).
    pub opened: u64,
    /// Probes admitted, Open→HalfOpen.
    pub half_opened: u64,
    /// Recoveries, Open/HalfOpen→Closed.
    pub closed: u64,
}

enum State {
    Closed {
        failures: u32,
    },
    /// Open since the clock read `since` (a reading of the tracker's
    /// own [`Clock`], not wall time).
    Open {
        since: Duration,
    },
    HalfOpen,
}

struct ServerHealth {
    forced_down: AtomicBool,
    state: Mutex<State>,
}

impl ServerHealth {
    fn new() -> ServerHealth {
        ServerHealth {
            forced_down: AtomicBool::new(false),
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }
}

/// Health of every server in a cluster, indexed by [`ServerId`].
pub struct HealthTracker {
    cfg: BreakerConfig,
    clock: Arc<dyn Clock>,
    servers: Vec<ServerHealth>,
    opened: AtomicU64,
    half_opened: AtomicU64,
    closed: AtomicU64,
}

impl HealthTracker {
    /// Track `n` servers, all initially healthy, on monotonic time.
    pub fn new(n: usize, cfg: BreakerConfig) -> HealthTracker {
        HealthTracker::with_clock(n, cfg, Arc::new(MonotonicClock::new()))
    }

    /// Track `n` servers on an explicit [`Clock`] (tests inject a
    /// manually-advanced one).
    pub fn with_clock(n: usize, cfg: BreakerConfig, clock: Arc<dyn Clock>) -> HealthTracker {
        HealthTracker {
            cfg,
            clock,
            servers: (0..n).map(|_| ServerHealth::new()).collect(),
            opened: AtomicU64::new(0),
            half_opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// Number of tracked servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True iff no servers are tracked.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The breaker configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Cumulative transition counts across every tracked server.
    pub fn transitions(&self) -> BreakerTransitions {
        BreakerTransitions {
            opened: self.opened.load(Ordering::Relaxed),
            half_opened: self.half_opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
        }
    }

    /// May traffic be routed to `id` right now? An Open breaker whose
    /// cooldown has expired transitions to HalfOpen here (this is the
    /// probe admission point). Unknown ids are unavailable.
    pub fn available(&self, id: ServerId) -> bool {
        let Some(s) = self.servers.get(id) else {
            return false;
        };
        if s.forced_down.load(Ordering::SeqCst) {
            return false;
        }
        let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
        match &*state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { since } => {
                if self.clock.now().saturating_sub(*since) >= self.cfg.cooldown {
                    *state = State::HalfOpen;
                    self.half_opened.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful exchange with `id`: closes the breaker and
    /// clears the failure count.
    pub fn record_success(&self, id: ServerId) {
        if let Some(s) = self.servers.get(id) {
            let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
            if !matches!(&*state, State::Closed { .. }) {
                self.closed.fetch_add(1, Ordering::Relaxed);
            }
            *state = State::Closed { failures: 0 };
        }
    }

    /// Record a failed exchange with `id`: counts toward the trip
    /// threshold; a HalfOpen probe failure re-opens immediately.
    pub fn record_failure(&self, id: ServerId) {
        let Some(s) = self.servers.get(id) else { return };
        let mut state = s.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match &*state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold.max(1) {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    State::Open { since: self.clock.now() }
                } else {
                    State::Closed { failures }
                }
            }
            // A failed probe re-arms the cooldown from now and counts
            // as a fresh trip; a straggler failure racing the trip just
            // pushes the cooldown out.
            State::HalfOpen => {
                self.opened.fetch_add(1, Ordering::Relaxed);
                State::Open { since: self.clock.now() }
            }
            State::Open { .. } => State::Open { since: self.clock.now() },
        };
    }

    /// Operator-forced outage: unavailable regardless of breaker state,
    /// until forced back up. This is the §3.3 "simulated outage" switch
    /// the old `set_down` API flipped.
    pub fn force_down(&self, id: ServerId, down: bool) {
        if let Some(s) = self.servers.get(id) {
            s.forced_down.store(down, Ordering::SeqCst);
        }
    }

    /// Is the server operator-forced down?
    pub fn is_forced_down(&self, id: ServerId) -> bool {
        self.servers
            .get(id)
            .is_some_and(|s| s.forced_down.load(Ordering::SeqCst))
    }

    /// The server's breaker state, without admitting a probe (an Open
    /// breaker past its cooldown still reads Open until
    /// [`HealthTracker::available`] admits the probe).
    pub fn state(&self, id: ServerId) -> BreakerState {
        match self.servers.get(id).map(|s| {
            let state = s.state.lock().unwrap_or_else(|e| e.into_inner());
            match &*state {
                State::Closed { .. } => BreakerState::Closed,
                State::Open { .. } => BreakerState::Open,
                State::HalfOpen => BreakerState::HalfOpen,
            }
        }) {
            Some(st) => st,
            None => BreakerState::Open,
        }
    }

    /// Consecutive failures recorded while Closed (0 in other states).
    pub fn consecutive_failures(&self, id: ServerId) -> u32 {
        self.servers
            .get(id)
            .map(|s| {
                let state = s.state.lock().unwrap_or_else(|e| e.into_inner());
                match &*state {
                    State::Closed { failures } => *failures,
                    _ => 0,
                }
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_obs::ManualClock;

    fn tracker(threshold: u32, cooldown_ms: u64) -> (HealthTracker, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let h = HealthTracker::with_clock(
            2,
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(cooldown_ms),
            },
            clock.clone(),
        );
        (h, clock)
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let (h, _clock) = tracker(3, 60_000);
        h.record_failure(0);
        h.record_failure(0);
        assert!(h.available(0));
        assert_eq!(h.consecutive_failures(0), 2);
        h.record_success(0); // streak broken
        h.record_failure(0);
        h.record_failure(0);
        assert!(h.available(0), "streak must reset on success");
        h.record_failure(0);
        assert!(!h.available(0), "third consecutive failure trips");
        assert_eq!(h.state(0), BreakerState::Open);
        // The other server is unaffected.
        assert!(h.available(1));
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close_or_reopen() {
        let (h, clock) = tracker(1, 20);
        h.record_failure(0);
        assert!(!h.available(0));
        clock.advance(Duration::from_millis(30));
        // Cooldown expired: probe admitted.
        assert!(h.available(0));
        assert_eq!(h.state(0), BreakerState::HalfOpen);
        // Probe fails → straight back to Open, cooldown re-armed.
        h.record_failure(0);
        assert!(!h.available(0));
        clock.advance(Duration::from_millis(30));
        assert!(h.available(0));
        // Probe succeeds → Closed.
        h.record_success(0);
        assert_eq!(h.state(0), BreakerState::Closed);
        assert!(h.available(0));
    }

    #[test]
    fn full_open_half_open_closed_cycle_is_deterministic() {
        // The canonical recovery arc at exact cooldown boundaries — no
        // wall clock anywhere, so this cannot flake under load.
        let (h, clock) = tracker(2, 1_000);
        h.record_failure(0);
        h.record_failure(0);
        assert_eq!(h.state(0), BreakerState::Open);
        assert!(!h.available(0));

        // One tick *before* the cooldown boundary: still Open.
        clock.advance(Duration::from_millis(999));
        assert!(!h.available(0), "cooldown must not expire early");
        assert_eq!(h.state(0), BreakerState::Open);

        // Exactly at the boundary: the probe is admitted.
        clock.advance(Duration::from_millis(1));
        assert!(h.available(0));
        assert_eq!(h.state(0), BreakerState::HalfOpen);

        // Probe succeeds: Closed, failure streak cleared.
        h.record_success(0);
        assert_eq!(h.state(0), BreakerState::Closed);
        assert_eq!(h.consecutive_failures(0), 0);
        assert!(h.available(0));

        // And the whole arc is visible in the transition counters.
        assert_eq!(
            h.transitions(),
            BreakerTransitions {
                opened: 1,
                half_opened: 1,
                closed: 1,
            }
        );
    }

    #[test]
    fn reopened_probe_failure_rearms_the_cooldown_from_now() {
        let (h, clock) = tracker(1, 100);
        h.record_failure(0);
        clock.advance(Duration::from_millis(100));
        assert!(h.available(0)); // HalfOpen
        clock.advance(Duration::from_millis(60));
        h.record_failure(0); // probe fails at t=160: cooldown re-arms
        clock.advance(Duration::from_millis(99));
        assert!(!h.available(0), "re-armed cooldown runs from the probe failure");
        clock.advance(Duration::from_millis(1));
        assert!(h.available(0));
        assert_eq!(
            h.transitions(),
            BreakerTransitions {
                opened: 2,
                half_opened: 2,
                closed: 0,
            }
        );
    }

    #[test]
    fn forced_down_overrides_breaker_and_never_self_heals() {
        let (h, clock) = tracker(3, 1);
        h.force_down(0, true);
        assert!(!h.available(0));
        assert!(h.is_forced_down(0));
        clock.advance(Duration::from_millis(5));
        assert!(!h.available(0), "forced outage must not cool down");
        h.record_success(0);
        assert!(!h.available(0), "successes do not lift a forced outage");
        h.force_down(0, false);
        assert!(h.available(0));
    }

    #[test]
    fn unknown_ids_are_unavailable_and_harmless() {
        let (h, _clock) = tracker(1, 1);
        assert!(!h.available(99));
        h.record_failure(99);
        h.record_success(99);
        h.force_down(99, true);
        assert_eq!(h.state(99), BreakerState::Open);
    }
}
