//! A directory server node: one thread, one naming context, one indexed
//! store.
//!
//! Nodes answer atomic queries (and baseline LDAP queries) over a
//! crossbeam channel. Entries cross the "wire" in their on-page encoding,
//! so shipped bytes are measured with the same codec the pager uses.

use crossbeam::channel::{unbounded, Receiver, Sender};
use netdir_filter::{AtomicFilter, CompositeFilter, Scope};
use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::record::Record;
use netdir_pager::{Pager, PagerError};
use std::thread::JoinHandle;

/// Configuration of one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Human-readable name (e.g. `research-dsa`).
    pub name: String,
    /// The naming context this server owns.
    pub context: Dn,
    /// Page size of the server's local store.
    pub page_size: usize,
    /// Buffer-pool frames of the server's local store.
    pub frames: usize,
}

impl ServerConfig {
    /// Config with default store sizing.
    pub fn new(name: impl Into<String>, context: Dn) -> ServerConfig {
        ServerConfig {
            name: name.into(),
            context,
            page_size: 4096,
            frames: 64,
        }
    }
}

/// A request to a server node.
pub enum Request {
    /// Evaluate an atomic query; respond with encoded sorted entries.
    Atomic {
        /// Base DN.
        base: Dn,
        /// Scope.
        scope: Scope,
        /// Filter.
        filter: AtomicFilter,
        /// Reply channel.
        reply: Sender<Result<Vec<Vec<u8>>, String>>,
    },
    /// Evaluate a baseline LDAP query (single base/scope/composite filter).
    Ldap {
        /// Base DN.
        base: Dn,
        /// Scope.
        scope: Scope,
        /// Composite filter.
        filter: CompositeFilter,
        /// Reply channel.
        reply: Sender<Result<Vec<Vec<u8>>, String>>,
    },
    /// Stop the node thread.
    Shutdown,
}

/// Handle to a running server node.
pub struct ServerNode {
    /// The node's configuration.
    pub config: ServerConfig,
    /// Number of entries this node stores.
    pub num_entries: usize,
    sender: Sender<Request>,
    handle: Option<JoinHandle<()>>,
}

impl ServerNode {
    /// Spawn a node owning `entries` (they must belong to the node's
    /// context; the cluster builder partitions accordingly).
    pub fn spawn(config: ServerConfig, entries: Vec<Entry>) -> ServerNode {
        let num_entries = entries.len();
        let (sender, receiver) = unbounded::<Request>();
        let cfg = config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("dsa-{}", config.name))
            .spawn(move || node_loop(cfg, entries, receiver))
            .expect("spawn server thread");
        ServerNode {
            config,
            num_entries,
            sender,
            handle: Some(handle),
        }
    }

    /// The request channel.
    pub fn sender(&self) -> Sender<Request> {
        self.sender.clone()
    }

    /// Synchronously run an atomic query against this node, returning
    /// decoded entries (test/convenience path; the distributed evaluator
    /// speaks the channel protocol directly).
    pub fn atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> Result<Vec<Entry>, String> {
        let (reply, rx) = unbounded();
        self.sender
            .send(Request::Atomic {
                base: base.clone(),
                scope,
                filter: filter.clone(),
                reply,
            })
            .map_err(|e| e.to_string())?;
        let encoded = rx.recv().map_err(|e| e.to_string())??;
        decode_entries(&encoded).map_err(|e| e.to_string())
    }

    /// Synchronously run a baseline LDAP query against this node.
    pub fn ldap(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &CompositeFilter,
    ) -> Result<Vec<Entry>, String> {
        let (reply, rx) = unbounded();
        self.sender
            .send(Request::Ldap {
                base: base.clone(),
                scope,
                filter: filter.clone(),
                reply,
            })
            .map_err(|e| e.to_string())?;
        let encoded = rx.recv().map_err(|e| e.to_string())??;
        decode_entries(&encoded).map_err(|e| e.to_string())
    }
}

impl Drop for ServerNode {
    fn drop(&mut self) {
        let _ = self.sender.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn node_loop(config: ServerConfig, entries: Vec<Entry>, receiver: Receiver<Request>) {
    // Build the local store.
    let pager = Pager::new(config.page_size, config.frames);
    let mut dir = Directory::new();
    for e in entries {
        // Partitioned input is disjoint; duplicates impossible.
        dir.insert(e).expect("cluster partitioning yields valid disjoint entries");
    }
    let idx = IndexedDirectory::build(&pager, &dir).expect("index build");

    while let Ok(req) = receiver.recv() {
        match req {
            Request::Shutdown => break,
            Request::Atomic {
                base,
                scope,
                filter,
                reply,
            } => {
                let result = idx
                    .evaluate_atomic(&base, scope, &filter)
                    .and_then(|list| encode_list(&list))
                    .map_err(|e| e.to_string());
                let _ = reply.send(result);
            }
            Request::Ldap {
                base,
                scope,
                filter,
                reply,
            } => {
                let result = idx
                    .evaluate_composite(&base, scope, &filter)
                    .and_then(|list| encode_list(&list))
                    .map_err(|e| e.to_string());
                let _ = reply.send(result);
            }
        }
    }
}

fn encode_list(
    list: &netdir_pager::PagedList<Entry>,
) -> Result<Vec<Vec<u8>>, PagerError> {
    let mut out = Vec::new();
    for e in list.iter() {
        let e = e?;
        let mut buf = Vec::new();
        e.encode(&mut buf);
        out.push(buf);
    }
    Ok(out)
}

/// Decode wire-format entries.
pub fn decode_entries(encoded: &[Vec<u8>]) -> Result<Vec<Entry>, PagerError> {
    encoded.iter().map(|b| Entry::decode(b)).collect()
}

/// Total wire bytes of an encoded response.
pub fn wire_bytes(encoded: &[Vec<u8>]) -> u64 {
    encoded.iter().map(|b| b.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn entries() -> Vec<Entry> {
        ["dc=att, dc=com", "ou=p, dc=att, dc=com", "uid=a, ou=p, dc=att, dc=com"]
            .iter()
            .map(|s| {
                Entry::builder(dn(s))
                    .class("thing")
                    .attr("surName", "jagadish")
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn node_answers_atomic_queries() {
        let node = ServerNode::spawn(
            ServerConfig::new("att", dn("dc=att, dc=com")),
            entries(),
        );
        let hits = node
            .atomic(
                &dn("dc=att, dc=com"),
                Scope::Sub,
                &AtomicFilter::eq("surName", "jagadish"),
            )
            .unwrap();
        assert_eq!(hits.len(), 3);
        // Sorted on the wire.
        for w in hits.windows(2) {
            assert!(w[0].dn() < w[1].dn());
        }
    }

    #[test]
    fn node_answers_ldap_queries() {
        let node = ServerNode::spawn(
            ServerConfig::new("att", dn("dc=att, dc=com")),
            entries(),
        );
        let f = netdir_filter::parse_composite("(&(surName=jagadish)(uid=a))").unwrap();
        let hits = node.ldap(&dn("dc=att, dc=com"), Scope::Sub, &f).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn shutdown_on_drop_joins_thread() {
        let node = ServerNode::spawn(ServerConfig::new("x", dn("dc=com")), vec![]);
        drop(node); // must not hang
    }
}
