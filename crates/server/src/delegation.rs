//! DNS-style namespace delegation.
//!
//! "At the time of registration of a domain in the DIF, a primary and
//! (perhaps) some secondary directory servers are identified as the owners
//! of the hierarchical namespace rooted at the domain entry … it is also
//! possible to split a domain into subdomains, with a different (primary
//! and secondary) directory server for each subdomain" (Section 3.3).
//!
//! A [`Delegation`] maps naming contexts (DNs) to server ids. An entry
//! belongs to the server with the **longest** context subsuming its DN —
//! subdomain delegations carve their subtrees out of the parent domain,
//! exactly as DNS zone cuts do.

use netdir_model::{Dn, SortKey};

/// Identifier of a server within a cluster.
pub type ServerId = usize;

/// The delegation table of a cluster.
///
/// Each context maps to an **owner group**: a primary server followed by
/// any secondaries replicating the zone ("a primary and (perhaps) some
/// secondary directory servers are identified as the owners", §3.3).
#[derive(Debug, Clone, Default)]
pub struct Delegation {
    /// (context sort key, context DN, owner group), kept sorted by key.
    contexts: Vec<(SortKey, Dn, Vec<ServerId>)>,
}

impl Delegation {
    /// Empty table.
    pub fn new() -> Delegation {
        Delegation::default()
    }

    /// Register `server` as primary owner of the namespace rooted at
    /// `context` (or as a secondary if the context is already owned).
    pub fn register(&mut self, context: Dn, server: ServerId) {
        let key = context.sort_key().clone();
        if let Some((_, _, group)) = self.contexts.iter_mut().find(|(k, _, _)| *k == key) {
            if !group.contains(&server) {
                group.push(server);
            }
            return;
        }
        self.contexts.push((key, context, vec![server]));
        self.contexts.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Number of registered contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// True iff no contexts registered.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// The primary server owning `dn`: longest registered context whose
    /// subtree contains `dn`, or `None` if nothing matches.
    pub fn owner_of(&self, dn: &Dn) -> Option<ServerId> {
        self.owner_group_of(dn).and_then(|g| g.first().copied())
    }

    /// The full owner group (primary + secondaries) for `dn`.
    pub fn owner_group_of(&self, dn: &Dn) -> Option<&[ServerId]> {
        self.zone_of(dn).map(|(_, group)| group)
    }

    /// The zone owning `dn`: its naming context plus the full owner
    /// group (longest registered context whose subtree contains `dn`).
    pub fn zone_of(&self, dn: &Dn) -> Option<(&Dn, &[ServerId])> {
        let key = dn.sort_key();
        self.contexts
            .iter()
            .filter(|(ck, _, _)| ck.subsumes(key))
            .max_by_key(|(ck, _, _)| ck.as_bytes().len())
            .map(|(_, ctx, group)| (ctx, group.as_slice()))
    }

    /// All owner groups whose data can intersect `scope`-of-`base`: the
    /// base's group plus every group whose context lies inside the base's
    /// subtree (their zones are cut out of the owner's).
    pub fn groups_for_subtree(&self, base: &Dn) -> Vec<&[ServerId]> {
        self.zones_for_subtree(base)
            .into_iter()
            .map(|(_, group)| group)
            .collect()
    }

    /// Like [`Delegation::groups_for_subtree`], but pairing each owner
    /// group with its zone's naming context — what the router needs to
    /// report *which namespace* went missing when a zone fails.
    pub fn zones_for_subtree(&self, base: &Dn) -> Vec<(&Dn, &[ServerId])> {
        let base_key = base.sort_key();
        let mut out: Vec<(&Dn, &[ServerId])> = Vec::new();
        if let Some(zone) = self.zone_of(base) {
            out.push(zone);
        }
        for (ck, ctx, group) in &self.contexts {
            if base_key.subsumes(ck)
                && !out.iter().any(|(_, g)| g.as_ptr() == group.as_ptr())
            {
                out.push((ctx, group.as_slice()));
            }
        }
        out
    }

    /// Primary servers whose data can intersect `scope`-of-`base`.
    pub fn servers_for_subtree(&self, base: &Dn) -> Vec<ServerId> {
        self.groups_for_subtree(base)
            .into_iter()
            .filter_map(|g| g.first().copied())
            .collect()
    }

    /// The registered contexts with their primary servers.
    pub fn contexts(&self) -> impl Iterator<Item = (&Dn, ServerId)> {
        self.contexts.iter().map(|(_, dn, g)| (dn, g[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn table() -> Delegation {
        let mut d = Delegation::new();
        d.register(dn("dc=com"), 0);
        d.register(dn("dc=att, dc=com"), 1);
        d.register(dn("dc=research, dc=att, dc=com"), 2);
        d.register(dn("dc=org"), 3);
        d
    }

    #[test]
    fn longest_match_wins() {
        let d = table();
        assert_eq!(d.owner_of(&dn("dc=com")), Some(0));
        assert_eq!(d.owner_of(&dn("dc=x, dc=com")), Some(0));
        assert_eq!(d.owner_of(&dn("dc=att, dc=com")), Some(1));
        assert_eq!(d.owner_of(&dn("ou=p, dc=att, dc=com")), Some(1));
        assert_eq!(
            d.owner_of(&dn("uid=a, dc=research, dc=att, dc=com")),
            Some(2)
        );
        assert_eq!(d.owner_of(&dn("dc=org")), Some(3));
        assert_eq!(d.owner_of(&dn("dc=net")), None);
    }

    #[test]
    fn subtree_routing_includes_carved_out_zones() {
        let d = table();
        let servers = d.servers_for_subtree(&dn("dc=com"));
        assert_eq!(servers, vec![0, 1, 2]);
        let servers = d.servers_for_subtree(&dn("dc=att, dc=com"));
        assert_eq!(servers, vec![1, 2]);
        let servers = d.servers_for_subtree(&dn("ou=p, dc=att, dc=com"));
        assert_eq!(servers, vec![1]);
        let servers = d.servers_for_subtree(&dn("dc=net"));
        assert!(servers.is_empty());
        // Root reaches everyone.
        let servers = d.servers_for_subtree(&Dn::root());
        assert_eq!(servers.len(), 4);
    }
}
