//! # netdir-server — directory servers and distributed evaluation
//!
//! Sections 3.3 and 8.3 of the paper describe the deployment model this
//! crate implements:
//!
//! * The namespace is delegated DNS-style: each **server** owns a naming
//!   context (a subtree), possibly with subdomains split out to other
//!   servers ([`delegation`]).
//! * A query is posed to one server. Each *atomic sub-query* whose base DN
//!   is managed elsewhere is shipped to the owning server(s); the sorted
//!   results come back and the operator tree is evaluated locally at the
//!   queried server ([`distributed`]), exactly the plan of Section 8.3.
//!
//! Servers run as real threads answering requests over channels
//! ([`node`]); the "network" counts every message and shipped byte
//! ([`net`]), which is what experiment E12 measures. The paper's
//! DNS-based server location is an in-process longest-prefix match — the
//! resolution mechanism is not part of any theorem (DESIGN.md §5).

pub mod admission;
pub mod delegation;
pub mod distributed;
pub mod fault;
pub mod health;
pub mod metrics;
pub mod net;
pub mod node;
pub mod retry;
pub mod transport;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, EnumCap, RateLimit, Rejection,
};
pub use delegation::Delegation;
pub use distributed::{
    Cluster, ClusterBuilder, ClusterParts, ConsistencyMode, PartitionError, QueryOutcome,
    Router,
};
pub use fault::{FaultConfig, FaultSnapshot, FaultStats, FaultTransport};
pub use health::{BreakerConfig, BreakerState, BreakerTransitions, HealthTracker};
pub use net::{NetSnapshot, NetStats};
pub use node::{ServerConfig, ServerNode};
pub use retry::{RetryPolicy, RetrySnapshot, RetryStats, Retryable};
pub use transport::{
    AtomicResponse, ChannelTransport, Transport, TransportError, TransportErrorKind,
    TransportResult,
};
