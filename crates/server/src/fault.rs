//! Deterministic, seedable fault injection for chaos testing.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs its traffic
//! according to a [`FaultConfig`]: dropped requests, injected remote
//! errors, added latency, payload truncation, and per-server
//! unreachability. Every decision is a pure function of the config seed
//! and the decorator's own call counter — **never** of wall-clock time
//! or a global RNG — so a chaos test that drives the transport from one
//! thread replays bit-identically: same faults on the same calls, same
//! retry counts, same partial-result sets, on every run.
//!
//! Draw discipline: each call consumes exactly four deterministic draws
//! (unreachable, drop, error, delay) whether or not the corresponding
//! rate is zero, so enabling one fault class never shifts the random
//! sequence seen by another.

use crate::delegation::ServerId;
use crate::net::NetStats;
use crate::retry::splitmix64;
use crate::transport::{AtomicResponse, Transport, TransportError, TransportResult};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to inject, and how often. All rates are probabilities in
/// `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for all fault draws.
    pub seed: u64,
    /// Probability a request is lost before reaching the server
    /// (surfaces as a retryable [`TransportErrorKind::Injected`] error).
    ///
    /// [`TransportErrorKind::Injected`]: crate::TransportErrorKind::Injected
    pub drop_rate: f64,
    /// Probability the response is replaced with a **fatal** remote
    /// error (the server "executed and failed").
    pub error_rate: f64,
    /// Probability a call is delayed by [`FaultConfig::delay`].
    pub delay_rate: f64,
    /// Latency added to delayed calls.
    pub delay: Duration,
    /// Truncate the payload of call number N (0-based, counted across
    /// all servers): the last encoded entry loses half its bytes, so the
    /// caller's decode fails — a corrupt-response fault.
    pub truncate_nth: Option<u64>,
    /// Per-server unreachability rates: `(server, rate)` makes calls to
    /// `server` fail (retryably) with that probability. A rate of 1.0 is
    /// a hard outage, which is what drives a circuit breaker open.
    pub server_fail: Vec<(ServerId, f64)>,
}

impl FaultConfig {
    /// A config injecting nothing, with the given seed.
    pub fn seeded(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// Set the request-drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Set the fatal-error rate.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Delay a fraction of calls by `delay`.
    pub fn with_delay(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate;
        self.delay = delay;
        self
    }

    /// Truncate call number `n`'s payload.
    pub fn with_truncate_nth(mut self, n: u64) -> Self {
        self.truncate_nth = Some(n);
        self
    }

    /// Make calls to `server` fail with probability `rate`.
    pub fn with_server_fail(mut self, server: ServerId, rate: f64) -> Self {
        self.server_fail.push((server, rate));
        self
    }
}

/// Shared injection counters (cloneable handle, like
/// [`NetStats`]): what the decorator actually did.
#[derive(Clone, Default)]
pub struct FaultStats {
    inner: Arc<FaultCounters>,
}

#[derive(Default)]
struct FaultCounters {
    calls: AtomicU64,
    dropped: AtomicU64,
    errored: AtomicU64,
    delayed: AtomicU64,
    truncated: AtomicU64,
    unreachable: AtomicU64,
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Calls that reached the decorator.
    pub calls: u64,
    /// Requests dropped (retryable).
    pub dropped: u64,
    /// Responses replaced with fatal remote errors.
    pub errored: u64,
    /// Calls delayed.
    pub delayed: u64,
    /// Payloads truncated.
    pub truncated: u64,
    /// Calls failed by per-server unreachability.
    pub unreachable: u64,
}

impl std::fmt::Display for FaultSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} calls: {} dropped, {} errored, {} delayed, {} truncated, {} unreachable",
            self.calls, self.dropped, self.errored, self.delayed, self.truncated, self.unreachable
        )
    }
}

impl FaultStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            calls: self.inner.calls.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            errored: self.inner.errored.load(Ordering::Relaxed),
            delayed: self.inner.delayed.load(Ordering::Relaxed),
            truncated: self.inner.truncated.load(Ordering::Relaxed),
            unreachable: self.inner.unreachable.load(Ordering::Relaxed),
        }
    }
}

/// A [`Transport`] decorator injecting deterministic faults.
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    cfg: FaultConfig,
    calls: AtomicU64,
    stats: FaultStats,
}

/// Map one deterministic draw to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultTransport {
    /// Wrap `inner` with the faults of `cfg`.
    pub fn new(inner: Box<dyn Transport>, cfg: FaultConfig) -> FaultTransport {
        FaultTransport {
            inner,
            cfg,
            calls: AtomicU64::new(0),
            stats: FaultStats::default(),
        }
    }

    /// A handle onto the injection counters (remains valid after the
    /// transport is boxed into a router).
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &dyn Transport {
        self.inner.as_ref()
    }

    /// The active fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

impl Transport for FaultTransport {
    fn atomic(
        &self,
        target: ServerId,
        home: ServerId,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> TransportResult<AtomicResponse> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        self.stats.inner.calls.fetch_add(1, Ordering::Relaxed);
        // Four draws per call, in fixed order (see module docs).
        let root = splitmix64(self.cfg.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let draw = |lane: u64| unit(splitmix64(root ^ lane));

        let server_rate = self
            .cfg
            .server_fail
            .iter()
            .find(|(id, _)| *id == target)
            .map(|(_, rate)| *rate)
            .unwrap_or(0.0);
        if draw(1) < server_rate {
            self.stats.inner.unreachable.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::injected(format!(
                "server {target} unreachable (injected, call {n})"
            )));
        }
        if draw(2) < self.cfg.drop_rate {
            self.stats.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::injected(format!(
                "request to server {target} dropped (injected, call {n})"
            )));
        }
        if draw(3) < self.cfg.error_rate {
            self.stats.inner.errored.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::remote(format!(
                "server {target} failed the request (injected, call {n})"
            )));
        }
        if draw(4) < self.cfg.delay_rate && !self.cfg.delay.is_zero() {
            self.stats.inner.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.cfg.delay);
        }

        let mut resp = self.inner.atomic(target, home, base, scope, filter)?;
        if self.cfg.truncate_nth == Some(n) {
            if let Some(last) = resp.encoded.last_mut() {
                last.truncate(last.len() / 2);
                self.stats.inner.truncated.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(resp)
    }

    fn net(&self) -> &NetStats {
        self.inner.net()
    }

    fn num_servers(&self) -> usize {
        self.inner.num_servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{ServerConfig, ServerNode};
    use crate::transport::ChannelTransport;
    use crate::TransportErrorKind;
    use netdir_model::Entry;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn wrapped(cfg: FaultConfig) -> (Vec<ServerNode>, FaultTransport) {
        let mk = |s: &str| {
            Entry::builder(dn(s))
                .class("thing")
                .attr("surName", "jagadish")
                .build()
                .unwrap()
        };
        let nodes = vec![
            ServerNode::spawn(
                ServerConfig::new("a", dn("dc=a")),
                vec![mk("dc=a"), mk("ou=p, dc=a")],
            ),
            ServerNode::spawn(ServerConfig::new("b", dn("dc=b")), vec![mk("dc=b")]),
        ];
        let inner = ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
        (nodes, FaultTransport::new(Box::new(inner), cfg))
    }

    fn run_calls(t: &FaultTransport, n: usize) -> Vec<Result<usize, TransportError>> {
        (0..n)
            .map(|_| {
                t.atomic(0, 1, &dn("dc=a"), Scope::Sub, &AtomicFilter::present("surName"))
                    .map(|r| r.encoded.len())
            })
            .collect()
    }

    #[test]
    fn zero_config_is_transparent() {
        let (_nodes, t) = wrapped(FaultConfig::seeded(1));
        for r in run_calls(&t, 5) {
            assert_eq!(r.unwrap(), 2);
        }
        let s = t.stats().snapshot();
        assert_eq!(s.calls, 5);
        assert_eq!(
            (s.dropped, s.errored, s.delayed, s.truncated, s.unreachable),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let cfg = FaultConfig::seeded(42)
            .with_drop_rate(0.3)
            .with_error_rate(0.1)
            .with_server_fail(0, 0.2);
        let (_n1, t1) = wrapped(cfg.clone());
        let (_n2, t2) = wrapped(cfg);
        let a = run_calls(&t1, 50);
        let b = run_calls(&t2, 50);
        assert_eq!(a, b, "fault schedule must be a pure function of seed+index");
        assert_eq!(t1.stats().snapshot(), t2.stats().snapshot());
        // And with a different seed the schedule differs.
        let (_n3, t3) = wrapped(
            FaultConfig::seeded(43)
                .with_drop_rate(0.3)
                .with_error_rate(0.1)
                .with_server_fail(0, 0.2),
        );
        assert_ne!(a, run_calls(&t3, 50));
    }

    #[test]
    fn fault_kinds_classify_correctly() {
        // Hard per-server outage → retryable injected error.
        let (_nodes, t) = wrapped(FaultConfig::seeded(7).with_server_fail(0, 1.0));
        let err = run_calls(&t, 1).pop().unwrap().unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Injected);
        assert!(err.kind.is_retryable());
        // But only for the targeted server.
        assert!(t
            .atomic(1, 0, &dn("dc=b"), Scope::Sub, &AtomicFilter::True)
            .is_ok());

        // Certain error rate → fatal remote error.
        let (_nodes, t) = wrapped(FaultConfig::seeded(7).with_error_rate(1.0));
        let err = run_calls(&t, 1).pop().unwrap().unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Remote);
        assert!(!err.kind.is_retryable());
    }

    #[test]
    fn truncate_nth_corrupts_exactly_one_call() {
        let (_nodes, t) = wrapped(FaultConfig::seeded(9).with_truncate_nth(1));
        let ok = t
            .atomic(0, 1, &dn("dc=a"), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        let full_len = ok.encoded.last().unwrap().len();
        let corrupt = t
            .atomic(0, 1, &dn("dc=a"), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        assert_eq!(corrupt.encoded.last().unwrap().len(), full_len / 2);
        assert!(
            crate::node::decode_entries(&corrupt.encoded).is_err(),
            "truncated payload must fail to decode"
        );
        let again = t
            .atomic(0, 1, &dn("dc=a"), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        assert_eq!(again.encoded.last().unwrap().len(), full_len);
        assert_eq!(t.stats().snapshot().truncated, 1);
    }

    #[test]
    fn counters_pass_through_to_inner_transport() {
        let (_nodes, t) = wrapped(FaultConfig::seeded(3));
        t.atomic(1, 0, &dn("dc=b"), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        assert_eq!(t.net().snapshot().requests, 1);
        assert_eq!(t.num_servers(), 2);
    }
}
