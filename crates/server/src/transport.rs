//! The transport abstraction under the Section 8.3 evaluator.
//!
//! The distributed evaluator's only networking need is "issue this
//! atomic query to that server and get the sorted, encoded entries
//! back". [`Transport`] captures exactly that, so the same evaluator
//! (see [`crate::distributed::Router`]) runs over
//!
//! * [`ChannelTransport`] — in-process crossbeam channels to
//!   [`ServerNode`](crate::node::ServerNode) threads (hermetic; the
//!   default everywhere tests run), or
//! * `netdir_wire::SocketTransport` — real TCP sockets to `netdird`
//!   processes, where the shipped-byte counters measure actual encoded
//!   frames rather than hypothetical payloads.
//!
//! [`NetStats`] lives behind the trait: each transport owns its
//! counters and records a round trip whenever the target is not the
//! queried (home) server, which is precisely the "results … are
//! shipped to the original queried directory server" cost of §8.3.

use crate::delegation::ServerId;
use crate::net::NetStats;
use crate::node::{wire_bytes, Request};
use crossbeam::channel::{unbounded, Sender};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;
use std::fmt;

/// What went wrong at the transport, classified for the retry policy:
/// a failure is either transient (worth another attempt, possibly on a
/// replica) or deterministic (retrying reproduces it exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// Connection-level loss: unreachable server, reset, timeout,
    /// channel or socket closed mid-exchange. **Retryable.**
    Io,
    /// A fault deliberately injected by
    /// [`FaultTransport`](crate::FaultTransport). **Retryable** — it
    /// models transient network loss.
    Injected,
    /// The peer answered with bytes that violate the protocol. Fatal:
    /// the peer will mangle a retry identically.
    Protocol,
    /// The remote server executed the request and reported an
    /// evaluation error. Fatal: the query itself fails over there.
    Remote,
    /// No such server id — a delegation/config bug, not weather. Fatal.
    Addressing,
}

impl TransportErrorKind {
    /// May another attempt succeed?
    pub fn is_retryable(self) -> bool {
        matches!(self, TransportErrorKind::Io | TransportErrorKind::Injected)
    }

    fn label(self) -> &'static str {
        match self {
            TransportErrorKind::Io => "i/o",
            TransportErrorKind::Injected => "injected",
            TransportErrorKind::Protocol => "protocol",
            TransportErrorKind::Remote => "remote",
            TransportErrorKind::Addressing => "addressing",
        }
    }
}

/// A transport-level failure (unreachable server, closed connection,
/// malformed response), carrying its retry classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// Retryable-vs-fatal classification.
    pub kind: TransportErrorKind,
    /// Human-readable cause.
    pub detail: String,
}

impl TransportError {
    /// A connection-level (retryable) failure — the historical default.
    pub fn new(detail: impl Into<String>) -> TransportError {
        TransportError::with_kind(TransportErrorKind::Io, detail)
    }

    /// Build with an explicit classification.
    pub fn with_kind(kind: TransportErrorKind, detail: impl Into<String>) -> TransportError {
        TransportError {
            kind,
            detail: detail.into(),
        }
    }

    /// An addressing (fatal) failure.
    pub fn addressing(detail: impl Into<String>) -> TransportError {
        TransportError::with_kind(TransportErrorKind::Addressing, detail)
    }

    /// A remote evaluation (fatal) failure.
    pub fn remote(detail: impl Into<String>) -> TransportError {
        TransportError::with_kind(TransportErrorKind::Remote, detail)
    }

    /// A protocol-violation (fatal) failure.
    pub fn protocol(detail: impl Into<String>) -> TransportError {
        TransportError::with_kind(TransportErrorKind::Protocol, detail)
    }

    /// An injected (retryable) failure.
    pub fn injected(detail: impl Into<String>) -> TransportError {
        TransportError::with_kind(TransportErrorKind::Injected, detail)
    }
}

impl crate::retry::Retryable for TransportError {
    fn is_retryable(&self) -> bool {
        self.kind.is_retryable()
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transport error ({}): {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for TransportError {}

/// Convenience alias.
pub type TransportResult<T> = Result<T, TransportError>;

/// One atomic sub-query's response as it crossed the transport.
#[derive(Debug)]
pub struct AtomicResponse {
    /// Sorted entries in their on-page encoding.
    pub encoded: Vec<Vec<u8>>,
    /// Bytes that actually crossed the transport for this response —
    /// payload bytes for channels, full frame bytes for sockets.
    pub wire_bytes: u64,
}

/// Ships atomic sub-queries between directory servers.
pub trait Transport: Send + Sync {
    /// Evaluate `(base ? scope ? filter)` on server `target`, as part
    /// of a query posed to server `home`. Implementations record
    /// network counters for every `target != home` round trip.
    fn atomic(
        &self,
        target: ServerId,
        home: ServerId,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> TransportResult<AtomicResponse>;

    /// This transport's network counters.
    fn net(&self) -> &NetStats;

    /// Number of addressable servers.
    fn num_servers(&self) -> usize;
}

/// The in-process transport: one crossbeam channel per server thread.
///
/// Shipped bytes are the summed entry encodings — the same codec the
/// pager uses on pages, so E12's counters match the storage cost model.
pub struct ChannelTransport {
    senders: Vec<Sender<Request>>,
    net: NetStats,
}

impl ChannelTransport {
    /// Address the nodes behind `senders`.
    pub fn new(senders: Vec<Sender<Request>>) -> ChannelTransport {
        ChannelTransport {
            senders,
            net: NetStats::new(),
        }
    }
}

impl Transport for ChannelTransport {
    fn atomic(
        &self,
        target: ServerId,
        home: ServerId,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> TransportResult<AtomicResponse> {
        let (reply, rx) = unbounded();
        self.senders
            .get(target)
            .ok_or_else(|| TransportError::addressing(format!("no server with id {target}")))?
            .send(Request::Atomic {
                base: base.clone(),
                scope,
                filter: filter.clone(),
                reply,
            })
            .map_err(|e| TransportError::new(format!("server channel closed: {e}")))?;
        let encoded = rx
            .recv()
            .map_err(|e| TransportError::new(format!("server reply lost: {e}")))?
            .map_err(TransportError::remote)?;
        let bytes = wire_bytes(&encoded);
        if target != home {
            self.net.record_round_trip(encoded.len() as u64, bytes);
        }
        Ok(AtomicResponse {
            wire_bytes: bytes,
            encoded,
        })
    }

    fn net(&self) -> &NetStats {
        &self.net
    }

    fn num_servers(&self) -> usize {
        self.senders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{decode_entries, ServerConfig, ServerNode};
    use netdir_model::Entry;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn spawn_two() -> (Vec<ServerNode>, ChannelTransport) {
        let mk = |s: &str| {
            Entry::builder(dn(s))
                .class("thing")
                .attr("surName", "jagadish")
                .build()
                .unwrap()
        };
        let nodes = vec![
            ServerNode::spawn(
                ServerConfig::new("a", dn("dc=a")),
                vec![mk("dc=a"), mk("ou=p, dc=a")],
            ),
            ServerNode::spawn(ServerConfig::new("b", dn("dc=b")), vec![mk("dc=b")]),
        ];
        let transport = ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
        (nodes, transport)
    }

    #[test]
    fn local_round_trips_are_free() {
        let (_nodes, t) = spawn_two();
        let resp = t
            .atomic(0, 0, &dn("dc=a"), Scope::Sub, &AtomicFilter::present("surName"))
            .unwrap();
        assert_eq!(resp.encoded.len(), 2);
        assert!(resp.wire_bytes > 0);
        assert_eq!(t.net().snapshot().requests, 0);
    }

    #[test]
    fn remote_round_trips_are_counted() {
        let (_nodes, t) = spawn_two();
        let resp = t
            .atomic(1, 0, &dn("dc=b"), Scope::Sub, &AtomicFilter::present("surName"))
            .unwrap();
        let entries = decode_entries(&resp.encoded).unwrap();
        assert_eq!(entries.len(), 1);
        let snap = t.net().snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.entries_shipped, 1);
        assert_eq!(snap.bytes_shipped, resp.wire_bytes);
    }

    #[test]
    fn unknown_target_is_an_error() {
        let (_nodes, t) = spawn_two();
        assert!(t
            .atomic(9, 0, &dn("dc=a"), Scope::Base, &AtomicFilter::True)
            .is_err());
    }
}
