//! Capped, jittered exponential backoff — the retry policy shared by
//! [`Router`](crate::Router) (per-zone fetches) and `netdir_wire`'s
//! `WireClient` (per-request exchanges).
//!
//! Two properties matter more than the exact curve:
//!
//! * **Classification before repetition.** Only *retryable* failures
//!   (connection loss, timeouts, injected drops) are worth another
//!   attempt; protocol violations, remote evaluation errors, and
//!   mis-addressing will fail identically every time and abort at once.
//!   The [`Retryable`] trait carries that judgement so both error types
//!   (`TransportError`, `WireError`) answer the same question.
//! * **Determinism.** Jitter is derived from a SplitMix64 hash of
//!   `(seed, salt, attempt)`, not from a clock or a global RNG, so a
//!   seeded chaos test produces the same delays — and therefore the same
//!   retry counts — on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors that can say whether another attempt might succeed.
pub trait Retryable {
    /// `true` if the failure is transient (another attempt, possibly on
    /// another replica, may succeed); `false` if retrying is futile.
    fn is_retryable(&self) -> bool;
}

/// SplitMix64 — the small deterministic mixer used for jitter (and by
/// [`FaultTransport`](crate::FaultTransport) for fault draws).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A capped exponential-backoff retry policy with deterministic jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x6e65_7464_6972, // "netdir"
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, no sleeping.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` tries with no sleeping between them — what tests and
    /// seeded chaos runs use, so wall-clock never enters the picture.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The delay to sleep after failed attempt number `attempt`
    /// (0-based). Equal-jitter: half the capped exponential step is
    /// fixed, the other half scales by a deterministic hash of
    /// `(seed, salt, attempt)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_delay.as_nanos() as u64;
        let cap = self.max_delay.as_nanos().max(base as u128) as u64;
        let step = base
            .saturating_mul(1u64 << attempt.min(32))
            .min(cap);
        let h = splitmix64(self.seed ^ salt.rotate_left(17) ^ u64::from(attempt));
        // Map the hash to [0, 1) with 53-bit precision.
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = step / 2 + ((step / 2) as f64 * frac) as u64;
        Duration::from_nanos(jittered)
    }
}

/// Shared retry counters (cloneable handle, like
/// [`NetStats`](crate::NetStats)): how hard the fault-tolerance layer
/// had to work.
#[derive(Clone, Default)]
pub struct RetryStats {
    inner: Arc<RetryCounters>,
}

#[derive(Default)]
struct RetryCounters {
    attempts: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
}

/// Point-in-time copy of [`RetryStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetrySnapshot {
    /// Individual transport attempts issued (successes included).
    pub attempts: u64,
    /// Backoff rounds taken after a failed round of attempts.
    pub retries: u64,
    /// Zone fetches abandoned with all attempts exhausted.
    pub gave_up: u64,
}

impl std::fmt::Display for RetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} attempts, {} retries, {} gave up",
            self.attempts, self.retries, self.gave_up
        )
    }
}

impl RetryStats {
    /// Fresh counters.
    pub fn new() -> RetryStats {
        RetryStats::default()
    }

    /// Count one transport attempt.
    pub fn record_attempt(&self) {
        self.inner.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one backoff round.
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one abandoned fetch.
    pub fn record_give_up(&self) {
        self.inner.gave_up.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.inner.attempts.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            gave_up: self.inner.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.inner.attempts.store(0, Ordering::Relaxed);
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.gave_up.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 7,
        };
        for attempt in 0..10 {
            let a = p.backoff(attempt, 42);
            let b = p.backoff(attempt, 42);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(a <= Duration::from_millis(80), "cap violated: {a:?}");
            // Equal jitter keeps at least half the step.
            assert!(a >= Duration::from_millis(5));
        }
        // Different salts decorrelate delays.
        assert_ne!(p.backoff(1, 1), p.backoff(1, 2));
    }

    #[test]
    fn zero_base_means_no_sleeping() {
        let p = RetryPolicy::immediate(4);
        assert_eq!(p.backoff(3, 99), Duration::ZERO);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let s = RetryStats::new();
        s.record_attempt();
        s.record_attempt();
        s.record_retry();
        s.record_give_up();
        let snap = s.snapshot();
        assert_eq!(
            (snap.attempts, snap.retries, snap.gave_up),
            (2, 1, 1)
        );
        s.reset();
        assert_eq!(s.snapshot(), RetrySnapshot::default());
    }
}
