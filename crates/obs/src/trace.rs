//! Per-query operator traces — the structured data behind
//! `EXPLAIN ANALYZE`.
//!
//! One [`OperatorSpan`] per query-plan node records what that operator
//! actually did (entries in/out, pages produced, page reads/writes,
//! elapsed time) next to what the paper's cost model said it *should*
//! do (`predicted_io`). A [`QueryTrace`] collects the spans in display
//! (pre-order) order plus whole-query totals, and renders them as an
//! indented table. Timing can be redacted at render time so golden
//! tests stay deterministic.

use std::fmt::Write as _;
use std::time::Duration;

/// What one operator node did during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpan {
    /// Operator label (e.g. `atomic`, `and [sort-merge]`, `cover`).
    pub node: String,
    /// Depth in the plan tree (0 = root), for indentation.
    pub depth: u32,
    /// Entries flowing in from child operators (0 for leaves).
    pub entries_in: u64,
    /// Entries this operator produced.
    pub entries_out: u64,
    /// Pages occupied by the produced list.
    pub pages_out: u64,
    /// Pages read while this operator ran (children excluded).
    pub reads: u64,
    /// Pages written while this operator ran (children excluded).
    pub writes: u64,
    /// Wall time spent in this operator (children excluded).
    pub elapsed_nanos: u64,
    /// Page I/O the cost model predicts for this node.
    pub predicted_io: f64,
}

impl OperatorSpan {
    /// Pages actually transferred by this operator.
    pub fn observed_io(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Whether a rendering includes wall-clock timings.
///
/// Golden tests redact them (everything else in a trace is
/// deterministic); interactive `--analyze` shows them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDisplay {
    /// Render elapsed times.
    Show,
    /// Replace every elapsed time with `-`.
    Redact,
}

/// A complete `EXPLAIN ANALYZE` result for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The query text as evaluated.
    pub query: String,
    /// One span per operator, in pre-order (display) order.
    pub spans: Vec<OperatorSpan>,
    /// Whole-query page I/O predicted by the cost model.
    pub predicted_io: f64,
    /// Whole-query page I/O actually observed.
    pub observed_io: u64,
    /// End-to-end evaluation wall time.
    pub elapsed_nanos: u64,
}

/// Format nanoseconds as microseconds with one decimal.
fn micros(nanos: u64) -> String {
    format!("{:.1}µs", nanos as f64 / 1_000.0)
}

impl QueryTrace {
    /// Total entries produced by the root operator.
    pub fn root_entries(&self) -> u64 {
        self.spans.first().map_or(0, |s| s.entries_out)
    }

    /// End-to-end wall time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos)
    }

    /// Render the trace as an indented per-operator table.
    pub fn render(&self, time: TimeDisplay) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "analyze: {}", self.query);
        for span in &self.spans {
            let indent = "  ".repeat(span.depth as usize + 1);
            let elapsed = match time {
                TimeDisplay::Show => micros(span.elapsed_nanos),
                TimeDisplay::Redact => "-".into(),
            };
            let _ = writeln!(
                out,
                "{indent}{}: in={} out={} pages={} reads={} writes={} \
                 predicted_io={:.1} observed_io={} elapsed={elapsed}",
                span.node,
                span.entries_in,
                span.entries_out,
                span.pages_out,
                span.reads,
                span.writes,
                span.predicted_io,
                span.observed_io(),
            );
        }
        let elapsed = match time {
            TimeDisplay::Show => micros(self.elapsed_nanos),
            TimeDisplay::Redact => "-".into(),
        };
        let _ = writeln!(
            out,
            "total: predicted_io={:.1} observed_io={} elapsed={elapsed}",
            self.predicted_io, self.observed_io,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        QueryTrace {
            query: "(- A B)".into(),
            spans: vec![
                OperatorSpan {
                    node: "difference".into(),
                    depth: 0,
                    entries_in: 7,
                    entries_out: 3,
                    pages_out: 1,
                    reads: 2,
                    writes: 1,
                    elapsed_nanos: 4_200,
                    predicted_io: 3.0,
                },
                OperatorSpan {
                    node: "atomic".into(),
                    depth: 1,
                    entries_in: 0,
                    entries_out: 5,
                    pages_out: 1,
                    reads: 4,
                    writes: 1,
                    elapsed_nanos: 10_000,
                    predicted_io: 5.0,
                },
            ],
            predicted_io: 8.0,
            observed_io: 8,
            elapsed_nanos: 15_500,
        }
    }

    #[test]
    fn render_shows_one_indented_line_per_operator() {
        let text = sample().render(TimeDisplay::Show);
        assert!(text.starts_with("analyze: (- A B)\n"));
        assert!(text.contains(
            "  difference: in=7 out=3 pages=1 reads=2 writes=1 \
             predicted_io=3.0 observed_io=3 elapsed=4.2µs"
        ));
        assert!(text.contains(
            "    atomic: in=0 out=5 pages=1 reads=4 writes=1 \
             predicted_io=5.0 observed_io=5 elapsed=10.0µs"
        ));
        assert!(text.ends_with("total: predicted_io=8.0 observed_io=8 elapsed=15.5µs\n"));
    }

    #[test]
    fn redacted_rendering_is_deterministic() {
        let mut a = sample();
        let mut b = sample();
        a.elapsed_nanos = 1;
        b.elapsed_nanos = 999_999;
        a.spans[0].elapsed_nanos = 5;
        b.spans[0].elapsed_nanos = 123_456;
        assert_eq!(a.render(TimeDisplay::Redact), b.render(TimeDisplay::Redact));
        assert!(a.render(TimeDisplay::Redact).contains("elapsed=-"));
    }

    #[test]
    fn root_entries_and_elapsed_accessors() {
        let t = sample();
        assert_eq!(t.root_entries(), 3);
        assert_eq!(t.elapsed(), Duration::from_nanos(15_500));
    }
}
