//! Injectable time sources.
//!
//! Code that couples to `Instant::now()` directly can only be tested by
//! sleeping, which makes the suite slow and timing-flaky under load. A
//! [`Clock`] reports *elapsed time since its own origin* as a
//! [`Duration`]; production code holds an `Arc<dyn Clock>` and tests
//! swap in a [`ManualClock`] they advance by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source: `now()` never goes backwards.
///
/// The absolute value is meaningless on its own; only differences
/// between two `now()` readings from the *same* clock are.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;

    /// Block the calling thread until `d` of *this clock's* time has
    /// passed. The production clock really sleeps; [`ManualClock`]
    /// advances itself instead, so retry/backoff loops written against
    /// `Clock::sleep` run instantly under test while still observing
    /// time moving forward.
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The production clock: wall-free monotonic time via [`Instant`],
/// measured from the moment the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A test clock that only moves when told to.
///
/// Starts at zero; [`ManualClock::advance`] moves it forward. Cloning
/// the handle (via `Arc`) shares the underlying time, so the code under
/// test and the test itself observe the same instant.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward by `by`.
    pub fn advance(&self, by: Duration) {
        // Saturating: a test that advances past u64::MAX nanos (~584
        // years) pins at the end of time instead of wrapping backwards.
        let by = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        let _ = self
            .nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(by))
            });
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500));
    }

    #[test]
    fn manual_clock_is_shared_through_an_arc() {
        let clock = Arc::new(ManualClock::new());
        let viewer: Arc<dyn Clock> = clock.clone();
        clock.advance(Duration::from_secs(3));
        assert_eq!(viewer.now(), Duration::from_secs(3));
    }

    #[test]
    fn manual_clock_sleep_advances_instead_of_blocking() {
        let clock = ManualClock::new();
        clock.sleep(Duration::from_secs(3600));
        assert_eq!(clock.now(), Duration::from_secs(3600));
    }

    #[test]
    fn manual_clock_saturates_instead_of_wrapping() {
        let clock = ManualClock::new();
        clock.advance(Duration::MAX);
        let end = clock.now();
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), end);
    }
}
