//! A small metrics registry: named counters, gauges, and log-scale
//! histograms with Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics — the registry lock is taken only on first
//! lookup of a name, never on the record path. Callers cache a handle
//! once and then update it from any thread.
//!
//! Histograms use fixed power-of-two buckets (1, 2, 4, …), so two
//! registries always agree on bucket boundaries and exported series are
//! comparable across runs without configuration.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of finite histogram buckets; bucket `i` has upper bound
/// `2^i`. Values above the last finite bound land in `+Inf`. With 40
/// buckets the finite range spans `2^39` (~5.5e11), enough for page
/// counts, entry counts, and microsecond latencies alike.
const BUCKETS: usize = 40;

/// A monotonically growing count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with a cumulative value maintained elsewhere.
    ///
    /// For bridging pre-existing cumulative stat types (`IoStats`,
    /// `NetStats`, …) whose counters already only grow: syncing their
    /// snapshot into the registry keeps the exported series monotone
    /// without double counting.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (pool occupancy, live connections).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCore {
    /// Per-bucket observation counts (not cumulative).
    buckets: [AtomicU64; BUCKETS],
    /// Observations above the last finite bound (`+Inf` bucket).
    overflow: AtomicU64,
    /// Sum of all observed values.
    sum: AtomicU64,
    /// Total number of observations.
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed log-scale histogram of `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Index of the smallest power-of-two bucket whose upper bound holds
/// `v`: 0 and 1 → bucket 0 (le=1), 2 → bucket 1 (le=2), 3..=4 →
/// bucket 2 (le=4), and so on.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros() as usize
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = bucket_index(v);
        if idx < BUCKETS {
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.0.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(BUCKETS);
        let mut running = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            running += bucket.load(Ordering::Relaxed);
            cumulative.push((1u64 << i, running));
        }
        HistogramSnapshot {
            buckets: cumulative,
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` per finite bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations (the `+Inf` cumulative count).
    pub count: u64,
}

/// Registry interior: name → live metric, one map per kind.
#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A process-local registry of named metrics.
///
/// Clones share the same interior, so any layer can hold its own copy
/// and all series meet in one exposition.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock();
        let cell = map.entry(name.to_string()).or_default();
        Counter(cell.clone())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock();
        let cell = map.entry(name.to_string()).or_default();
        Gauge(cell.clone())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock();
        let core = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram(core.clone())
    }

    /// Names of every registered metric, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .counters
            .lock()
            .keys()
            .chain(self.inner.gauges.lock().keys())
            .chain(self.inner.histograms.lock().keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// All counter and gauge values plus histogram `_sum`/`_count`
    /// series, as `(name, value)` pairs sorted by name — the flat form
    /// `BENCH_*.json` persists.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for (name, cell) in self.inner.counters.lock().iter() {
            out.push((name.clone(), cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in self.inner.gauges.lock().iter() {
            out.push((name.clone(), cell.load(Ordering::Relaxed)));
        }
        for (name, core) in self.inner.histograms.lock().iter() {
            out.push((format!("{name}_count"), core.count.load(Ordering::Relaxed)));
            out.push((format!("{name}_sum"), core.sum.load(Ordering::Relaxed)));
        }
        out.sort();
        out
    }

    /// Prometheus text exposition (`# TYPE` lines, cumulative
    /// `_bucket{le=…}` series, `_sum`, `_count`).
    ///
    /// Empty histogram buckets above the highest observation are
    /// elided (only `+Inf` closes the series), keeping the output
    /// readable while staying cumulative-correct.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, cell) in self.inner.counters.lock().iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
        }
        for (name, cell) in self.inner.gauges.lock().iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
        }
        for (name, core) in self.inner.histograms.lock().iter() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let count = core.count.load(Ordering::Relaxed);
            let mut running = 0u64;
            for (i, bucket) in core.buckets.iter().enumerate() {
                running += bucket.load(Ordering::Relaxed);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {running}", 1u64 << i);
                if running == count {
                    break;
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
            let _ = writeln!(out, "{name}_sum {}", core.sum.load(Ordering::Relaxed));
            let _ = writeln!(out, "{name}_count {count}");
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles_and_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.clone().counter("requests_total");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("requests_total").get(), 5);
    }

    #[test]
    fn counter_set_bridges_external_cumulative_stats() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("io_reads_total");
        c.set(17);
        c.set(42);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("pool_resident_pages");
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_is_the_smallest_power_of_two_upper_bound() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
    }

    #[test]
    fn histogram_snapshot_is_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_us");
        for v in [1, 1, 2, 5, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1009);
        // le=1 holds the two 1s; le=2 adds the 2; le=8 adds the 5.
        assert_eq!(snap.buckets[0], (1, 2));
        assert_eq!(snap.buckets[1], (2, 3));
        assert_eq!(snap.buckets[3], (8, 4));
        // le=1024 holds everything.
        assert_eq!(snap.buckets[10], (1024, 5));
    }

    #[test]
    fn huge_observations_land_in_overflow_but_keep_count_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.observe(u64::MAX / 2);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        // No finite bucket saw it.
        assert!(snap.buckets.iter().all(|&(_, c)| c == 0));
        let text = reg.render_prometheus();
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn prometheus_rendering_has_types_buckets_and_totals() {
        let reg = MetricsRegistry::new();
        reg.counter("reads_total").add(7);
        reg.gauge("depth").set(2);
        reg.histogram("pages").observe(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE reads_total counter"));
        assert!(text.contains("reads_total 7"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 2"));
        assert!(text.contains("# TYPE pages histogram"));
        assert!(text.contains("pages_bucket{le=\"4\"} 1"));
        assert!(text.contains("pages_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pages_sum 3"));
        assert!(text.contains("pages_count 1"));
    }

    #[test]
    fn flatten_lists_every_series_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(1);
        reg.gauge("a").set(9);
        reg.histogram("lat").observe(4);
        let flat = reg.flatten();
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b_total", "lat_count", "lat_sum"]);
    }
}
