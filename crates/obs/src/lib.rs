//! # netdir-obs — the instrument panel
//!
//! Every theorem in the paper is a statement about measurable quantities
//! (page transfers, scan counts, shipped bytes), and every optimization
//! PR after this one needs a number to move. This crate is the shared
//! measurement substrate the rest of the workspace records into:
//!
//! * [`metrics`] — a lightweight [`MetricsRegistry`]: named counters,
//!   gauges, and fixed log-scale-bucket histograms behind cheap cloneable
//!   handles, with Prometheus-style text exposition. The scattered
//!   ad-hoc stat types (`IoStats`, `NetStats`, `RetryStats`,
//!   `FaultStats`, breaker transitions) all surface here under the
//!   stable names of [`names`].
//! * [`clock`] — an injectable [`Clock`]: monotonic in production,
//!   manually advanced in tests, so time-coupled logic (circuit-breaker
//!   cooldowns) is testable without `thread::sleep`.
//! * [`trace`] — per-query observability: one [`OperatorSpan`] per query
//!   operator (elapsed time, pages, entries in/out,
//!   predicted-vs-observed I/O) collected into a [`QueryTrace`] — the
//!   structured form behind `EXPLAIN ANALYZE`.
//! * [`names`] — the single source of truth for metric names. CI's
//!   bench-smoke gate fails if a tracked name disappears, so dashboards
//!   and the `BENCH_*.json` trajectory never silently lose a series.
//!
//! The crate is a leaf: it depends only on the `parking_lot` compat shim
//! and std, so every layer (pager, core, server, wire, bench) can record
//! into it without dependency cycles.

pub mod clock;
pub mod metrics;
pub mod names;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use trace::{OperatorSpan, QueryTrace, TimeDisplay};
