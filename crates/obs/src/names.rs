//! Stable metric names — the single source of truth.
//!
//! Dashboards, `BENCH_*.json` trajectories, and the `check.sh
//! --bench-smoke` rename gate all key on these strings. Renaming one
//! silently breaks every historical comparison, so: add names freely,
//! never repurpose or delete one without updating [`TRACKED`] *and*
//! the documented migration note in EXPERIMENTS.md.

/// Pager reads (pages fetched from backing store). From `IoStats`.
pub const IO_READS: &str = "netdir_io_reads_total";
/// Pager writes (pages flushed). From `IoStats`.
pub const IO_WRITES: &str = "netdir_io_writes_total";
/// Pages allocated. From `IoStats`.
pub const IO_ALLOCS: &str = "netdir_io_allocs_total";

/// Buffer-pool fetches served from a resident frame. From
/// `PoolMetricsSnapshot`.
pub const POOL_HITS: &str = "netdir_pool_hits_total";
/// Buffer-pool fetches that admitted a new frame. From
/// `PoolMetricsSnapshot`.
pub const POOL_MISSES: &str = "netdir_pool_misses_total";
/// Frames evicted to make room. From `PoolMetricsSnapshot`.
pub const POOL_EVICTIONS: &str = "netdir_pool_evictions_total";
/// Misses re-admitted straight to the protected queue off the ghost
/// list. From `PoolMetricsSnapshot`.
pub const POOL_GHOST_READMISSIONS: &str = "netdir_pool_ghost_readmissions_total";
/// Bytes the v2 (prefix-compressed) page format saved versus v1. From
/// `PoolMetricsSnapshot`.
pub const POOL_COMPRESSED_BYTES_SAVED: &str = "netdir_pool_compressed_bytes_saved_total";

/// Remote sub-queries issued. From `NetStats`.
pub const NET_REQUESTS: &str = "netdir_net_requests_total";
/// Remote responses received. From `NetStats`.
pub const NET_RESPONSES: &str = "netdir_net_responses_total";
/// Entries shipped between servers. From `NetStats`.
pub const NET_ENTRIES_SHIPPED: &str = "netdir_net_entries_shipped_total";
/// Bytes shipped between servers (framed). From `NetStats`.
pub const NET_BYTES_SHIPPED: &str = "netdir_net_bytes_shipped_total";

/// Zone fetches attempted (first tries and retries). From `RetryStats`.
pub const RETRY_ATTEMPTS: &str = "netdir_retry_attempts_total";
/// Fetches that were retries of a failed attempt. From `RetryStats`.
pub const RETRY_RETRIES: &str = "netdir_retry_retries_total";
/// Fetches abandoned after exhausting the retry budget. From `RetryStats`.
pub const RETRY_GAVE_UP: &str = "netdir_retry_gave_up_total";

/// Calls through the fault-injecting transport. From `FaultStats`.
pub const FAULT_CALLS: &str = "netdir_fault_calls_total";
/// Injected drops. From `FaultStats`.
pub const FAULT_DROPPED: &str = "netdir_fault_dropped_total";
/// Injected errors. From `FaultStats`.
pub const FAULT_ERRORED: &str = "netdir_fault_errored_total";
/// Injected delays. From `FaultStats`.
pub const FAULT_DELAYED: &str = "netdir_fault_delayed_total";
/// Injected truncations. From `FaultStats`.
pub const FAULT_TRUNCATED: &str = "netdir_fault_truncated_total";
/// Calls refused as unreachable. From `FaultStats`.
pub const FAULT_UNREACHABLE: &str = "netdir_fault_unreachable_total";

/// Circuit breakers tripped Closed→Open.
pub const BREAKER_OPENED: &str = "netdir_breaker_opened_total";
/// Breakers that admitted a probe, Open→HalfOpen.
pub const BREAKER_HALF_OPENED: &str = "netdir_breaker_half_opened_total";
/// Breakers that recovered, HalfOpen→Closed.
pub const BREAKER_CLOSED: &str = "netdir_breaker_closed_total";

/// Worker threads spawned by parallel evaluation waves. From
/// `ParReport`.
pub const PAR_WORKERS_SPAWNED: &str = "netdir_par_workers_spawned_total";
/// Ready-set width per scheduling wave (how much concurrency the query
/// tree actually exposed), histogram. From `ParReport`.
pub const PAR_READY_WIDTH: &str = "netdir_par_ready_width";
/// Pages of I/O charged to one worker's sub-ledger, histogram. From
/// `ParReport`.
pub const PAR_WORKER_PAGES: &str = "netdir_par_worker_pages";

/// WAL durability barriers (one per committed batch). From `JournalStats`.
pub const WAL_FSYNCS: &str = "netdir_wal_fsyncs_total";
/// Pages written through the WAL's disk. From `JournalStats`.
pub const WAL_PAGE_WRITES: &str = "netdir_wal_page_writes_total";
/// WAL replay latency on reopen, microseconds, histogram. From
/// `RecoveryReport`.
pub const WAL_REPLAY_US: &str = "netdir_wal_replay_us";
/// Mutation batches durably applied. From `JournalStats`.
pub const MUTATION_BATCHES: &str = "netdir_mutation_batches_total";
/// Individual mutations applied. From `JournalStats`.
pub const MUTATIONS_APPLIED: &str = "netdir_mutations_applied_total";
/// Epochs the oldest pinned reader trails the writer, gauge. From
/// `EpochStats`.
pub const EPOCH_LAG: &str = "netdir_epoch_lag";
/// Copy-on-write pages reclaimed after the last reader drained. From
/// `EpochStats`.
pub const JOURNAL_PAGES_RECLAIMED: &str = "netdir_journal_pages_reclaimed_total";

/// Requests admitted past the policy layer. From `AdmissionSnapshot`.
pub const ADMISSION_ADMITTED: &str = "netdir_admission_admitted_total";
/// Requests shed with a `Busy` frame, all causes (queue full, inflight
/// cap, rate limit, enumeration cap). From `AdmissionSnapshot`.
pub const BUSY_REJECTIONS: &str = "netdir_busy_rejections_total";
/// `Busy` rejections caused by a per-peer token bucket running dry.
/// From `AdmissionSnapshot`.
pub const ADMISSION_RATE_LIMITED: &str = "netdir_admission_rate_limited_total";
/// `Busy` rejections caused by the anti-enumeration results cap.
/// From `AdmissionSnapshot`.
pub const ADMISSION_ENUM_CAPPED: &str = "netdir_admission_enum_capped_total";
/// Requests currently admitted and executing, gauge. From
/// `AdmissionSnapshot`.
pub const ADMISSION_INFLIGHT: &str = "netdir_admission_inflight";
/// Accepted connections waiting for a worker, gauge.
pub const ADMISSION_QUEUE_DEPTH: &str = "netdir_admission_queue_depth";
/// Requests whose execution deadline expired before the evaluator
/// finished. From `AdmissionSnapshot`.
pub const DEADLINE_EXCEEDED: &str = "netdir_deadline_exceeded_total";
/// Evaluator threads still running after their deadline fired (the
/// worker was released; the runaway finishes in the background), gauge.
pub const DEADLINE_ABANDONED: &str = "netdir_deadline_abandoned";
/// Execution time of requests that ran under a deadline and finished in
/// budget, microseconds, histogram.
pub const DEADLINE_USED_US: &str = "netdir_deadline_used_us";

/// Queries planned by the cost-based planner. From `PlannerSnapshot`.
pub const PLANNER_PLANNED: &str = "netdir_planner_planned_total";
/// Plans replayed from the shape-keyed plan cache. From
/// `PlannerSnapshot`.
pub const PLANNER_CACHE_HITS: &str = "netdir_planner_cache_hits_total";
/// Plans enumerated afresh (cache miss or stale epoch). From
/// `PlannerSnapshot`.
pub const PLANNER_CACHE_MISSES: &str = "netdir_planner_cache_misses_total";
/// Rewrite steps applied across all chosen plans. From
/// `PlannerSnapshot`.
pub const PLANNER_STEPS_APPLIED: &str = "netdir_planner_steps_applied_total";
/// Candidate steps the chooser ranked. From `PlannerSnapshot`.
pub const PLANNER_CANDIDATES: &str = "netdir_planner_candidates_considered_total";
/// Distinct atomic shapes in the stats catalog, gauge. From
/// `PlannerSnapshot`.
pub const PLANNER_CATALOG_SHAPES: &str = "netdir_planner_catalog_shapes";
/// Observed atomic evaluations absorbed by the stats catalog. From
/// `PlannerSnapshot`.
pub const PLANNER_CATALOG_OBSERVATIONS: &str = "netdir_planner_catalog_observations_total";
/// Current plan-cache invalidation epoch, gauge. From `PlannerSnapshot`.
pub const PLANNER_EPOCH: &str = "netdir_planner_epoch";

/// Queries evaluated end to end.
pub const QUERIES: &str = "netdir_queries_total";
/// End-to-end query latency histogram, microseconds.
pub const QUERY_DURATION_US: &str = "netdir_query_duration_us";
/// Pages read per query, histogram.
pub const QUERY_PAGES: &str = "netdir_query_pages";

/// Every name the bench-smoke gate protects against renames.
///
/// `BENCH_*.json` must contain each of these (histograms appear via
/// their `_count`/`_sum` series, which embed the base name).
pub const TRACKED: &[&str] = &[
    IO_READS,
    IO_WRITES,
    IO_ALLOCS,
    POOL_HITS,
    POOL_MISSES,
    POOL_EVICTIONS,
    POOL_GHOST_READMISSIONS,
    POOL_COMPRESSED_BYTES_SAVED,
    NET_REQUESTS,
    NET_RESPONSES,
    NET_ENTRIES_SHIPPED,
    NET_BYTES_SHIPPED,
    RETRY_ATTEMPTS,
    RETRY_RETRIES,
    RETRY_GAVE_UP,
    FAULT_CALLS,
    FAULT_DROPPED,
    FAULT_ERRORED,
    FAULT_DELAYED,
    FAULT_TRUNCATED,
    FAULT_UNREACHABLE,
    BREAKER_OPENED,
    BREAKER_HALF_OPENED,
    BREAKER_CLOSED,
    PAR_WORKERS_SPAWNED,
    PAR_READY_WIDTH,
    PAR_WORKER_PAGES,
    WAL_FSYNCS,
    WAL_PAGE_WRITES,
    WAL_REPLAY_US,
    MUTATION_BATCHES,
    MUTATIONS_APPLIED,
    EPOCH_LAG,
    JOURNAL_PAGES_RECLAIMED,
    ADMISSION_ADMITTED,
    BUSY_REJECTIONS,
    ADMISSION_RATE_LIMITED,
    ADMISSION_ENUM_CAPPED,
    ADMISSION_INFLIGHT,
    ADMISSION_QUEUE_DEPTH,
    DEADLINE_EXCEEDED,
    DEADLINE_ABANDONED,
    DEADLINE_USED_US,
    PLANNER_PLANNED,
    PLANNER_CACHE_HITS,
    PLANNER_CACHE_MISSES,
    PLANNER_STEPS_APPLIED,
    PLANNER_CANDIDATES,
    PLANNER_CATALOG_SHAPES,
    PLANNER_CATALOG_OBSERVATIONS,
    PLANNER_EPOCH,
    QUERIES,
    QUERY_DURATION_US,
    QUERY_PAGES,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in TRACKED {
            assert!(seen.insert(name), "duplicate tracked name: {name}");
            assert!(
                name.starts_with("netdir_"),
                "tracked name missing netdir_ prefix: {name}"
            );
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "tracked name not snake_case: {name}"
            );
        }
    }
}
