//! String syntax for filters.
//!
//! Atomic filters follow the paper's examples (`surName=jagadish`,
//! `SLARulePriority<3`, `telephoneNumber=*`, `commonName=*jag*`);
//! composite filters follow RFC 2254: `(&(objectClass=person)(age>=21))`,
//! `(|(a=1)(b=2))`, `(!(a=1))`.

use crate::atomic::{AtomicFilter, IntOp, SubstringPattern};
use crate::ldap::CompositeFilter;
use netdir_model::AttrName;
use std::fmt;

/// Filter syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// The offending input.
    pub input: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse filter {:?}: {}", self.input, self.detail)
    }
}

impl std::error::Error for FilterParseError {}

fn err(input: &str, detail: impl Into<String>) -> FilterParseError {
    FilterParseError {
        input: input.to_string(),
        detail: detail.into(),
    }
}

/// Parse an atomic filter: `attr=value`, `attr=*`, `attr=*sub*string*`,
/// `attr<5`, `attr<=5`, `attr>5`, `attr>=5`.
pub fn parse_atomic(input: &str) -> Result<AtomicFilter, FilterParseError> {
    let s = input.trim();
    // The constant-false filter is the bare token `false` (no operator,
    // previously a syntax error — unambiguous and round-trips Display).
    if s.eq_ignore_ascii_case("false") {
        return Ok(AtomicFilter::False);
    }
    // Look for the first comparison operator outside the attribute name.
    // Order matters: check two-char ops before their one-char prefixes.
    for (op_str, op) in [
        ("<=", Some(IntOp::Le)),
        (">=", Some(IntOp::Ge)),
        ("<", Some(IntOp::Lt)),
        (">", Some(IntOp::Gt)),
        ("=", None),
    ] {
        if let Some(pos) = s.find(op_str) {
            let attr_s = s[..pos].trim();
            let value_s = s[pos + op_str.len()..].trim();
            if attr_s.is_empty() {
                return Err(err(input, "empty attribute name"));
            }
            let attr = AttrName::new(attr_s);
            return match op {
                Some(int_op) => {
                    let v: i64 = value_s
                        .parse()
                        .map_err(|_| err(input, format!("{value_s:?} is not an integer")))?;
                    Ok(AtomicFilter::IntCmp(attr, int_op, v))
                }
                None => Ok(parse_eq_rhs(attr, value_s)),
            };
        }
    }
    Err(err(input, "no comparison operator found"))
}

/// RFC 2254-style value escaping: `\2a` = literal `*`, `\5c` = `\`,
/// `\28`/`\29` = parentheses. [`escape_value`] is the inverse, used by
/// filter `Display` impls so that values containing `*` round-trip.
pub fn unescape_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c == '\\'
            && i + 3 <= s.len()
            && s.is_char_boundary(i + 1)
            && s.is_char_boundary(i + 3)
        {
            if let Ok(byte) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(byte as char);
                chars.next();
                chars.next();
                continue;
            }
        }
        out.push(c);
    }
    out
}

/// Escape `* \ ( )` in a filter value for display (inverse of
/// [`unescape_value`]).
pub fn escape_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '*' => out.push_str("\\2a"),
            '\\' => out.push_str("\\5c"),
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            c => out.push(c),
        }
    }
    out
}

/// Classify the right-hand side of `attr=rhs`: presence, substring
/// pattern, or plain (canonical) equality. Unescaped `*` are wildcards;
/// `\2a` is a literal asterisk.
fn parse_eq_rhs(attr: AttrName, rhs: &str) -> AtomicFilter {
    if rhs == "*" {
        return AtomicFilter::Present(attr);
    }
    if rhs.contains('*') {
        let parts: Vec<String> = rhs.split('*').map(unescape_value).collect();
        let (first, rest) = parts.split_first().expect("split yields ≥1 part");
        let (last, mid) = rest.split_last().expect("'*' present yields ≥2 parts");
        let initial = (!first.is_empty()).then_some(first.as_str());
        let final_ = (!last.is_empty()).then_some(last.as_str());
        let any: Vec<&str> = mid
            .iter()
            .map(String::as_str)
            .filter(|s| !s.is_empty())
            .collect();
        return AtomicFilter::Substring(attr, SubstringPattern::new(initial, &any, final_));
    }
    AtomicFilter::Eq(attr, unescape_value(rhs).to_ascii_lowercase())
}

/// Parse an RFC 2254-style composite filter. A bare atomic filter (no
/// parentheses) is also accepted.
///
/// ```
/// use netdir_filter::parse_composite;
/// let f = parse_composite("(&(objectClass=person)(!(retired=*))(age>=21))").unwrap();
/// assert_eq!(parse_composite(&f.to_string()).unwrap(), f); // round-trips
/// ```
pub fn parse_composite(input: &str) -> Result<CompositeFilter, FilterParseError> {
    let s = input.trim();
    let (filter, rest) = parse_one(s).map_err(|d| err(input, d))?;
    if !rest.trim().is_empty() {
        return Err(err(input, format!("trailing input {:?}", rest.trim())));
    }
    Ok(filter)
}

/// Parse one filter expression, returning it and the unconsumed remainder.
fn parse_one(s: &str) -> Result<(CompositeFilter, &str), String> {
    let s = s.trim_start();
    let Some(stripped) = s.strip_prefix('(') else {
        // Bare atomic filter, consumes everything.
        let f = parse_atomic(s).map_err(|e| e.detail)?;
        return Ok((CompositeFilter::Atomic(f), ""));
    };
    let inner = stripped.trim_start();
    match inner.chars().next() {
        Some('&') | Some('|') => {
            let is_and = inner.starts_with('&');
            let mut rest = &inner[1..];
            let mut children = Vec::new();
            loop {
                let t = rest.trim_start();
                if let Some(after) = t.strip_prefix(')') {
                    if children.is_empty() {
                        return Err("empty boolean filter".into());
                    }
                    let f = if is_and {
                        CompositeFilter::And(children)
                    } else {
                        CompositeFilter::Or(children)
                    };
                    return Ok((f, after));
                }
                if t.is_empty() {
                    return Err("unterminated boolean filter".into());
                }
                let (child, r) = parse_one(t)?;
                children.push(child);
                rest = r;
            }
        }
        Some('!') => {
            let (child, rest) = parse_one(&inner[1..])?;
            let t = rest.trim_start();
            let Some(after) = t.strip_prefix(')') else {
                return Err("unterminated (!...) filter".into());
            };
            Ok((CompositeFilter::Not(Box::new(child)), after))
        }
        _ => {
            // Atomic inside parens: scan to the matching ')'.
            let Some(close) = inner.find(')') else {
                return Err("unterminated atomic filter".into());
            };
            let f = parse_atomic(&inner[..close]).map_err(|e| e.detail)?;
            Ok((CompositeFilter::Atomic(f), &inner[close + 1..]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_shapes() {
        assert_eq!(
            parse_atomic("telephoneNumber=*").unwrap(),
            AtomicFilter::Present("telephoneNumber".into())
        );
        assert_eq!(
            parse_atomic("surName=jagadish").unwrap(),
            AtomicFilter::Eq("surName".into(), "jagadish".into())
        );
        assert_eq!(
            parse_atomic("SLARulePriority < 3").unwrap(),
            AtomicFilter::IntCmp("slarulepriority".into(), IntOp::Lt, 3)
        );
        assert_eq!(
            parse_atomic("x>=10").unwrap(),
            AtomicFilter::IntCmp("x".into(), IntOp::Ge, 10)
        );
        match parse_atomic("commonName=*jag*").unwrap() {
            AtomicFilter::Substring(a, p) => {
                assert_eq!(a, "commonname".into());
                assert_eq!(p, SubstringPattern::new(None, &["jag"], None));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_atomic("cn=h*dish").unwrap() {
            AtomicFilter::Substring(_, p) => {
                assert_eq!(p, SubstringPattern::new(Some("h"), &[], Some("dish")));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn atomic_errors() {
        assert!(parse_atomic("nocomparison").is_err());
        assert!(parse_atomic("=x").is_err());
        assert!(parse_atomic("age<old").is_err());
    }

    #[test]
    fn composite_roundtrip() {
        let f = parse_composite("(&(objectClass=person)(|(uid=a)(uid=b))(!(retired=*)))")
            .unwrap();
        match &f {
            CompositeFilter::And(children) => assert_eq!(children.len(), 3),
            other => panic!("wrong parse: {other:?}"),
        }
        // Display → parse is stable.
        assert_eq!(parse_composite(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn bare_atomic_accepted() {
        assert_eq!(
            parse_composite("uid=a").unwrap(),
            CompositeFilter::Atomic(AtomicFilter::Eq("uid".into(), "a".into()))
        );
        assert_eq!(
            parse_composite("(uid=a)").unwrap(),
            CompositeFilter::Atomic(AtomicFilter::Eq("uid".into(), "a".into()))
        );
    }

    #[test]
    fn composite_errors() {
        assert!(parse_composite("(&)").is_err());
        assert!(parse_composite("(&(a=1)").is_err());
        assert!(parse_composite("(!(a=1)(b=2))").is_err());
        assert!(parse_composite("(a=1))").is_err());
    }
}
