//! Search scopes (Definition 4.1).

use netdir_model::Dn;
use std::fmt;

/// How far below the base entry an atomic query reaches.
///
/// Note the paper's semantics: `one` and `sub` **include the base entry**
/// itself (`dn(r) = B ∨ …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Only the base entry.
    Base,
    /// The base entry and its children.
    One,
    /// The base entry and all its descendants.
    Sub,
}

impl Scope {
    /// Does an entry with DN `dn` fall within `scope` of `base`?
    pub fn contains(self, base: &Dn, dn: &Dn) -> bool {
        match self {
            Scope::Base => dn == base,
            Scope::One => dn == base || base.is_parent_of(dn),
            Scope::Sub => dn == base || base.is_ancestor_of(dn),
        }
    }

    /// Parse `"base"` / `"one"` / `"sub"`.
    pub fn parse(s: &str) -> Option<Scope> {
        match s.trim() {
            "base" => Some(Scope::Base),
            "one" => Some(Scope::One),
            "sub" => Some(Scope::Sub),
            _ => None,
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Base => "base",
            Scope::One => "one",
            Scope::Sub => "sub",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn base_scope_is_exact() {
        let b = dn("dc=att, dc=com");
        assert!(Scope::Base.contains(&b, &b));
        assert!(!Scope::Base.contains(&b, &dn("dc=x, dc=att, dc=com")));
        assert!(!Scope::Base.contains(&b, &dn("dc=com")));
    }

    #[test]
    fn one_scope_includes_base_and_children_only() {
        let b = dn("dc=att, dc=com");
        assert!(Scope::One.contains(&b, &b));
        assert!(Scope::One.contains(&b, &dn("dc=x, dc=att, dc=com")));
        assert!(!Scope::One.contains(&b, &dn("dc=y, dc=x, dc=att, dc=com")));
    }

    #[test]
    fn sub_scope_includes_all_descendants() {
        let b = dn("dc=att, dc=com");
        assert!(Scope::Sub.contains(&b, &b));
        assert!(Scope::Sub.contains(&b, &dn("dc=y, dc=x, dc=att, dc=com")));
        assert!(!Scope::Sub.contains(&b, &dn("dc=com")));
        assert!(!Scope::Sub.contains(&b, &dn("dc=attx, dc=com")));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [Scope::Base, Scope::One, Scope::Sub] {
            assert_eq!(Scope::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scope::parse("tree"), None);
    }
}
