//! Atomic filters and their satisfaction semantics (Section 4.1).
//!
//! The paper gives the judgement `r ⊨ F` for representative filters:
//!
//! ```text
//! r ⊨ a=*    iff ∃v. (a,v) ∈ val(r)
//! r ⊨ a<v1   iff ∃v2. σ(a)=int ∧ (a,v2) ∈ val(r) ∧ v2 < v1
//! r ⊨ a=v2   iff ∃v,v1,v3. σ(a)=string ∧ (a,v) ∈ val(r) ∧ v = v1 v2 v3
//! ```
//!
//! Every variant here follows the same shape: *some* pair of the entry
//! satisfies the predicate. String matching is case-insensitive (canonical
//! form), mirroring default LDAP matching rules.

use netdir_model::{AttrName, Dn, Entry, Value};
use std::fmt;

/// A compiled substring pattern: `initial*any1*any2*…*final`.
///
/// Covers all the wildcard shapes of RFC 2254: `jag*`, `*jag`, `*jag*`,
/// `a*b*c`. An empty pattern list with no initial/final is the presence
/// test and is not represented here (see [`AtomicFilter::Present`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubstringPattern {
    /// Required prefix, if any (case-folded).
    pub initial: Option<String>,
    /// Interior fragments that must appear in order (case-folded).
    pub any: Vec<String>,
    /// Required suffix, if any (case-folded).
    pub final_: Option<String>,
}

impl SubstringPattern {
    /// Build from raw (unfolded) fragments.
    pub fn new(initial: Option<&str>, any: &[&str], final_: Option<&str>) -> Self {
        SubstringPattern {
            initial: initial.map(str::to_ascii_lowercase),
            any: any.iter().map(|s| s.to_ascii_lowercase()).collect(),
            final_: final_.map(str::to_ascii_lowercase),
        }
    }

    /// Match against a canonical (already folded) string.
    pub fn matches(&self, s: &str) -> bool {
        let mut rest = s;
        if let Some(init) = &self.initial {
            let Some(r) = rest.strip_prefix(init.as_str()) else {
                return false;
            };
            rest = r;
        }
        // Greedy left-to-right search of interior fragments.
        for frag in &self.any {
            let Some(pos) = rest.find(frag.as_str()) else {
                return false;
            };
            rest = &rest[pos + frag.len()..];
        }
        if let Some(fin) = &self.final_ {
            return rest.ends_with(fin.as_str());
        }
        true
    }
}

impl fmt::Display for SubstringPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let esc = crate::parse::escape_value;
        if let Some(i) = &self.initial {
            write!(f, "{}", esc(i))?;
        }
        for a in &self.any {
            write!(f, "*{}", esc(a))?;
        }
        write!(f, "*")?;
        if let Some(fi) = &self.final_ {
            write!(f, "{}", esc(fi))?;
        }
        Ok(())
    }
}

/// An atomic filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicFilter {
    /// `a=*` — the entry has some value for `a`.
    Present(AttrName),
    /// `a=v` — some value of `a` equals `v` canonically (strings compare
    /// case-insensitively; `priority=2` matches the int value 2; a
    /// DN-valued attribute matches its canonical DN rendering).
    Eq(AttrName, String),
    /// `a=init*…*fin` — wildcard comparison on string renderings.
    Substring(AttrName, SubstringPattern),
    /// `a<v`, `a<=v`, `a>v`, `a>=v` — integer comparison; only int-typed
    /// values participate (the σ(a)=int side condition).
    IntCmp(AttrName, IntOp, i64),
    /// `a=dn` with a DN-typed comparison value — matches entries with an
    /// embedded reference equal to the given DN.
    DnEq(AttrName, Dn),
    /// `objectClass=c` is just `Eq`, but matching *any* entry regardless of
    /// filter is occasionally needed as a neutral element: `(objectClass=*)`
    /// — provided here as `True` so query rewrites (Section 8.1) can build
    /// the "whole directory" operand.
    True,
    /// The dual neutral element: matches *no* entry. The Section 8.1
    /// `a`/`d` rewrites need a guaranteed-empty operand, and a constant
    /// false is the only one that costs nothing to evaluate (indexes
    /// answer it with an empty candidate list, no scan). Displays and
    /// parses as the bare token `false`, which was previously a syntax
    /// error, so the round-trip is unambiguous.
    False,
}

/// The integer comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` restricted to int-typed values (reachable via [`AtomicFilter::Eq`]
    /// too, through canonical strings; kept for explicit int semantics).
    Eq,
}

impl IntOp {
    /// Apply the comparison.
    pub fn test(self, lhs: i64, rhs: i64) -> bool {
        match self {
            IntOp::Lt => lhs < rhs,
            IntOp::Le => lhs <= rhs,
            IntOp::Gt => lhs > rhs,
            IntOp::Ge => lhs >= rhs,
            IntOp::Eq => lhs == rhs,
        }
    }
}

impl fmt::Display for IntOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntOp::Lt => "<",
            IntOp::Le => "<=",
            IntOp::Gt => ">",
            IntOp::Ge => ">=",
            IntOp::Eq => "=",
        })
    }
}

impl AtomicFilter {
    /// Convenience: `a=*`.
    pub fn present(attr: impl Into<AttrName>) -> Self {
        AtomicFilter::Present(attr.into())
    }

    /// Convenience: `a=v` (canonical equality).
    pub fn eq(attr: impl Into<AttrName>, v: impl Into<String>) -> Self {
        AtomicFilter::Eq(attr.into(), v.into().to_ascii_lowercase())
    }

    /// Convenience: integer comparison.
    pub fn int_cmp(attr: impl Into<AttrName>, op: IntOp, v: i64) -> Self {
        AtomicFilter::IntCmp(attr.into(), op, v)
    }

    /// The satisfaction judgement `r ⊨ F`.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            AtomicFilter::True => true,
            AtomicFilter::False => false,
            AtomicFilter::Present(a) => entry.has_attr(a),
            AtomicFilter::Eq(a, want) => entry.values(a).any(|v| v.canonical() == *want),
            AtomicFilter::Substring(a, pat) => {
                entry.values(a).any(|v| pat.matches(&v.canonical()))
            }
            AtomicFilter::IntCmp(a, op, rhs) => entry
                .values(a)
                .filter_map(Value::as_int)
                .any(|lhs| op.test(lhs, *rhs)),
            AtomicFilter::DnEq(a, dn) => {
                entry.values(a).any(|v| v.as_dn().is_some_and(|d| d == dn))
            }
        }
    }
}

impl fmt::Display for AtomicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicFilter::True => write!(f, "objectClass=*"),
            AtomicFilter::False => write!(f, "false"),
            AtomicFilter::Present(a) => write!(f, "{a}=*"),
            AtomicFilter::Eq(a, v) => write!(f, "{a}={}", crate::parse::escape_value(v)),
            AtomicFilter::Substring(a, p) => write!(f, "{a}={p}"),
            AtomicFilter::IntCmp(a, op, v) => write!(f, "{a}{op}{v}"),
            AtomicFilter::DnEq(a, d) => write!(f, "{a}={d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Entry;

    fn entry() -> Entry {
        Entry::builder(Dn::parse("uid=jag, dc=att, dc=com").unwrap())
            .class("inetOrgPerson")
            .attr("commonName", "H Jagadish")
            .attr("surName", "jagadish")
            .attr("priority", 2i64)
            .attr("priority", 7i64)
            .attr("boss", Dn::parse("uid=divesh, dc=att, dc=com").unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn presence() {
        let e = entry();
        assert!(AtomicFilter::present("surName").matches(&e));
        assert!(AtomicFilter::present("SURNAME").matches(&e));
        assert!(!AtomicFilter::present("telephoneNumber").matches(&e));
    }

    #[test]
    fn equality_is_canonical() {
        let e = entry();
        assert!(AtomicFilter::eq("surName", "JAGADISH").matches(&e));
        assert!(AtomicFilter::eq("priority", "2").matches(&e));
        assert!(!AtomicFilter::eq("surName", "jag").matches(&e));
        // objectClass is an ordinary attribute.
        assert!(AtomicFilter::eq("objectClass", "inetorgperson").matches(&e));
    }

    #[test]
    fn substring_shapes() {
        let e = entry();
        let f = |pat: SubstringPattern| AtomicFilter::Substring("commonName".into(), pat);
        assert!(f(SubstringPattern::new(None, &["jag"], None)).matches(&e)); // *jag*
        assert!(f(SubstringPattern::new(Some("h "), &[], None)).matches(&e)); // h *
        assert!(f(SubstringPattern::new(None, &[], Some("dish"))).matches(&e)); // *dish
        assert!(f(SubstringPattern::new(Some("h"), &["jaga"], Some("sh"))).matches(&e));
        assert!(!f(SubstringPattern::new(Some("jag"), &[], None)).matches(&e));
        assert!(!f(SubstringPattern::new(None, &["xyz"], None)).matches(&e));
    }

    #[test]
    fn substring_fragments_in_order() {
        let p = SubstringPattern::new(None, &["b", "a"], None);
        assert!(p.matches("xbxax"));
        assert!(!p.matches("axb")); // 'a' before 'b' only
    }

    #[test]
    fn int_comparisons_use_any_value() {
        let e = entry(); // priority ∈ {2, 7}
        assert!(AtomicFilter::int_cmp("priority", IntOp::Lt, 3).matches(&e));
        assert!(AtomicFilter::int_cmp("priority", IntOp::Gt, 5).matches(&e));
        assert!(!AtomicFilter::int_cmp("priority", IntOp::Gt, 7).matches(&e));
        assert!(AtomicFilter::int_cmp("priority", IntOp::Ge, 7).matches(&e));
        assert!(AtomicFilter::int_cmp("priority", IntOp::Eq, 2).matches(&e));
        // String values don't participate in int comparison.
        assert!(!AtomicFilter::int_cmp("surName", IntOp::Lt, 100).matches(&e));
    }

    #[test]
    fn dn_equality() {
        let e = entry();
        let boss = Dn::parse("UID=DIVESH, dc=att, dc=com").unwrap();
        assert!(AtomicFilter::DnEq("boss".into(), boss).matches(&e));
        assert!(
            !AtomicFilter::DnEq("boss".into(), Dn::parse("uid=x, dc=com").unwrap())
                .matches(&e)
        );
    }

    #[test]
    fn true_matches_everything() {
        assert!(AtomicFilter::True.matches(&entry()));
    }

    #[test]
    fn false_matches_nothing() {
        assert!(!AtomicFilter::False.matches(&entry()));
        assert_eq!(AtomicFilter::False.to_string(), "false");
    }
}
