//! Composite filters and the baseline LDAP query language.
//!
//! "In LDAP, only atomic **filters** (but not queries) can be combined
//! using the boolean operators and (&), or (|), not (!) … a complex LDAP
//! query can have a single base-entry-DN and a single scope" (Section 4.2).
//! [`LdapQuery`] is exactly that language — the bottom of the paper's
//! expressiveness hierarchy (Theorem 8.1), and the baseline the
//! expressiveness experiments measure against.

use crate::atomic::AtomicFilter;
use crate::scope::Scope;
use netdir_model::{Directory, Dn, Entry};
use std::fmt;

/// A boolean combination of atomic filters (filter-level, per RFC 2254).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositeFilter {
    /// One atomic filter.
    Atomic(AtomicFilter),
    /// `(&(f1)(f2)…)` — all must hold.
    And(Vec<CompositeFilter>),
    /// `(|(f1)(f2)…)` — at least one must hold.
    Or(Vec<CompositeFilter>),
    /// `(!(f))` — must not hold.
    Not(Box<CompositeFilter>),
}

impl CompositeFilter {
    /// Wrap an atomic filter.
    pub fn atomic(f: AtomicFilter) -> Self {
        CompositeFilter::Atomic(f)
    }

    /// Filter-level satisfaction: entry-local, no hierarchy involved.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            CompositeFilter::Atomic(f) => f.matches(entry),
            CompositeFilter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            CompositeFilter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            CompositeFilter::Not(f) => !f.matches(entry),
        }
    }
}

impl fmt::Display for CompositeFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositeFilter::Atomic(a) => write!(f, "({a})"),
            CompositeFilter::And(fs) => {
                write!(f, "(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            CompositeFilter::Or(fs) => {
                write!(f, "(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            CompositeFilter::Not(x) => write!(f, "(!{x})"),
        }
    }
}

/// The LDAP query language as defined in the paper: one base DN, one
/// scope, one composite filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdapQuery {
    /// The entry relative to which the filter is evaluated.
    pub base: Dn,
    /// How far below the base the search reaches.
    pub scope: Scope,
    /// The composite filter.
    pub filter: CompositeFilter,
}

impl LdapQuery {
    /// Construct a query.
    pub fn new(base: Dn, scope: Scope, filter: CompositeFilter) -> Self {
        LdapQuery {
            base,
            scope,
            filter,
        }
    }

    /// Evaluate against a directory instance. The result is the sub-
    /// instance of entries within scope that satisfy the filter, in
    /// reverse-DN sorted order (queries map instances to instances —
    /// the closure property).
    pub fn evaluate<'d>(&self, dir: &'d Directory) -> Vec<&'d Entry> {
        let candidates: Box<dyn Iterator<Item = &Entry>> = match self.scope {
            Scope::Base => Box::new(dir.lookup(&self.base).into_iter()),
            Scope::One => Box::new(dir.base_and_children(&self.base)),
            Scope::Sub => Box::new(dir.subtree(&self.base)),
        };
        candidates.filter(|e| self.filter.matches(e)).collect()
    }
}

impl fmt::Display for LdapQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ? {} ? {})", self.base, self.scope, self.filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::IntOp;
    use netdir_model::Entry;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn dir() -> Directory {
        let mut d = Directory::new();
        let mk = |s: &str, cls: &str, prio: Option<i64>| {
            let mut b = Entry::builder(dn(s)).class(cls);
            if let Some(p) = prio {
                b = b.attr("priority", p);
            }
            b.build().unwrap()
        };
        d.insert(mk("dc=com", "dcObject", None)).unwrap();
        d.insert(mk("dc=att, dc=com", "dcObject", None)).unwrap();
        d.insert(mk("ou=people, dc=att, dc=com", "organizationalUnit", None))
            .unwrap();
        d.insert(mk("uid=a, ou=people, dc=att, dc=com", "person", Some(1)))
            .unwrap();
        d.insert(mk("uid=b, ou=people, dc=att, dc=com", "person", Some(5)))
            .unwrap();
        d
    }

    #[test]
    fn scope_and_filter_combine() {
        let d = dir();
        let q = LdapQuery::new(
            dn("dc=att, dc=com"),
            Scope::Sub,
            CompositeFilter::atomic(AtomicFilter::eq("objectClass", "person")),
        );
        assert_eq!(q.evaluate(&d).len(), 2);

        let q = LdapQuery::new(
            dn("dc=att, dc=com"),
            Scope::One,
            CompositeFilter::atomic(AtomicFilter::eq("objectClass", "person")),
        );
        assert!(q.evaluate(&d).is_empty(), "persons are two levels down");
    }

    #[test]
    fn boolean_filter_semantics() {
        let d = dir();
        let person = CompositeFilter::atomic(AtomicFilter::eq("objectClass", "person"));
        let low = CompositeFilter::atomic(AtomicFilter::int_cmp("priority", IntOp::Lt, 3));
        let q = LdapQuery::new(
            dn("dc=com"),
            Scope::Sub,
            CompositeFilter::And(vec![person.clone(), low.clone()]),
        );
        let hits = q.evaluate(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &dn("uid=a, ou=people, dc=att, dc=com"));

        let q = LdapQuery::new(
            dn("dc=com"),
            Scope::Sub,
            CompositeFilter::And(vec![person, CompositeFilter::Not(Box::new(low))]),
        );
        let hits = q.evaluate(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &dn("uid=b, ou=people, dc=att, dc=com"));
    }

    #[test]
    fn results_are_sorted_by_reverse_dn() {
        let d = dir();
        let q = LdapQuery::new(dn("dc=com"), Scope::Sub, CompositeFilter::atomic(AtomicFilter::True));
        let keys: Vec<_> = q
            .evaluate(&d)
            .iter()
            .map(|e| e.dn().sort_key().as_bytes().to_vec())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn base_scope_on_missing_entry_is_empty() {
        let d = dir();
        let q = LdapQuery::new(
            dn("dc=ghost"),
            Scope::Base,
            CompositeFilter::atomic(AtomicFilter::True),
        );
        assert!(q.evaluate(&d).is_empty());
    }

    #[test]
    fn display_shape() {
        let q = LdapQuery::new(
            dn("dc=att, dc=com"),
            Scope::Sub,
            CompositeFilter::atomic(AtomicFilter::eq("surName", "jagadish")),
        );
        // Attribute names display with original spelling; values canonical.
        assert_eq!(q.to_string(), "(dc=att, dc=com ? sub ? (surName=jagadish))");
    }
}
