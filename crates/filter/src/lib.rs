//! # netdir-filter — atomic filters and the LDAP baseline
//!
//! Section 4.1 defines *atomic filters* over the base types: presence
//! tests (`telephoneNumber=*`), wildcard string comparison
//! (`commonName=*jag*`), and integer comparison (`SLARulePriority < 3`).
//! A directory entry satisfies an atomic filter iff **at least one** of its
//! `(attribute, value)` pairs satisfies it — that existential is what makes
//! multi-valued attributes work.
//!
//! This crate provides:
//!
//! * [`atomic`] — the [`atomic::AtomicFilter`] type and its satisfaction
//!   semantics, implementing the paper's `r ⊨ F` judgements.
//! * [`scope`] — the `base` / `one` / `sub` search scopes of Definition 4.1.
//! * [`ldap`] — composite filters (`&`, `|`, `!` over atomic filters) and
//!   the **LDAP query language "as defined in this paper"** (Section 8.1):
//!   a single base-entry DN, a single scope, and one composite filter.
//!   This is the baseline language the expressiveness results separate
//!   from L0 (a complex LDAP query cannot mix base DNs or scopes —
//!   Example 4.1).
//! * [`parse`] — RFC 2254-style string syntax for both.

pub mod atomic;
pub mod ldap;
pub mod parse;
pub mod scope;

pub use atomic::{AtomicFilter, SubstringPattern};
pub use ldap::{CompositeFilter, LdapQuery};
pub use parse::{parse_atomic, parse_composite, FilterParseError};
pub use scope::Scope;
