//! End-to-end: a loopback fleet of TCP daemons must answer every query
//! language level byte-identically to the in-process channel cluster it
//! was partitioned from, and its shipped-byte counters must reflect
//! real frames crossing real sockets.

use netdir_filter::{parse_atomic, parse_composite, Scope};
use netdir_model::{Directory, Dn, Entry};
use netdir_query::{classify, parse_query, Language};
use netdir_server::ClusterBuilder;
use netdir_wire::{
    encode_entries, ClientOptions, ServerOptions, WireCluster, WireError,
};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// The distributed-evaluation test directory (three zones under `dc=com`
/// plus a disjoint `dc=org`), extended with a traffic profile in the
/// `att` zone and an SLA policy in the `research` zone that references
/// it across the zone cut — so an L3 `vd` query must join entries owned
/// by different servers.
fn dir() -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).unwrap();
    let plain = |s: &str| Entry::builder(dn(s)).class("thing").build().unwrap();
    let person = |s: &str, sn: &str| {
        Entry::builder(dn(s))
            .class("thing")
            .attr("surName", sn)
            .build()
            .unwrap()
    };
    add(plain("dc=com"));
    add(plain("dc=att, dc=com"));
    add(plain("ou=people, dc=att, dc=com"));
    add(person("uid=jag, ou=people, dc=att, dc=com", "jagadish"));
    add(plain("dc=research, dc=att, dc=com"));
    add(plain("ou=people, dc=research, dc=att, dc=com"));
    add(person(
        "uid=jag2, ou=people, dc=research, dc=att, dc=com",
        "jagadish",
    ));
    add(plain("dc=org"));
    add(plain("ou=tp, dc=att, dc=com"));
    add(
        Entry::builder(dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .unwrap(),
    );
    add(
        Entry::builder(dn("SLAPolicyName=mail, dc=research, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLATPRef", dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .build()
            .unwrap(),
    );
    d
}

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .server("root", dn("dc=com"))
        .server("att", dn("dc=att, dc=com"))
        .server("research", dn("dc=research, dc=att, dc=com"))
        .server("org", dn("dc=org"))
}

/// One query per language level, each chosen to return a nonempty
/// result against `dir()` when posed to server `att`.
fn level_queries() -> Vec<(Language, &'static str)> {
    vec![
        (
            // Set difference of two atomic queries.
            Language::L0,
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
                (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        ),
        (
            // Hierarchy: entries with a child in the second set.
            Language::L1,
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        ),
        (
            // Aggregate over witnesses: entries with more than one child.
            Language::L2,
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=com ? sub ? objectClass=thing) \
                count($2) > 1)",
        ),
        (
            // Value-based deref across the research/att zone cut.
            Language::L3,
            "(vd (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                 (dc=att, dc=com ? sub ? sourcePort=25) \
                 SLATPRef)",
        ),
    ]
}

#[test]
fn tcp_results_are_byte_identical_to_in_process_cluster() {
    let dir = dir();
    let in_process = builder().build(&dir);
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    assert_eq!(wire.orphaned(), 0);
    assert_eq!(wire.num_servers(), in_process.num_servers());

    let pager = netdir_pager::default_pager();
    let client = wire.client(wire.server_id("att").unwrap());
    for (level, text) in level_queries() {
        let query = parse_query(text).unwrap();
        assert_eq!(classify(&query), level, "misclassified: {text}");

        let expected = encode_entries(&in_process.query_from("att", &pager, &query).unwrap());
        assert!(!expected.is_empty(), "dead test query: {text}");

        // Through a WireClient against the daemon, frame by frame.
        let over_tcp = client.query_encoded("att", text).unwrap();
        assert_eq!(over_tcp, expected, "TCP result differs for {text}");

        // And through the wire cluster's own socket-transport router.
        let direct = encode_entries(&wire.query_from("att", &pager, &query).unwrap());
        assert_eq!(direct, expected, "socket-router result differs for {text}");
    }
}

#[test]
fn distributed_queries_ship_real_frame_bytes() {
    let dir = dir();
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let client = wire.client(wire.server_id("att").unwrap());

    wire.net().reset();
    // Posed to `att`, both atomic sub-queries cover the research zone,
    // so at least one sub-query must cross a socket.
    let entries = client
        .query(
            "att",
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
                (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].dn().to_string(),
        "uid=jag, ou=people, dc=att, dc=com"
    );

    let snap = wire.net().snapshot();
    assert!(snap.requests > 0, "no remote sub-queries recorded");
    assert_eq!(snap.responses, snap.requests);
    assert!(snap.entries_shipped > 0, "no entries shipped");
    // Real frames: at least a 4-byte header plus payload per response.
    assert!(
        snap.bytes_shipped > snap.responses * 4,
        "bytes_shipped ({}) does not look like framed traffic",
        snap.bytes_shipped
    );
}

#[test]
fn atomic_and_search_frames_match_the_owning_store() {
    let dir = dir();
    let in_process = builder().build(&dir);
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let att = wire.server_id("att").unwrap();
    let client = wire.client(att);

    // Atomic and Ldap frames are answered by the daemon's own store, so
    // compare against the matching in-process node on a base the `att`
    // partition fully owns.
    let base = dn("ou=people, dc=att, dc=com");
    let atomic = parse_atomic("surName=jagadish").unwrap();
    let got = client.atomic(&base, Scope::Sub, &atomic).unwrap();
    let want = in_process.node(att).atomic(&base, Scope::Sub, &atomic).unwrap();
    assert!(!want.is_empty());
    assert_eq!(encode_entries(&got), encode_entries(&want));

    let composite = parse_composite("(&(objectClass=thing)(surName=jagadish))").unwrap();
    let got = client.search(&base, Scope::Sub, &composite).unwrap();
    let want = in_process.node(att).ldap(&base, Scope::Sub, &composite).unwrap();
    assert!(!want.is_empty());
    assert_eq!(encode_entries(&got), encode_entries(&want));
}

#[test]
fn oversized_request_is_a_protocol_error_not_a_hang() {
    // Client and server agree on a small frame cap; a request that
    // exceeds it must surface as a prompt WireError::Protocol (refused
    // before any byte hits the socket), never a retry loop or a hang.
    let dir = dir();
    let max_frame = 256;
    let wire = WireCluster::launch(
        builder(),
        &dir,
        ServerOptions {
            max_frame,
            ..ServerOptions::default()
        },
        ClientOptions {
            max_frame,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let client = wire.client(wire.server_id("att").unwrap());
    let huge = format!("(dc=com ? sub ? surName={})", "x".repeat(4 * max_frame));
    let started = std::time::Instant::now();
    let err = client.query("att", &huge).unwrap_err();
    assert!(
        matches!(err, WireError::Protocol(_)),
        "expected a protocol error, got {err:?}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "oversized request took {:?}",
        started.elapsed()
    );
    assert_eq!(client.retries(), 0, "fatal errors must not be retried");
}

#[test]
fn partial_mode_over_tcp_matches_strict_on_a_healthy_cluster() {
    // A healthy cluster answers QueryPartial with the same entries (and
    // the same bytes) a strict Query returns, with nothing skipped.
    let dir = dir();
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let client = wire.client(wire.server_id("att").unwrap());
    for (_, text) in level_queries() {
        let strict = client.query_encoded("att", text).unwrap();
        let outcome = client.query_partial("att", text).unwrap();
        assert!(outcome.is_complete(), "healthy cluster skipped zones: {text}");
        assert_eq!(encode_entries(&outcome.entries), strict, "partial != strict: {text}");
    }
}

#[test]
fn analyze_over_tcp_traces_every_operator_and_matches_strict() {
    // `ndquery --analyze`'s wire path: a QueryAnalyze frame returns the
    // same entries a strict Query returns, plus one span per operator
    // node with entries/pages and predicted-vs-observed I/O.
    let dir = dir();
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let client = wire.client(wire.server_id("att").unwrap());
    for (_, text) in level_queries() {
        let strict = client.query_encoded("att", text).unwrap();
        let (entries, trace) = client.query_analyze("att", text).unwrap();
        assert_eq!(
            encode_entries(&entries),
            strict,
            "analyzed != strict: {text}"
        );
        let query = parse_query(text).unwrap();
        assert_eq!(trace.spans.len(), query.num_nodes(), "span per node: {text}");
        assert_eq!(trace.root_entries(), entries.len() as u64, "{text}");
        assert!(trace.predicted_io > 0.0, "no prediction: {text}");
        let span_io: u64 = trace.spans.iter().map(|s| s.observed_io()).sum();
        assert_eq!(trace.observed_io, span_io, "totals must reconcile: {text}");
        // The rendering carries the per-operator story end to end.
        let rendered = trace.render(netdir_obs::TimeDisplay::Show);
        assert!(rendered.starts_with("analyze: "), "{rendered}");
        assert!(rendered.contains("predicted_io="), "{rendered}");
        assert!(rendered.contains("observed_io="), "{rendered}");
        assert!(rendered.trim_end().ends_with("µs"), "{rendered}");
    }
}

#[test]
fn stats_frame_serves_every_tracked_metric() {
    let dir = dir();
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let client = wire.client(wire.server_id("att").unwrap());
    // Before any query: every tracked name is present (explicit zeros).
    let cold = client.stats().unwrap();
    for name in netdir_obs::names::TRACKED {
        assert!(cold.contains(name), "exposition missing {name}");
    }
    // After a distributed query: queries counted, I/O and shipping
    // nonzero.
    let (_, text) = &level_queries()[0];
    client.query("att", text).unwrap();
    let warm = client.stats().unwrap();
    let gauge = |name: &str| -> u64 {
        warm.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no sample for {name} in:\n{warm}"))
    };
    assert!(gauge("netdir_queries_total") >= 1);
    assert!(gauge("netdir_net_requests_total") > 0, "remote fetch expected");
    assert!(gauge("netdir_net_bytes_shipped_total") > 0);
    // Small results can stay pool-resident (no write-back), but every
    // operator output list allocates pages.
    assert!(gauge("netdir_io_allocs_total") > 0, "operator output pages");
}

#[test]
fn shutdown_cluster_refuses_further_queries() {
    let dir = dir();
    let mut wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let client = wire.client(0);
    client.ping().unwrap();
    wire.shutdown();
    assert!(client.ping().is_err());
}

/// The same query posed to different home servers must agree on the
/// answer (only the shipping pattern differs) — over TCP and in-process.
#[test]
fn answers_are_home_independent() {
    let dir = dir();
    let in_process = builder().build(&dir);
    let wire = WireCluster::launch_default(builder(), &dir).unwrap();
    let pager = netdir_pager::default_pager();
    let text = "(c (dc=com ? sub ? objectClass=thing) \
                   (dc=research, dc=att, dc=com ? base ? objectClass=thing))";
    let query = parse_query(text).unwrap();

    let reference = encode_entries(&in_process.query_from("root", &pager, &query).unwrap());
    assert!(!reference.is_empty());
    for home in ["root", "att", "research", "org"] {
        let over_tcp = wire.client(wire.server_id(home).unwrap());
        assert_eq!(
            over_tcp.query_encoded(home, text).unwrap(),
            reference,
            "home {home} disagrees"
        );
    }
}
