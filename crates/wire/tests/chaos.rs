//! Seeded chaos tests: a loopback TCP cluster under deterministic fault
//! injection must degrade *predictably* — strict mode fails cleanly,
//! partial mode returns exactly the surviving partitions' entries, and
//! a fixed seed replays the whole scenario bit-identically (same retry
//! counts, same fault draws, same partial sets, same entry bytes).

use netdir_model::{Directory, Dn, Entry};
use netdir_query::parse_query;
use netdir_server::{
    BreakerConfig, BreakerState, ConsistencyMode, FaultConfig, RetryPolicy,
};
use netdir_server::ClusterBuilder;
use netdir_wire::{encode_entries, ClientOptions, FaultPlan, ServerOptions, WireCluster};
use std::time::Duration;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// Same fixture as the loopback tests: three zones under `dc=com` plus
/// a disjoint `dc=org`, with a cross-zone value reference so an L3
/// query must join entries owned by different servers.
fn dir() -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).unwrap();
    let plain = |s: &str| Entry::builder(dn(s)).class("thing").build().unwrap();
    let person = |s: &str, sn: &str| {
        Entry::builder(dn(s))
            .class("thing")
            .attr("surName", sn)
            .build()
            .unwrap()
    };
    add(plain("dc=com"));
    add(plain("dc=att, dc=com"));
    add(plain("ou=people, dc=att, dc=com"));
    add(person("uid=jag, ou=people, dc=att, dc=com", "jagadish"));
    add(plain("dc=research, dc=att, dc=com"));
    add(plain("ou=people, dc=research, dc=att, dc=com"));
    add(person(
        "uid=jag2, ou=people, dc=research, dc=att, dc=com",
        "jagadish",
    ));
    add(plain("dc=org"));
    add(plain("ou=tp, dc=att, dc=com"));
    add(
        Entry::builder(dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .unwrap(),
    );
    add(
        Entry::builder(dn("SLAPolicyName=mail, dc=research, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLATPRef", dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .build()
            .unwrap(),
    );
    d
}

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .server("root", dn("dc=com"))
        .server("att", dn("dc=att, dc=com"))
        .server("research", dn("dc=research, dc=att, dc=com"))
        .server("org", dn("dc=org"))
}

/// The fixture minus everything the `research` zone owns — what a
/// healthy cluster of only the surviving partitions would hold.
fn dir_without_research() -> Directory {
    let research = dn("dc=research, dc=att, dc=com");
    let mut d = Directory::new();
    for e in dir().iter_sorted() {
        if !research.sort_key().subsumes(e.dn().sort_key()) {
            d.insert(e.clone()).unwrap();
        }
    }
    d
}

/// One query per language level (all touching the research zone), plus
/// a whole-namespace sweep.
fn queries() -> Vec<&'static str> {
    vec![
        // L0: set difference of two atomic queries.
        "(- (dc=att, dc=com ? sub ? surName=jagadish) \
            (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        // L1: entries with a child in the second set.
        "(c (dc=com ? sub ? objectClass=thing) \
            (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        // L2: aggregate over witnesses.
        "(c (dc=com ? sub ? objectClass=thing) \
            (dc=com ? sub ? objectClass=thing) \
            count($2) > 1)",
        // L3: value-based deref across the research/att zone cut.
        "(vd (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
             (dc=att, dc=com ? sub ? sourcePort=25) \
             SLATPRef)",
        // Whole-namespace sweep: every surviving entry must come back.
        "(null-dn ? sub ? objectClass=thing)",
    ]
}

/// Dead partition, no random weather: strict mode fails every level,
/// partial mode answers byte-identically to a healthy cluster built
/// from the surviving partitions alone.
#[test]
fn dead_partition_degrades_to_surviving_partitions() {
    let research_id = 2; // declaration order in builder()
    let plan = FaultPlan {
        faults: FaultConfig::seeded(7).with_server_fail(research_id, 1.0),
        retry: RetryPolicy::immediate(2),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(600),
        },
    };
    let wire = WireCluster::launch_with_faults(
        builder(),
        &dir(),
        ServerOptions::default(),
        ClientOptions::default(),
        plan,
    )
    .unwrap();
    let reference = builder().build(&dir_without_research());
    let pager = netdir_pager::default_pager();
    let research_zone = dn("dc=research, dc=att, dc=com");

    for text in queries() {
        let query = parse_query(text).unwrap();
        // Strict: the dead, unreplicated zone fails the whole query.
        assert!(
            wire.query_from("att", &pager, &query).is_err(),
            "strict query should fail with a dead partition: {text}"
        );
        // Partial: byte-identical to querying the surviving partitions
        // alone, with the dead zone accounted for.
        let outcome = wire
            .query_from_with("att", &pager, &query, ConsistencyMode::Partial)
            .unwrap();
        let expected =
            encode_entries(&reference.query_from("att", &pager, &query).unwrap());
        assert_eq!(
            encode_entries(&outcome.entries),
            expected,
            "partial result differs from surviving-partition reference: {text}"
        );
        assert_eq!(outcome.partial.len(), 1, "one zone lost: {text}");
        assert_eq!(outcome.partial[0].zone, research_zone);
        assert_eq!(outcome.partial[0].servers, vec![research_id]);
    }

    // The breaker tripped on the dead server and the retry layer spent
    // (bounded) effort before giving up.
    assert_eq!(wire.router().health().state(research_id), BreakerState::Open);
    let retry = wire.retry_stats().snapshot();
    assert!(retry.retries >= 1, "no retries recorded: {retry:?}");
    assert!(retry.gave_up >= 1, "dead zone never abandoned: {retry:?}");
    // Bounded effort: 10 queries × ≤8 zone-fetches each × ≤2 attempts.
    assert!(
        retry.attempts <= 10 * 8 * 2,
        "unbounded retry effort: {retry:?}"
    );
    let faults = wire.fault_stats().unwrap().snapshot();
    assert!(faults.unreachable >= 1, "fault injection never fired");
}

/// Per-query observation: encoded entry bytes + skipped-zone reports.
type QueryTrace = (Vec<Vec<u8>>, Vec<String>);

/// One full chaos scenario: launch under drop-rate weather with the
/// given seed, run every query in partial mode, and return everything
/// observable: per-query entry bytes + skipped zones, the retry
/// snapshot, and the fault snapshot.
fn chaos_run(
    seed: u64,
) -> (
    Vec<QueryTrace>,
    netdir_server::RetrySnapshot,
    netdir_server::FaultSnapshot,
) {
    let plan = FaultPlan {
        faults: FaultConfig::seeded(seed).with_drop_rate(0.3),
        retry: RetryPolicy::immediate(4),
        // Weather, not outage: never trip, so every fetch gets its full
        // retry budget and the draw sequence stays aligned.
        breaker: BreakerConfig {
            failure_threshold: 1_000,
            cooldown: Duration::from_secs(600),
        },
    };
    let wire = WireCluster::launch_with_faults(
        builder(),
        &dir(),
        ServerOptions::default(),
        ClientOptions::default(),
        plan,
    )
    .unwrap();
    let pager = netdir_pager::default_pager();
    let mut results = Vec::new();
    for text in queries() {
        let query = parse_query(text).unwrap();
        let outcome = wire
            .query_from_with("att", &pager, &query, ConsistencyMode::Partial)
            .unwrap();
        results.push((
            encode_entries(&outcome.entries),
            outcome.partial.iter().map(|p| p.to_string()).collect(),
        ));
    }
    (
        results,
        wire.retry_stats().snapshot(),
        wire.fault_stats().unwrap().snapshot(),
    )
}

/// The same seed must replay the whole scenario bit-identically across
/// two fresh clusters: same entry bytes, same skipped zones, same retry
/// counts, same fault draws.
#[test]
fn seeded_chaos_is_bit_reproducible() {
    let (results_a, retry_a, faults_a) = chaos_run(42);
    let (results_b, retry_b, faults_b) = chaos_run(42);
    assert_eq!(results_a, results_b, "entry bytes or skips diverged");
    assert_eq!(retry_a, retry_b, "retry counters diverged");
    assert_eq!(faults_a, faults_b, "fault draws diverged");
    // The weather was real (drops happened, retries fought them) and
    // the effort stayed bounded — otherwise this test proves nothing.
    assert!(faults_a.dropped > 0, "seed 42 never dropped a call");
    assert!(retry_a.retries > 0, "drops never cost a retry");
    assert!(
        retry_a.attempts <= faults_a.calls,
        "more zone attempts than transport calls: {retry_a:?} vs {faults_a:?}"
    );
    // A different seed draws different weather.
    let (_, _, faults_c) = chaos_run(43);
    assert_ne!(faults_a, faults_c, "different seeds drew identical faults");
}
