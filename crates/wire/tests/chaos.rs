//! Seeded chaos tests: a loopback TCP cluster under deterministic fault
//! injection must degrade *predictably* — strict mode fails cleanly,
//! partial mode returns exactly the surviving partitions' entries, and
//! a fixed seed replays the whole scenario bit-identically (same retry
//! counts, same fault draws, same partial sets, same entry bytes).

use netdir_filter::{parse_atomic, Scope};
use netdir_model::{Directory, Dn, Entry};
use netdir_obs::{ManualClock, MetricsRegistry};
use netdir_query::parse_query;
use netdir_server::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, BreakerConfig, BreakerState,
    ConsistencyMode, FaultConfig, RateLimit, RetryPolicy,
};
use netdir_server::ClusterBuilder;
use netdir_wire::{
    encode_entries, ClientOptions, FaultPlan, ServerOptions, WireClient, WireCluster, WireError,
};
use std::sync::Arc;
use std::time::Duration;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// Same fixture as the loopback tests: three zones under `dc=com` plus
/// a disjoint `dc=org`, with a cross-zone value reference so an L3
/// query must join entries owned by different servers.
fn dir() -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).unwrap();
    let plain = |s: &str| Entry::builder(dn(s)).class("thing").build().unwrap();
    let person = |s: &str, sn: &str| {
        Entry::builder(dn(s))
            .class("thing")
            .attr("surName", sn)
            .build()
            .unwrap()
    };
    add(plain("dc=com"));
    add(plain("dc=att, dc=com"));
    add(plain("ou=people, dc=att, dc=com"));
    add(person("uid=jag, ou=people, dc=att, dc=com", "jagadish"));
    add(plain("dc=research, dc=att, dc=com"));
    add(plain("ou=people, dc=research, dc=att, dc=com"));
    add(person(
        "uid=jag2, ou=people, dc=research, dc=att, dc=com",
        "jagadish",
    ));
    add(plain("dc=org"));
    add(plain("ou=tp, dc=att, dc=com"));
    add(
        Entry::builder(dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .unwrap(),
    );
    add(
        Entry::builder(dn("SLAPolicyName=mail, dc=research, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLATPRef", dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .build()
            .unwrap(),
    );
    d
}

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .server("root", dn("dc=com"))
        .server("att", dn("dc=att, dc=com"))
        .server("research", dn("dc=research, dc=att, dc=com"))
        .server("org", dn("dc=org"))
}

/// The fixture minus everything the `research` zone owns — what a
/// healthy cluster of only the surviving partitions would hold.
fn dir_without_research() -> Directory {
    let research = dn("dc=research, dc=att, dc=com");
    let mut d = Directory::new();
    for e in dir().iter_sorted() {
        if !research.sort_key().subsumes(e.dn().sort_key()) {
            d.insert(e.clone()).unwrap();
        }
    }
    d
}

/// One query per language level (all touching the research zone), plus
/// a whole-namespace sweep.
fn queries() -> Vec<&'static str> {
    vec![
        // L0: set difference of two atomic queries.
        "(- (dc=att, dc=com ? sub ? surName=jagadish) \
            (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        // L1: entries with a child in the second set.
        "(c (dc=com ? sub ? objectClass=thing) \
            (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        // L2: aggregate over witnesses.
        "(c (dc=com ? sub ? objectClass=thing) \
            (dc=com ? sub ? objectClass=thing) \
            count($2) > 1)",
        // L3: value-based deref across the research/att zone cut.
        "(vd (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
             (dc=att, dc=com ? sub ? sourcePort=25) \
             SLATPRef)",
        // Whole-namespace sweep: every surviving entry must come back.
        "(null-dn ? sub ? objectClass=thing)",
    ]
}

/// Dead partition, no random weather: strict mode fails every level,
/// partial mode answers byte-identically to a healthy cluster built
/// from the surviving partitions alone.
#[test]
fn dead_partition_degrades_to_surviving_partitions() {
    let research_id = 2; // declaration order in builder()
    let plan = FaultPlan {
        faults: FaultConfig::seeded(7).with_server_fail(research_id, 1.0),
        retry: RetryPolicy::immediate(2),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(600),
        },
    };
    let wire = WireCluster::launch_with_faults(
        builder(),
        &dir(),
        ServerOptions::default(),
        ClientOptions::default(),
        plan,
    )
    .unwrap();
    let reference = builder().build(&dir_without_research());
    let pager = netdir_pager::default_pager();
    let research_zone = dn("dc=research, dc=att, dc=com");

    for text in queries() {
        let query = parse_query(text).unwrap();
        // Strict: the dead, unreplicated zone fails the whole query.
        assert!(
            wire.query_from("att", &pager, &query).is_err(),
            "strict query should fail with a dead partition: {text}"
        );
        // Partial: byte-identical to querying the surviving partitions
        // alone, with the dead zone accounted for.
        let outcome = wire
            .query_from_with("att", &pager, &query, ConsistencyMode::Partial)
            .unwrap();
        let expected =
            encode_entries(&reference.query_from("att", &pager, &query).unwrap());
        assert_eq!(
            encode_entries(&outcome.entries),
            expected,
            "partial result differs from surviving-partition reference: {text}"
        );
        assert_eq!(outcome.partial.len(), 1, "one zone lost: {text}");
        assert_eq!(outcome.partial[0].zone, research_zone);
        assert_eq!(outcome.partial[0].servers, vec![research_id]);
    }

    // The breaker tripped on the dead server and the retry layer spent
    // (bounded) effort before giving up.
    assert_eq!(wire.router().health().state(research_id), BreakerState::Open);
    let retry = wire.retry_stats().snapshot();
    assert!(retry.retries >= 1, "no retries recorded: {retry:?}");
    assert!(retry.gave_up >= 1, "dead zone never abandoned: {retry:?}");
    // Bounded effort: 10 queries × ≤8 zone-fetches each × ≤2 attempts.
    assert!(
        retry.attempts <= 10 * 8 * 2,
        "unbounded retry effort: {retry:?}"
    );
    let faults = wire.fault_stats().unwrap().snapshot();
    assert!(faults.unreachable >= 1, "fault injection never fired");
}

/// Per-query observation: encoded entry bytes + skipped-zone reports.
type QueryTrace = (Vec<Vec<u8>>, Vec<String>);

/// One full chaos scenario: launch under drop-rate weather with the
/// given seed, run every query in partial mode, and return everything
/// observable: per-query entry bytes + skipped zones, the retry
/// snapshot, and the fault snapshot.
fn chaos_run(
    seed: u64,
) -> (
    Vec<QueryTrace>,
    netdir_server::RetrySnapshot,
    netdir_server::FaultSnapshot,
) {
    let plan = FaultPlan {
        faults: FaultConfig::seeded(seed).with_drop_rate(0.3),
        retry: RetryPolicy::immediate(4),
        // Weather, not outage: never trip, so every fetch gets its full
        // retry budget and the draw sequence stays aligned.
        breaker: BreakerConfig {
            failure_threshold: 1_000,
            cooldown: Duration::from_secs(600),
        },
    };
    let wire = WireCluster::launch_with_faults(
        builder(),
        &dir(),
        ServerOptions::default(),
        ClientOptions::default(),
        plan,
    )
    .unwrap();
    let pager = netdir_pager::default_pager();
    let mut results = Vec::new();
    for text in queries() {
        let query = parse_query(text).unwrap();
        let outcome = wire
            .query_from_with("att", &pager, &query, ConsistencyMode::Partial)
            .unwrap();
        results.push((
            encode_entries(&outcome.entries),
            outcome.partial.iter().map(|p| p.to_string()).collect(),
        ));
    }
    (
        results,
        wire.retry_stats().snapshot(),
        wire.fault_stats().unwrap().snapshot(),
    )
}

/// The atomic probe used to drain the admission bucket: answered by the
/// `att` daemon alone, no cross-zone fetches.
fn probe_filter() -> (Dn, netdir_filter::AtomicFilter) {
    (dn("dc=att, dc=com"), parse_atomic("surName=jagadish").unwrap())
}

/// Shed probes issued past the drained bucket in [`overloaded_run`].
const SHED_PROBES: usize = 12;

/// Rate-limit burst armed in [`overloaded_run`] — sized so the strict
/// phase never overdraws it (the run asserts this).
const BURST: u32 = 400;

/// Everything observable from one overloaded chaos scenario.
struct OverloadRun {
    /// Encoded strict answers, one per level query.
    strict: Vec<Vec<Vec<u8>>>,
    /// Encoded answers of the *accepted* drain probes, in order.
    accepted: Vec<Vec<Vec<u8>>>,
    /// Retry hints of the shed probes, in order.
    busy_hints: Vec<u32>,
    admission: AdmissionSnapshot,
    faults: netdir_server::FaultSnapshot,
}

/// One overload-under-weather scenario: every daemon shares an
/// admission controller whose token bucket sits on a *frozen* manual
/// clock (no refill — the budget is finite and exact), while the
/// inter-daemon transport drops calls under seeded weather. Phase 1
/// runs every strict query; phase 2 drains the remaining tokens with
/// sequential atomic probes until the daemon sheds with `Busy`.
fn overloaded_run(seed: u64) -> OverloadRun {
    let registry = MetricsRegistry::new();
    netdir_server::metrics::register_all(&registry);
    let admission = Arc::new(AdmissionController::new(
        AdmissionConfig {
            rate: Some(RateLimit { per_sec: 1, burst: BURST }),
            ..AdmissionConfig::default()
        },
        Arc::new(ManualClock::new()),
        &registry,
    ));
    let server_opts = ServerOptions {
        admission: Some(admission.clone()),
        ..ServerOptions::default()
    };
    let plan = FaultPlan {
        faults: FaultConfig::seeded(seed).with_drop_rate(0.3),
        retry: RetryPolicy::immediate(4),
        breaker: BreakerConfig {
            failure_threshold: 1_000,
            cooldown: Duration::from_secs(600),
        },
    };
    let wire = WireCluster::launch_with_faults(
        builder(),
        &dir(),
        server_opts,
        ClientOptions::default(),
        plan,
    )
    .unwrap();
    let pager = netdir_pager::default_pager();

    // Phase 1: strict queries under drop weather, admission armed but
    // within budget. Retries burn weather, not tokens the phase cannot
    // afford.
    let strict: Vec<Vec<Vec<u8>>> = queries()
        .iter()
        .map(|text| {
            let query = parse_query(text).unwrap();
            encode_entries(&wire.query_from("att", &pager, &query).unwrap())
        })
        .collect();

    // Phase 2: the bucket never refills, so exactly `BURST - admitted`
    // probes are still fundable; everything past that must shed.
    let after_queries = admission.snapshot();
    assert_eq!(
        after_queries.busy_rejections, 0,
        "strict phase overdrew the bucket — raise BURST"
    );
    let remaining = u64::from(BURST) - after_queries.admitted;
    let att = wire.server_id("att").unwrap();
    let probe = WireClient::connect(
        wire.addr(att),
        ClientOptions {
            retry: RetryPolicy::none(),
            pool_size: 0,
            ..ClientOptions::default()
        },
    );
    let (base, filter) = probe_filter();
    let mut accepted = Vec::new();
    let mut busy_hints = Vec::new();
    for _ in 0..remaining as usize + SHED_PROBES {
        match probe.atomic_counted(&base, Scope::Sub, &filter) {
            Ok((bytes, _)) => accepted.push(bytes),
            Err(WireError::Busy { retry_after_ms }) => busy_hints.push(retry_after_ms),
            Err(e) => panic!("probe failed with a non-admission error: {e}"),
        }
    }
    OverloadRun {
        strict,
        accepted,
        busy_hints,
        admission: admission.snapshot(),
        faults: wire.fault_stats().unwrap().snapshot(),
    }
}

/// Under injected faults *and* admission limits, every accepted strict
/// answer is byte-identical to a no-overload, no-weather baseline; the
/// drained bucket sheds exactly and the whole scenario — accepted
/// bytes, shed counts, retry hints, fault draws — replays
/// bit-identically under the same seed.
#[test]
fn admission_under_chaos_answers_exactly_and_sheds_reproducibly() {
    // No-overload baseline: same cluster shape, no faults, no limits.
    let baseline = WireCluster::launch_default(builder(), &dir()).unwrap();
    let pager = netdir_pager::default_pager();
    let strict_baseline: Vec<Vec<Vec<u8>>> = queries()
        .iter()
        .map(|text| {
            let query = parse_query(text).unwrap();
            encode_entries(&baseline.query_from("att", &pager, &query).unwrap())
        })
        .collect();
    let att = baseline.server_id("att").unwrap();
    let (base, filter) = probe_filter();
    let (probe_baseline, _) = baseline
        .client(att)
        .atomic_counted(&base, Scope::Sub, &filter)
        .unwrap();
    drop(baseline);

    let a = overloaded_run(77);

    // Accepted answers are exact: overload shapes *whether* a request
    // is served, never *what* an accepted one sees.
    assert_eq!(a.strict, strict_baseline, "strict bytes drifted under overload");
    assert!(!a.accepted.is_empty(), "bucket left no room for accepted probes");
    for bytes in &a.accepted {
        assert_eq!(bytes, &probe_baseline, "accepted probe bytes drifted");
    }

    // The bucket drained exactly: every probe past `remaining` shed,
    // none before it, and the accounting matches the arithmetic.
    assert_eq!(a.busy_hints.len(), SHED_PROBES, "shedding started early or late");
    assert_eq!(a.admission.admitted, u64::from(BURST));
    assert_eq!(a.admission.busy_rejections, SHED_PROBES as u64);
    assert_eq!(a.admission.rate_limited, SHED_PROBES as u64);
    assert_eq!(a.admission.inflight, 0, "admission slots leaked");

    // The weather was real, and the whole scenario replays bit-for-bit.
    assert!(a.faults.dropped > 0, "seed 77 never dropped a call");
    let b = overloaded_run(77);
    assert_eq!(a.strict, b.strict, "strict bytes diverged across replays");
    assert_eq!(a.accepted, b.accepted, "accepted probe bytes diverged");
    assert_eq!(a.busy_hints, b.busy_hints, "Busy accounting diverged");
    assert_eq!(a.admission, b.admission, "admission counters diverged");
    assert_eq!(a.faults, b.faults, "fault draws diverged");
}

/// The same seed must replay the whole scenario bit-identically across
/// two fresh clusters: same entry bytes, same skipped zones, same retry
/// counts, same fault draws.
#[test]
fn seeded_chaos_is_bit_reproducible() {
    let (results_a, retry_a, faults_a) = chaos_run(42);
    let (results_b, retry_b, faults_b) = chaos_run(42);
    assert_eq!(results_a, results_b, "entry bytes or skips diverged");
    assert_eq!(retry_a, retry_b, "retry counters diverged");
    assert_eq!(faults_a, faults_b, "fault draws diverged");
    // The weather was real (drops happened, retries fought them) and
    // the effort stayed bounded — otherwise this test proves nothing.
    assert!(faults_a.dropped > 0, "seed 42 never dropped a call");
    assert!(retry_a.retries > 0, "drops never cost a retry");
    assert!(
        retry_a.attempts <= faults_a.calls,
        "more zone attempts than transport calls: {retry_a:?} vs {faults_a:?}"
    );
    // A different seed draws different weather.
    let (_, _, faults_c) = chaos_run(43);
    assert_ne!(faults_a, faults_c, "different seeds drew identical faults");
}
