//! Property tests for the wire codec: whatever the model can express
//! must cross the wire unchanged — entries byte-for-byte, filters
//! structure-for-structure — and damaged payloads must be rejected, not
//! misread.

use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, CompositeFilter, Scope, SubstringPattern};
use netdir_model::{AttrName, Dn, Entry, Rdn, Value};
use netdir_pager::record::Record;
use netdir_wire::{WireRequest, WireResponse};
use proptest::prelude::*;

/// Attribute names, mixed case (names compare case-insensitively; the
/// wire must preserve the spelling anyway).
fn arb_attr() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("cn".to_string()),
        Just("surName".to_string()),
        Just("SLATPRef".to_string()),
        Just("sourcePort".to_string()),
        "[a-z]{1,6}",
    ]
}

/// Attribute/RDN value text, biased toward the characters the DN syntax
/// escapes (`\ , + =`) so escaping is exercised end to end.
fn arb_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9]{1,6}",
        Just("a,b".to_string()),
        Just("x=y".to_string()),
        Just("p+q".to_string()),
        Just("back\\slash".to_string()),
        Just("mid dle space".to_string()),
        Just("trailing\\".to_string()),
        Just(",=+\\".to_string()),
    ]
}

fn arb_dn() -> impl Strategy<Value = Dn> {
    dn_of_len(0)
}

/// Like [`arb_dn`] but never the root DN — entries must name themselves.
fn arb_entry_dn() -> impl Strategy<Value = Dn> {
    dn_of_len(1)
}

fn dn_of_len(min: usize) -> impl Strategy<Value = Dn> {
    proptest::collection::vec((arb_attr(), arb_text()), min..4).prop_map(|parts| {
        let rdns: Vec<Rdn> = parts
            .into_iter()
            .map(|(a, v)| Rdn::single(a.as_str(), v.as_str()).unwrap())
            .collect();
        Dn::from_rdns(rdns)
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_text().prop_map(Value::Str),
        (-1000i64..1000).prop_map(Value::Int),
        arb_dn().prop_map(Value::Dn),
    ]
}

/// Entries with multi-valued attributes (duplicate names arise naturally
/// from independent draws) and escaped RDNs.
fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        arb_entry_dn(),
        proptest::collection::vec((arb_attr(), arb_value()), 0..6),
    )
        .prop_map(|(dn, attrs)| {
            let mut b = Entry::builder(dn).class("thing");
            for (a, v) in attrs {
                b = b.attr(a.as_str(), v);
            }
            b.build().unwrap()
        })
}

fn arb_scope() -> impl Strategy<Value = Scope> {
    prop_oneof![Just(Scope::Base), Just(Scope::One), Just(Scope::Sub)]
}

fn arb_atomic_filter() -> impl Strategy<Value = AtomicFilter> {
    prop_oneof![
        Just(AtomicFilter::True),
        arb_attr().prop_map(|a| AtomicFilter::Present(AttrName::new(a))),
        (arb_attr(), arb_text()).prop_map(|(a, v)| AtomicFilter::Eq(AttrName::new(a), v)),
        (
            arb_attr(),
            proptest::option::of(arb_text()),
            proptest::collection::vec(arb_text(), 0..3),
            proptest::option::of(arb_text()),
        )
            .prop_map(|(a, initial, any, final_)| {
                AtomicFilter::Substring(
                    AttrName::new(a),
                    SubstringPattern { initial, any, final_ },
                )
            }),
        (arb_attr(), 0u32..5, -1000i64..1000).prop_map(|(a, op, v)| {
            let op = [IntOp::Lt, IntOp::Le, IntOp::Gt, IntOp::Ge, IntOp::Eq][op as usize];
            AtomicFilter::IntCmp(AttrName::new(a), op, v)
        }),
        (arb_attr(), arb_dn())
            .prop_map(|(a, dn)| AtomicFilter::DnEq(AttrName::new(a), dn)),
    ]
}

fn arb_composite_filter() -> impl Strategy<Value = CompositeFilter> {
    arb_atomic_filter()
        .prop_map(CompositeFilter::Atomic)
        .prop_recursive(3, 16, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| CompositeFilter::And(vec![a, b])),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| CompositeFilter::Or(vec![a, b])),
                inner.prop_map(|f| CompositeFilter::Not(Box::new(f))),
            ]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Entries cross the wire in their on-page encoding: response
    /// framing must hand back the exact bytes, and those bytes must
    /// decode to an entry that re-encodes identically.
    #[test]
    fn entries_round_trip_byte_identically(entries in proptest::collection::vec(arb_entry(), 0..5)) {
        let encoded: Vec<Vec<u8>> = entries
            .iter()
            .map(|e| {
                let mut buf = Vec::new();
                e.encode(&mut buf);
                buf
            })
            .collect();
        let resp = WireResponse::Entries(encoded.clone());
        let back = WireResponse::decode(&resp.encode()).unwrap();
        prop_assert_eq!(&back, &resp);
        let WireResponse::Entries(bytes) = back else { unreachable!() };
        for (original, wire_bytes) in entries.iter().zip(&bytes) {
            let decoded = Entry::decode(wire_bytes).unwrap();
            prop_assert_eq!(decoded.dn(), original.dn());
            let mut re = Vec::new();
            decoded.encode(&mut re);
            prop_assert_eq!(&re, wire_bytes, "decode/encode not a fixpoint");
        }
    }

    /// Atomic requests round-trip structurally — including `True` and
    /// `DnEq`, whose Display forms parse back as different variants, and
    /// DNs whose RDNs need escaping.
    #[test]
    fn atomic_requests_round_trip(
        base in arb_dn(),
        scope in arb_scope(),
        filter in arb_atomic_filter(),
    ) {
        let req = WireRequest::Atomic { base, scope, filter };
        prop_assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
    }

    /// Composite (baseline-LDAP) requests round-trip at any nesting.
    #[test]
    fn ldap_requests_round_trip(
        base in arb_dn(),
        scope in arb_scope(),
        filter in arb_composite_filter(),
    ) {
        let req = WireRequest::Ldap { base, scope, filter };
        prop_assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
    }

    /// Query text ships verbatim: the server must parse exactly the
    /// characters the client typed.
    #[test]
    fn query_requests_round_trip(home in "[a-z0-9-]{0,8}", text in arb_text()) {
        let req = WireRequest::Query { home: home.clone(), text: text.clone() };
        match WireRequest::decode(&req.encode()).unwrap() {
            WireRequest::Query { home: h, text: t } => {
                prop_assert_eq!(h, home);
                prop_assert_eq!(t, text);
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }

    /// Truncation anywhere inside a payload is an error, never a
    /// misreading: no strict prefix of an encoded message decodes.
    #[test]
    fn truncated_payloads_never_decode(
        entries in proptest::collection::vec(arb_entry(), 0..3),
        base in arb_dn(),
        filter in arb_atomic_filter(),
        cut_pct in 0u32..100,
    ) {
        let resp = WireResponse::Entries(
            entries
                .iter()
                .map(|e| {
                    let mut buf = Vec::new();
                    e.encode(&mut buf);
                    buf
                })
                .collect(),
        )
        .encode();
        let cut_at = resp.len() * cut_pct as usize / 100; // < len, so strict
        prop_assert!(WireResponse::decode(&resp[..cut_at]).is_err());

        let req = WireRequest::Atomic { base, scope: Scope::Sub, filter }.encode();
        let cut_at = req.len() * cut_pct as usize / 100;
        prop_assert!(WireRequest::decode(&req[..cut_at]).is_err());
    }
}
