//! `ndquery` — command-line client for a `netdird` daemon.
//!
//! ```text
//! ndquery 127.0.0.1:3890 "(dc=att, dc=com ? sub ? surName=jagadish)"
//! ndquery 127.0.0.1:3890 --home att "(null-dn ? sub ? objectClass=person)"
//! ndquery 127.0.0.1:3890 --partial "(null-dn ? sub ? objectClass=person)"
//! ndquery 127.0.0.1:3890 --analyze "(null-dn ? sub ? objectClass=person)"
//! ndquery 127.0.0.1:3890 --ping
//! ndquery 127.0.0.1:3890 --stats
//! ndquery 127.0.0.1:3890 --shutdown
//! ```
//!
//! Query results print as LDIF, one blank-line-separated block per
//! entry, in the server's (DN-sorted) order.
//!
//! With `--partial`, zones the daemon cannot reach are skipped instead
//! of failing the query: entries from the surviving partitions print as
//! usual, each skipped zone is reported on stderr, and the exit status
//! stays 0 (a degraded answer is still an answer).
//!
//! With `--analyze`, the daemon evaluates the query and returns an
//! `EXPLAIN ANALYZE` trace: one line per operator with entries in/out,
//! pages, predicted vs observed I/O, and elapsed time. The trace prints
//! to stdout instead of the entries (the entry count goes to stderr).
//!
//! With `--stats`, the daemon's metrics print in Prometheus exposition
//! format.
//!
//! With `--apply FILE`, FILE is parsed as an LDIF change document
//! (RFC 2849 `changetype` records; plain entry records mean add) and
//! submitted as one atomic mutation batch: either every change lands
//! durably on the daemon, or none does and the rejection prints.
//! `--apply -` reads the changes from stdin.

use netdir_journal::MutationBatch;
use netdir_model::ldif::entry_to_ldif;
use netdir_obs::TimeDisplay;
use netdir_wire::{ClientOptions, WireClient, WireError};
use std::net::ToSocketAddrs;
use std::process::exit;
use std::time::Duration;

/// Overloaded daemon shed the request (transient): sysexits EX_TEMPFAIL.
const EXIT_BUSY: i32 = 75;
/// The daemon's execution deadline expired (the `timeout(1)` convention).
const EXIT_DEADLINE: i32 = 124;

fn usage() -> ! {
    eprintln!(
        "usage: ndquery ADDR [--home NAME] [--partial | --analyze] [--timeout-ms MS] QUERY\n\
         \x20      ndquery ADDR --apply FILE   (LDIF changes; - for stdin)\n\
         \x20      ndquery ADDR --ping | --stats | --shutdown"
    );
    exit(2)
}

/// Print `e` and exit with a status distinguishing transient overload
/// (retry later, exit 75) and a blown server-side deadline (exit 124)
/// from every other failure (exit 1).
fn fail(e: WireError) -> ! {
    match e {
        WireError::Busy { retry_after_ms } => {
            eprintln!(
                "ndquery: server busy, request shed before execution; \
                 retry in {retry_after_ms}ms or later"
            );
            exit(EXIT_BUSY)
        }
        WireError::DeadlineExceeded { budget_ms } => {
            eprintln!(
                "ndquery: server gave up after its {budget_ms}ms execution deadline; \
                 retrying the same request will blow the same budget"
            );
            exit(EXIT_DEADLINE)
        }
        e => {
            eprintln!("ndquery: {e}");
            exit(1)
        }
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut home = String::new();
    let mut query: Option<String> = None;
    let mut ping = false;
    let mut shutdown = false;
    let mut partial = false;
    let mut analyze = false;
    let mut stats = false;
    let mut apply: Option<String> = None;
    let mut opts = ClientOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("ndquery: {flag} needs a value");
                exit(2)
            })
        };
        match arg.as_str() {
            "--home" => home = value("--home"),
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms").parse().unwrap_or_else(|_| usage());
                opts.timeout = Duration::from_millis(ms);
            }
            "--ping" => ping = true,
            "--shutdown" => shutdown = true,
            "--partial" => partial = true,
            "--analyze" => analyze = true,
            "--stats" => stats = true,
            "--apply" => apply = Some(value("--apply")),
            "--help" | "-h" => usage(),
            other if addr.is_none() => addr = Some(other.to_string()),
            other if query.is_none() => query = Some(other.to_string()),
            other => {
                eprintln!("ndquery: unexpected argument {other:?}");
                usage()
            }
        }
    }

    let Some(addr) = addr else { usage() };
    let sock_addr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("ndquery: cannot resolve {addr:?}");
            exit(1)
        }
    };
    let client = WireClient::connect(sock_addr, opts);

    if ping {
        match client.ping() {
            Ok(()) => println!("{addr} is alive"),
            Err(e) => fail(e),
        }
        return;
    }
    if shutdown {
        match client.shutdown_server() {
            Ok(()) => println!("{addr} acknowledged shutdown"),
            Err(e) => fail(e),
        }
        return;
    }
    if stats {
        match client.stats() {
            Ok(text) => print!("{text}"),
            Err(e) => fail(e),
        }
        return;
    }

    if let Some(path) = apply {
        let text = if path == "-" {
            let mut buf = String::new();
            use std::io::Read;
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("ndquery: cannot read stdin: {e}");
                exit(1)
            }
            buf
        } else {
            match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ndquery: cannot read {path}: {e}");
                    exit(1)
                }
            }
        };
        let batch = match MutationBatch::from_ldif(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ndquery: bad LDIF changes: {e}");
                exit(1)
            }
        };
        if batch.is_empty() {
            eprintln!("ndquery: no changes in input");
            exit(1)
        }
        match client.apply(&batch) {
            Ok((epoch, mutations)) => {
                println!("applied {mutations} mutations; directory at epoch {epoch}");
            }
            Err(e) => fail(e),
        }
        return;
    }

    let Some(query) = query else { usage() };
    if analyze {
        match client.query_analyze(&home, &query) {
            Ok((entries, trace)) => {
                print!("{}", trace.render(TimeDisplay::Show));
                eprintln!("# {} entries", entries.len());
            }
            Err(e) => fail(e),
        }
        return;
    }
    if partial {
        match client.query_partial(&home, &query) {
            Ok(outcome) => {
                for (i, e) in outcome.entries.iter().enumerate() {
                    if i > 0 {
                        println!();
                    }
                    print!("{}", entry_to_ldif(e));
                }
                for skip in &outcome.partial {
                    eprintln!("# partial: skipped zone {skip}");
                }
                eprintln!(
                    "# {} entries ({} zones skipped)",
                    outcome.entries.len(),
                    outcome.partial.len()
                );
            }
            Err(e) => fail(e),
        }
        return;
    }
    match client.query(&home, &query) {
        Ok(entries) => {
            for (i, e) in entries.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", entry_to_ldif(e));
            }
            eprintln!("# {} entries", entries.len());
        }
        Err(e) => fail(e),
    }
}
