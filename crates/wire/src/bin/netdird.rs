//! `netdird` — a network directory daemon.
//!
//! Loads a directory from LDIF, partitions it across one or more naming
//! contexts (an in-process cluster of store threads), and serves the
//! netdir frame protocol on a TCP listener: atomic queries, baseline
//! LDAP searches, and full distributed L0–L3 queries.
//!
//! ```text
//! netdird --listen 127.0.0.1:3890 --ldif dir.ldif \
//!         --context root= --context att="dc=att, dc=com" \
//!         [--secondary att2="dc=att, dc=com"] \
//!         [--workers 4] [--eval-threads 4] \
//!         [--max-frame 16777216] [--timeout-ms 30000]
//! ```
//!
//! With no `--context`, a single server named `root` owning the whole
//! namespace is assumed. The daemon runs until killed or until a client
//! sends a Shutdown frame (`ndquery ADDR --shutdown`).

use netdir_journal::{JournalStore, MutationBatch};
use netdir_model::{ldif, Directory, Dn};
use netdir_obs::{Clock, MetricsRegistry, MonotonicClock};
use netdir_query::{parse_query, Planner};
use netdir_server::metrics as bridge;
use netdir_server::{
    AdmissionConfig, AdmissionController, Cluster, ClusterBuilder, ConsistencyMode, EnumCap,
    RateLimit,
};
use netdir_wire::{
    encode_entries, ServerOptions, WireRequest, WireResponse, WireServer, WireService,
};
use std::process::exit;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Serve a whole in-process cluster behind one listener. The daemon
/// presents itself as its first declared server: atomic and full
/// queries are evaluated "as posed to" that server (or to `home` when a
/// Query frame names one).
///
/// The read side (the cluster) is an immutable structure swapped
/// wholesale behind a lock: queries clone the `Arc` and keep evaluating
/// against their generation even while a mutation builds the next one.
/// The write side is the journal — every `Mutate` frame validates and
/// durably logs its batch there before the cluster is rebuilt from the
/// updated directory mirror.
struct ClusterService {
    cluster: RwLock<Arc<Cluster>>,
    /// The live write path: WAL, mirror, incremental indexes.
    journal: JournalStore,
    /// Cluster shape, kept to rebuild after a mutation:
    /// (name, context DN, is_secondary).
    contexts: Vec<(String, Dn, bool)>,
    eval_threads: usize,
    /// Where the WAL image persists between runs, if anywhere.
    wal_path: Option<String>,
    /// Daemon-wide metrics, served by `Stats` frames.
    metrics: MetricsRegistry,
    /// Time source for query-latency metrics.
    clock: Arc<dyn Clock>,
    /// Cost-based planner (`--planner`), shared across cluster rebuilds
    /// so its stats catalog survives mutations.
    planner: Option<Arc<Planner>>,
}

impl WireService for ClusterService {
    fn handle(&self, req: WireRequest) -> WireResponse {
        match req {
            WireRequest::Ping | WireRequest::Shutdown => WireResponse::Pong,
            WireRequest::Atomic { base, scope, filter } => {
                let cluster = self.cluster();
                let pager = netdir_pager::default_pager();
                match cluster.router().atomic(0, &pager, &base, scope, &filter) {
                    Ok(entries) => WireResponse::Entries(encode_entries(&entries)),
                    Err(e) => WireResponse::Error(e.to_string()),
                }
            }
            WireRequest::Ldap { base, scope, filter } => {
                let cluster = self.cluster();
                let Some(group) = cluster.delegation().owner_group_of(&base) else {
                    return WireResponse::Error(format!("no server manages {base}"));
                };
                let Some(&owner) = group.iter().find(|&&id| !cluster.is_down(id))
                else {
                    return WireResponse::Error(format!("no live server for {base}"));
                };
                match cluster.node(owner).ldap(&base, scope, &filter) {
                    Ok(entries) => WireResponse::Entries(encode_entries(&entries)),
                    Err(e) => WireResponse::Error(e),
                }
            }
            WireRequest::Query { home, text } => {
                self.distributed(home, text, ConsistencyMode::Strict)
            }
            WireRequest::QueryPartial { home, text } => {
                self.distributed(home, text, ConsistencyMode::Partial)
            }
            WireRequest::QueryAnalyze { home, text } => self.analyzed(home, text),
            WireRequest::Stats => self.stats(),
            WireRequest::Mutate { batch } => self.mutate(batch),
        }
    }
}

impl ClusterService {
    /// The current read-side generation.
    fn cluster(&self) -> Arc<Cluster> {
        self.cluster
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The server a frame with an empty `home` is posed to.
    fn default_home(&self, cluster: &Cluster, home: String) -> String {
        if home.is_empty() {
            cluster.node(0).config.name.clone()
        } else {
            home
        }
    }

    /// Apply one batch: journal first (validate → WAL → apply →
    /// publish), then rebuild the read-side cluster from the updated
    /// mirror and swap it in. In-flight queries finish on the old
    /// generation; the next query sees the mutation.
    fn mutate(&self, batch: MutationBatch) -> WireResponse {
        let outcome = match self.journal.apply(&batch) {
            Ok(o) => o,
            Err(e) => return WireResponse::Error(e.to_string()),
        };
        if let Some(path) = &self.wal_path {
            match self.journal.wal_bytes() {
                Ok(bytes) => {
                    if let Err(e) = std::fs::write(path, bytes) {
                        eprintln!("netdird: warning: cannot persist WAL to {path}: {e}");
                    }
                }
                Err(e) => eprintln!("netdird: warning: cannot snapshot WAL: {e}"),
            }
        }
        let rebuilt = self.journal.with_directory(|dir| {
            let mut b = ClusterBuilder::new().eval_threads(self.eval_threads);
            if let Some(p) = &self.planner {
                b = b.planner(p.clone());
            }
            for (name, dn, secondary) in &self.contexts {
                b = if *secondary {
                    b.secondary(name.clone(), dn.clone())
                } else {
                    b.server(name.clone(), dn.clone())
                };
            }
            b.build(dir)
        });
        // Cached plans were chosen against the old generation's list
        // sizes; drop them (the catalog itself survives and re-converges).
        if let Some(p) = &self.planner {
            p.bump_epoch();
        }
        *self.cluster.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(rebuilt);
        WireResponse::Mutated {
            epoch: outcome.epoch,
            mutations: outcome.mutations as u32,
        }
    }

    /// Feed one finished query into the daemon metrics (each query runs
    /// on a fresh scratch pager, so its whole ledger is this query's).
    fn observe_query(&self, pager: &netdir_pager::Pager, elapsed_nanos: u64) {
        let io = pager.io();
        bridge::absorb_io(&self.metrics, io);
        bridge::absorb_pool(&self.metrics, pager.pool().metrics());
        bridge::record_query(&self.metrics, elapsed_nanos, io.total());
    }

    /// Full distributed query under `mode`. Partial outcomes with
    /// nothing skipped answer as plain `Entries`, so a healthy daemon's
    /// responses are identical in both modes.
    fn distributed(&self, home: String, text: String, mode: ConsistencyMode) -> WireResponse {
        let cluster = self.cluster();
        let home = self.default_home(&cluster, home);
        let query = match parse_query(&text) {
            Ok(q) => q,
            Err(e) => return WireResponse::Error(format!("bad query: {e}")),
        };
        let pager = netdir_pager::default_pager();
        let started = self.clock.now();
        match cluster.query_from_with(&home, &pager, &query, mode) {
            Ok(outcome) => {
                let elapsed = u64::try_from(
                    self.clock.now().saturating_sub(started).as_nanos(),
                )
                .unwrap_or(u64::MAX);
                self.observe_query(&pager, elapsed);
                if outcome.is_complete() {
                    WireResponse::Entries(encode_entries(&outcome.entries))
                } else {
                    WireResponse::Partial {
                        entries: encode_entries(&outcome.entries),
                        skipped: outcome.partial,
                    }
                }
            }
            Err(e) => WireResponse::Error(e.to_string()),
        }
    }

    /// Full strict query plus its per-operator trace.
    fn analyzed(&self, home: String, text: String) -> WireResponse {
        let cluster = self.cluster();
        let home = self.default_home(&cluster, home);
        let query = match parse_query(&text) {
            Ok(q) => q,
            Err(e) => return WireResponse::Error(format!("bad query: {e}")),
        };
        let pager = netdir_pager::default_pager();
        match cluster.query_analyzed_from(&home, &pager, &query, ConsistencyMode::Strict)
        {
            Ok((outcome, trace)) => {
                self.observe_query(&pager, trace.elapsed_nanos);
                WireResponse::Analyzed {
                    entries: encode_entries(&outcome.entries),
                    trace,
                }
            }
            Err(e) => WireResponse::Error(e.to_string()),
        }
    }

    /// Refresh the registry from every subsystem and render the
    /// Prometheus exposition.
    fn stats(&self) -> WireResponse {
        let cluster = self.cluster();
        let router = cluster.router();
        bridge::sync_net(&self.metrics, router.net().snapshot());
        bridge::sync_retry(&self.metrics, router.retry_stats().snapshot());
        bridge::sync_health(&self.metrics, router.health().transitions());
        if let Some(p) = &self.planner {
            bridge::sync_planner(&self.metrics, p.snapshot());
        }
        self.journal.sync_metrics(&self.metrics);
        WireResponse::Stats(self.metrics.render_prometheus())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netdird --listen ADDR [--ldif FILE] [--wal FILE] [--context NAME=DN]... \\\n\
         \x20              [--secondary NAME=DN]... [--workers N] \\\n\
         \x20              [--eval-threads N] [--planner] [--max-frame BYTES] [--timeout-ms MS] \\\n\
         \x20              [--max-inflight N] [--max-pending N] [--request-deadline-ms MS] \\\n\
         \x20              [--rate-limit PER_SEC[:BURST]] [--enum-cap ENTRIES[:WINDOW_MS]]\n\
         \n\
         Serves the netdir frame protocol over TCP. With no --context, one\n\
         server named `root` owns the whole namespace. With no --ldif, an\n\
         empty directory is served. With --wal, committed mutation batches\n\
         persist to FILE and replay over the seed LDIF on the next start\n\
         (keep the same --ldif across restarts).\n\
         \n\
         --planner enables the cost-based plan optimizer: queries are\n\
         rewritten to cheaper byte-identical plans using list-size\n\
         statistics observed from earlier queries, and repeated query\n\
         shapes replay cached plans (the planner series in --stats).\n\
         \n\
         Overload policy (all off by default): --max-inflight caps requests\n\
         executing at once, --max-pending caps connections queued for a\n\
         worker, --request-deadline-ms bounds one request's execution,\n\
         --rate-limit token-buckets each client address, and --enum-cap\n\
         bounds entries shipped per client per window. Work past a limit is\n\
         shed with a fast Busy frame instead of queueing without bound."
    );
    exit(2)
}

/// Parse `A[:B]` where both halves are integers; `B` is `None` when the
/// spec only gives `A` (each flag picks its own default).
fn parse_pair(flag: &str, spec: &str) -> (u64, Option<u64>) {
    let parsed = match spec.split_once(':') {
        Some((a, b)) => a.parse().ok().zip(b.parse().ok()).map(|(a, b)| (a, Some(b))),
        None => spec.parse().ok().map(|a| (a, None)),
    };
    parsed.unwrap_or_else(|| {
        eprintln!("netdird: {flag} wants N or N:M, got {spec:?}");
        exit(2)
    })
}

fn parse_name_dn(spec: &str) -> (String, Dn) {
    let Some((name, dn_text)) = spec.split_once('=') else {
        eprintln!("netdird: --context/--secondary wants NAME=DN, got {spec:?}");
        exit(2)
    };
    match Dn::parse(dn_text) {
        Ok(dn) => (name.to_string(), dn),
        Err(e) => {
            eprintln!("netdird: bad context DN {dn_text:?}: {e}");
            exit(2)
        }
    }
}

fn main() {
    let mut listen: Option<String> = None;
    let mut ldif_path: Option<String> = None;
    let mut wal_path: Option<String> = None;
    let mut contexts: Vec<(String, Dn, bool)> = Vec::new();
    let mut opts = ServerOptions::default();
    let mut eval_threads: usize = 1;
    let mut use_planner = false;
    let mut admission = AdmissionConfig::default();
    let mut any_admission_flag = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("netdird: {flag} needs a value");
                exit(2)
            })
        };
        match arg.as_str() {
            "--listen" => listen = Some(value("--listen")),
            "--ldif" => ldif_path = Some(value("--ldif")),
            "--wal" => wal_path = Some(value("--wal")),
            "--context" => {
                let (name, dn) = parse_name_dn(&value("--context"));
                contexts.push((name, dn, false));
            }
            "--secondary" => {
                let (name, dn) = parse_name_dn(&value("--secondary"));
                contexts.push((name, dn, true));
            }
            "--workers" => {
                opts.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--eval-threads" => {
                eval_threads = value("--eval-threads").parse().unwrap_or_else(|_| usage())
            }
            "--planner" => use_planner = true,
            "--max-frame" => {
                opts.max_frame = value("--max-frame").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms").parse().unwrap_or_else(|_| usage());
                let t = Some(Duration::from_millis(ms));
                opts.read_timeout = t;
                opts.write_timeout = t;
            }
            "--max-inflight" => {
                admission.max_inflight =
                    value("--max-inflight").parse().unwrap_or_else(|_| usage());
                any_admission_flag = true;
            }
            "--max-pending" => {
                opts.max_pending = value("--max-pending").parse().unwrap_or_else(|_| usage())
            }
            "--request-deadline-ms" => {
                let ms: u64 = value("--request-deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opts.request_deadline = Some(Duration::from_millis(ms));
            }
            "--rate-limit" => {
                let spec = value("--rate-limit");
                let (per_sec, burst) = parse_pair("--rate-limit", &spec);
                admission.rate = Some(RateLimit {
                    per_sec: per_sec.try_into().unwrap_or_else(|_| usage()),
                    // Default burst: one second's worth of tokens.
                    burst: burst.unwrap_or(per_sec).try_into().unwrap_or_else(|_| usage()),
                });
                any_admission_flag = true;
            }
            "--enum-cap" => {
                let spec = value("--enum-cap");
                let (max_entries, window_ms) = parse_pair("--enum-cap", &spec);
                admission.enumeration = Some(EnumCap {
                    max_entries,
                    window: Duration::from_millis(window_ms.unwrap_or(1_000)),
                });
                any_admission_flag = true;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("netdird: unknown argument {other:?}");
                usage()
            }
        }
    }
    let Some(listen) = listen else { usage() };
    if contexts.is_empty() {
        contexts.push(("root".into(), Dn::root(), false));
    }

    let dir = match &ldif_path {
        None => Directory::new(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("netdird: cannot read {path}: {e}");
                exit(1)
            });
            ldif::directory_from_ldif(&text).unwrap_or_else(|e| {
                eprintln!("netdird: bad LDIF in {path}: {e}");
                exit(1)
            })
        }
    };

    // The journal owns the live state: seed it with the LDIF directory
    // and, when a WAL file is present, replay its committed prefix over
    // the seed before serving a single query.
    let journal_pager = netdir_pager::default_pager();
    let journal = match &wal_path {
        Some(path) if std::path::Path::new(path).exists() => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("netdird: cannot read WAL {path}: {e}");
                exit(1)
            });
            match JournalStore::open_from_wal_bytes(
                &journal_pager,
                dir,
                &bytes,
                journal_pager.page_size(),
            ) {
                Ok((store, report)) => {
                    println!(
                        "netdird: replayed {} batches ({} mutations) from {path} in {}us{}",
                        report.batches,
                        report.mutations,
                        report.replay_us,
                        if report.truncated_bytes > 0 {
                            format!(" ({} torn bytes discarded)", report.truncated_bytes)
                        } else {
                            String::new()
                        }
                    );
                    store
                }
                Err(e) => {
                    eprintln!("netdird: bad WAL {path}: {e}");
                    exit(1)
                }
            }
        }
        _ => JournalStore::create(&journal_pager, dir).unwrap_or_else(|e| {
            eprintln!("netdird: cannot initialise journal: {e}");
            exit(1)
        }),
    };

    let planner = use_planner.then(|| Arc::new(Planner::new()));
    let cluster = journal.with_directory(|d| {
        let mut builder = ClusterBuilder::new().eval_threads(eval_threads);
        if let Some(p) = &planner {
            builder = builder.planner(p.clone());
        }
        for (name, dn, secondary) in &contexts {
            builder = if *secondary {
                builder.secondary(name.clone(), dn.clone())
            } else {
                builder.server(name.clone(), dn.clone())
            };
        }
        builder.build(d)
    });
    let num_entries: usize = (0..cluster.num_servers())
        .map(|id| cluster.node(id).num_entries)
        .sum();
    if cluster.orphaned() > 0 {
        eprintln!(
            "netdird: warning: {} entries matched no declared context and were dropped",
            cluster.orphaned()
        );
    }

    let metrics = MetricsRegistry::default();
    bridge::register_all(&metrics);
    // Always build the controller on the daemon registry (even with no
    // limit configured) so admission/deadline accounting shows up in
    // `ndquery --stats`; with the default config it never rejects.
    opts.admission = Some(Arc::new(AdmissionController::new(
        admission,
        Arc::new(netdir_obs::MonotonicClock::new()),
        &metrics,
    )));
    if any_admission_flag || opts.request_deadline.is_some() {
        let cfg = opts.admission.as_ref().unwrap().config();
        println!(
            "netdird: overload policy: max_inflight={} max_pending={} deadline={:?} rate={:?} enum={:?}",
            cfg.max_inflight, opts.max_pending, opts.request_deadline, cfg.rate, cfg.enumeration
        );
    }
    let service = Arc::new(ClusterService {
        cluster: RwLock::new(Arc::new(cluster)),
        journal,
        contexts,
        eval_threads,
        wal_path,
        metrics,
        clock: Arc::new(MonotonicClock::new()),
        planner,
    });
    let mut server = match WireServer::bind(listen.as_str(), service, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("netdird: cannot listen on {listen}: {e}");
            exit(1)
        }
    };
    println!(
        "netdird: serving {num_entries} entries on {}",
        server.local_addr()
    );
    server.join();
    println!("netdird: shut down");
}
