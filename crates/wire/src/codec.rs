//! Frame payload encoding: requests and responses.
//!
//! The codec reuses the repository's existing building blocks rather
//! than inventing parallel ones:
//!
//! * DNs travel as their canonical text — `Dn`'s `Display → parse` is an
//!   identity (property-tested in netdir-model), so text is unambiguous
//!   and diffable on the wire.
//! * Filters travel **structurally** (one tag byte per variant).
//!   `AtomicFilter`'s `Display` is deliberately *not* parse-stable
//!   (`True` renders as `objectClass=*`, `DnEq` as `Eq`), so text would
//!   silently change filter semantics in transit.
//! * Full L0–L3 queries travel as query text: both ends run the same
//!   parser, so a query means the same thing shipped as it meant typed.
//! * Entries travel in their on-page [`Record`] encoding — byte-identical
//!   to what the in-process channel transport ships, which is what lets
//!   the integration tests assert TCP and in-process results match byte
//!   for byte.
//!
//! Primitive fields use the pager's little-endian record codec
//! ([`netdir_pager::record::codec`]); the frame length prefix
//! ([`crate::frame`]) is the only big-endian piece of the protocol.

use bytes::Bytes;
use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, CompositeFilter, Scope, SubstringPattern};
use netdir_journal::MutationBatch;
use netdir_model::{AttrName, Dn};
use netdir_obs::{OperatorSpan, QueryTrace};
use netdir_pager::record::codec::{put_i64, put_str, put_u32, Reader};
use netdir_pager::record::Record;
use netdir_pager::{PagerError, PagerResult};
use netdir_server::PartitionError;

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Liveness probe.
    Ping,
    /// Evaluate an atomic query against the receiving server.
    Atomic {
        /// Base DN.
        base: Dn,
        /// Scope.
        scope: Scope,
        /// Filter.
        filter: AtomicFilter,
    },
    /// Evaluate a baseline LDAP query against the receiving server.
    Ldap {
        /// Base DN.
        base: Dn,
        /// Scope.
        scope: Scope,
        /// Composite filter.
        filter: CompositeFilter,
    },
    /// Evaluate a full L0–L3 query, distributed-style, as posed to the
    /// server named `home` (empty = the receiving server).
    Query {
        /// Name of the server the query is posed to.
        home: String,
        /// Query text (parsed by `netdir_query::parse_query` remotely).
        text: String,
    },
    /// Ask the daemon to shut down gracefully after acknowledging.
    Shutdown,
    /// Like `Query`, but under `ConsistencyMode::Partial`: unreachable
    /// zones are skipped and reported instead of failing the query.
    /// A separate tag (never emitted by strict-mode callers) keeps
    /// pre-fault-model traffic byte-identical on the wire.
    QueryPartial {
        /// Name of the server the query is posed to.
        home: String,
        /// Query text (parsed by `netdir_query::parse_query` remotely).
        text: String,
    },
    /// Ask for the daemon's metrics in Prometheus exposition format.
    /// A new tag beyond the legacy range: version tolerance means a
    /// pre-observability peer answers with an "unknown request tag"
    /// error rather than misparsing, and strict query traffic is
    /// untouched.
    Stats,
    /// Like `Query`, but the response also carries a per-operator
    /// [`QueryTrace`] — `EXPLAIN ANALYZE` over the wire.
    QueryAnalyze {
        /// Name of the server the query is posed to.
        home: String,
        /// Query text (parsed by `netdir_query::parse_query` remotely).
        text: String,
    },
    /// Apply a mutation batch atomically against the receiving daemon's
    /// journal. Another tag beyond the legacy range: read-only peers
    /// answer "unknown request tag" rather than misparsing, and
    /// read-only traffic stays byte-identical.
    Mutate {
        /// The batch, applied all-or-nothing.
        batch: MutationBatch,
    },
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Acknowledgement carrying no entries (Ping, Shutdown).
    Pong,
    /// Sorted result entries in their on-page encoding.
    Entries(Vec<Vec<u8>>),
    /// The request failed remotely.
    Error(String),
    /// A degraded (partial) result: the surviving partitions' entries
    /// plus an account of every zone that could not be reached. Only
    /// ever sent in answer to a `QueryPartial` request.
    Partial {
        /// Sorted surviving entries in their on-page encoding.
        entries: Vec<Vec<u8>>,
        /// Zones skipped by graceful degradation.
        skipped: Vec<PartitionError>,
    },
    /// The daemon's metrics in Prometheus exposition format. Only ever
    /// sent in answer to a `Stats` request.
    Stats(String),
    /// A query result plus its per-operator trace. Only ever sent in
    /// answer to a `QueryAnalyze` request.
    Analyzed {
        /// Sorted result entries in their on-page encoding.
        entries: Vec<Vec<u8>>,
        /// The `EXPLAIN ANALYZE` trace of the remote evaluation.
        trace: QueryTrace,
    },
    /// A mutation batch committed. Only ever sent in answer to a
    /// `Mutate` request.
    Mutated {
        /// The journal epoch after the commit.
        epoch: u64,
        /// Mutations applied (the batch length).
        mutations: u32,
    },
    /// The daemon shed this request at admission — queue full, inflight
    /// cap reached, rate limit or anti-enumeration cap hit — without
    /// executing it. A new tag beyond the legacy range: pre-admission
    /// peers never see it, and admitted traffic stays byte-identical.
    /// Retryable after the hinted delay.
    Busy {
        /// Server's backoff hint; clients clamp it to their own policy.
        retry_after_ms: u32,
    },
    /// The request was admitted but its execution deadline expired
    /// before the evaluator finished; the worker was released and the
    /// partial work discarded. Unlike `Busy` this is **not** retryable:
    /// the same request would blow the same budget.
    DeadlineExceeded {
        /// The deadline that was exceeded, as configured on the daemon.
        budget_ms: u32,
    },
}

const REQ_PING: u8 = 0;
const REQ_ATOMIC: u8 = 1;
const REQ_LDAP: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_QUERY_PARTIAL: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_QUERY_ANALYZE: u8 = 7;
const REQ_MUTATE: u8 = 8;

const RESP_PONG: u8 = 0;
const RESP_ENTRIES: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_PARTIAL: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_ANALYZED: u8 = 5;
const RESP_MUTATED: u8 = 6;
const RESP_BUSY: u8 = 7;
const RESP_DEADLINE: u8 = 8;

const AF_PRESENT: u8 = 0;
const AF_EQ: u8 = 1;
const AF_SUBSTRING: u8 = 2;
const AF_INTCMP: u8 = 3;
const AF_DNEQ: u8 = 4;
const AF_TRUE: u8 = 5;
const AF_FALSE: u8 = 6;

const CF_ATOMIC: u8 = 0;
const CF_AND: u8 = 1;
const CF_OR: u8 = 2;
const CF_NOT: u8 = 3;

fn corrupt(detail: impl Into<String>) -> PagerError {
    PagerError::CorruptRecord {
        detail: detail.into(),
    }
}

fn put_scope(out: &mut Vec<u8>, scope: Scope) {
    out.push(match scope {
        Scope::Base => 0,
        Scope::One => 1,
        Scope::Sub => 2,
    });
}

fn get_scope(r: &mut Reader<'_>) -> PagerResult<Scope> {
    match r.get_u8()? {
        0 => Ok(Scope::Base),
        1 => Ok(Scope::One),
        2 => Ok(Scope::Sub),
        t => Err(corrupt(format!("unknown scope tag {t}"))),
    }
}

fn put_dn(out: &mut Vec<u8>, dn: &Dn) {
    put_str(out, &dn.to_string());
}

fn get_dn(r: &mut Reader<'_>) -> PagerResult<Dn> {
    let s = r.get_str()?;
    Dn::parse(s).map_err(|e| corrupt(format!("bad DN on wire: {e}")))
}

fn put_opt_str(out: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn get_opt_str(r: &mut Reader<'_>) -> PagerResult<Option<String>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_str()?.to_string())),
        t => Err(corrupt(format!("bad option tag {t}"))),
    }
}

fn put_int_op(out: &mut Vec<u8>, op: IntOp) {
    out.push(match op {
        IntOp::Lt => 0,
        IntOp::Le => 1,
        IntOp::Gt => 2,
        IntOp::Ge => 3,
        IntOp::Eq => 4,
    });
}

fn get_int_op(r: &mut Reader<'_>) -> PagerResult<IntOp> {
    match r.get_u8()? {
        0 => Ok(IntOp::Lt),
        1 => Ok(IntOp::Le),
        2 => Ok(IntOp::Gt),
        3 => Ok(IntOp::Ge),
        4 => Ok(IntOp::Eq),
        t => Err(corrupt(format!("unknown int-op tag {t}"))),
    }
}

/// Append the structural encoding of an atomic filter.
pub fn put_atomic_filter(out: &mut Vec<u8>, f: &AtomicFilter) {
    match f {
        AtomicFilter::Present(a) => {
            out.push(AF_PRESENT);
            put_str(out, a.as_str());
        }
        AtomicFilter::Eq(a, v) => {
            out.push(AF_EQ);
            put_str(out, a.as_str());
            put_str(out, v);
        }
        AtomicFilter::Substring(a, pat) => {
            out.push(AF_SUBSTRING);
            put_str(out, a.as_str());
            put_opt_str(out, &pat.initial);
            put_u32(out, pat.any.len() as u32);
            for frag in &pat.any {
                put_str(out, frag);
            }
            put_opt_str(out, &pat.final_);
        }
        AtomicFilter::IntCmp(a, op, v) => {
            out.push(AF_INTCMP);
            put_str(out, a.as_str());
            put_int_op(out, *op);
            put_i64(out, *v);
        }
        AtomicFilter::DnEq(a, dn) => {
            out.push(AF_DNEQ);
            put_str(out, a.as_str());
            put_dn(out, dn);
        }
        AtomicFilter::True => out.push(AF_TRUE),
        AtomicFilter::False => out.push(AF_FALSE),
    }
}

/// Decode one structurally-encoded atomic filter.
pub fn get_atomic_filter(r: &mut Reader<'_>) -> PagerResult<AtomicFilter> {
    match r.get_u8()? {
        AF_PRESENT => Ok(AtomicFilter::Present(AttrName::new(r.get_str()?))),
        AF_EQ => {
            let a = AttrName::new(r.get_str()?);
            let v = r.get_str()?.to_string();
            Ok(AtomicFilter::Eq(a, v))
        }
        AF_SUBSTRING => {
            let a = AttrName::new(r.get_str()?);
            let initial = get_opt_str(r)?;
            let n = r.get_u32()? as usize;
            let mut any = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                any.push(r.get_str()?.to_string());
            }
            let final_ = get_opt_str(r)?;
            Ok(AtomicFilter::Substring(
                a,
                SubstringPattern { initial, any, final_ },
            ))
        }
        AF_INTCMP => {
            let a = AttrName::new(r.get_str()?);
            let op = get_int_op(r)?;
            let v = r.get_i64()?;
            Ok(AtomicFilter::IntCmp(a, op, v))
        }
        AF_DNEQ => {
            let a = AttrName::new(r.get_str()?);
            let dn = get_dn(r)?;
            Ok(AtomicFilter::DnEq(a, dn))
        }
        AF_TRUE => Ok(AtomicFilter::True),
        AF_FALSE => Ok(AtomicFilter::False),
        t => Err(corrupt(format!("unknown atomic-filter tag {t}"))),
    }
}

/// Append the structural encoding of a composite (LDAP) filter.
pub fn put_composite_filter(out: &mut Vec<u8>, f: &CompositeFilter) {
    match f {
        CompositeFilter::Atomic(a) => {
            out.push(CF_ATOMIC);
            put_atomic_filter(out, a);
        }
        CompositeFilter::And(fs) => {
            out.push(CF_AND);
            put_u32(out, fs.len() as u32);
            for f in fs {
                put_composite_filter(out, f);
            }
        }
        CompositeFilter::Or(fs) => {
            out.push(CF_OR);
            put_u32(out, fs.len() as u32);
            for f in fs {
                put_composite_filter(out, f);
            }
        }
        CompositeFilter::Not(f) => {
            out.push(CF_NOT);
            put_composite_filter(out, f);
        }
    }
}

/// Decode one structurally-encoded composite filter.
pub fn get_composite_filter(r: &mut Reader<'_>) -> PagerResult<CompositeFilter> {
    // Depth is naturally bounded: every nesting level consumes at least
    // one payload byte and payloads are frame-capped.
    match r.get_u8()? {
        CF_ATOMIC => Ok(CompositeFilter::Atomic(get_atomic_filter(r)?)),
        CF_AND => {
            let n = r.get_u32()? as usize;
            let mut fs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fs.push(get_composite_filter(r)?);
            }
            Ok(CompositeFilter::And(fs))
        }
        CF_OR => {
            let n = r.get_u32()? as usize;
            let mut fs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fs.push(get_composite_filter(r)?);
            }
            Ok(CompositeFilter::Or(fs))
        }
        CF_NOT => Ok(CompositeFilter::Not(Box::new(get_composite_filter(r)?))),
        t => Err(corrupt(format!("unknown composite-filter tag {t}"))),
    }
}

fn put_partition_error(out: &mut Vec<u8>, p: &PartitionError) {
    put_dn(out, &p.zone);
    put_u32(out, p.servers.len() as u32);
    for &id in &p.servers {
        put_u32(out, id as u32);
    }
    put_str(out, &p.detail);
}

fn get_partition_error(r: &mut Reader<'_>) -> PagerResult<PartitionError> {
    let zone = get_dn(r)?;
    let n = r.get_u32()? as usize;
    let mut servers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        servers.push(r.get_u32()? as usize);
    }
    let detail = r.get_str()?.to_string();
    Ok(PartitionError {
        zone,
        servers,
        detail,
    })
}

// Unsigned and floating-point fields ride the record codec's i64 slot:
// u64 through a lossless bit-cast, f64 through its IEEE-754 bits. Both
// directions are exact, so traces survive the wire unchanged.

fn put_u64(out: &mut Vec<u8>, v: u64) {
    put_i64(out, v as i64);
}

fn get_u64(r: &mut Reader<'_>) -> PagerResult<u64> {
    Ok(r.get_i64()? as u64)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_i64(out, v.to_bits() as i64);
}

fn get_f64(r: &mut Reader<'_>) -> PagerResult<f64> {
    Ok(f64::from_bits(r.get_i64()? as u64))
}

fn put_trace(out: &mut Vec<u8>, t: &QueryTrace) {
    put_str(out, &t.query);
    put_u32(out, t.spans.len() as u32);
    for s in &t.spans {
        put_str(out, &s.node);
        put_u32(out, s.depth);
        put_u64(out, s.entries_in);
        put_u64(out, s.entries_out);
        put_u64(out, s.pages_out);
        put_u64(out, s.reads);
        put_u64(out, s.writes);
        put_u64(out, s.elapsed_nanos);
        put_f64(out, s.predicted_io);
    }
    put_f64(out, t.predicted_io);
    put_u64(out, t.observed_io);
    put_u64(out, t.elapsed_nanos);
}

fn get_trace(r: &mut Reader<'_>) -> PagerResult<QueryTrace> {
    let query = r.get_str()?.to_string();
    let n = r.get_u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let node = r.get_str()?.to_string();
        let depth = r.get_u32()?;
        spans.push(OperatorSpan {
            node,
            depth,
            entries_in: get_u64(r)?,
            entries_out: get_u64(r)?,
            pages_out: get_u64(r)?,
            reads: get_u64(r)?,
            writes: get_u64(r)?,
            elapsed_nanos: get_u64(r)?,
            predicted_io: get_f64(r)?,
        });
    }
    Ok(QueryTrace {
        query,
        spans,
        predicted_io: get_f64(r)?,
        observed_io: get_u64(r)?,
        elapsed_nanos: get_u64(r)?,
    })
}

fn put_encoded_entries(out: &mut Vec<u8>, entries: &[Vec<u8>]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        put_u32(out, e.len() as u32);
        out.extend_from_slice(e);
    }
}

fn get_encoded_entries(r: &mut Reader<'_>) -> PagerResult<Vec<Vec<u8>>> {
    let n = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        entries.push(r.get_bytes()?.to_vec());
    }
    Ok(entries)
}

impl WireRequest {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            WireRequest::Ping => out.push(REQ_PING),
            WireRequest::Atomic { base, scope, filter } => {
                out.push(REQ_ATOMIC);
                put_dn(&mut out, base);
                put_scope(&mut out, *scope);
                put_atomic_filter(&mut out, filter);
            }
            WireRequest::Ldap { base, scope, filter } => {
                out.push(REQ_LDAP);
                put_dn(&mut out, base);
                put_scope(&mut out, *scope);
                put_composite_filter(&mut out, filter);
            }
            WireRequest::Query { home, text } => {
                out.push(REQ_QUERY);
                put_str(&mut out, home);
                put_str(&mut out, text);
            }
            WireRequest::Shutdown => out.push(REQ_SHUTDOWN),
            WireRequest::QueryPartial { home, text } => {
                out.push(REQ_QUERY_PARTIAL);
                put_str(&mut out, home);
                put_str(&mut out, text);
            }
            WireRequest::Stats => out.push(REQ_STATS),
            WireRequest::QueryAnalyze { home, text } => {
                out.push(REQ_QUERY_ANALYZE);
                put_str(&mut out, home);
                put_str(&mut out, text);
            }
            WireRequest::Mutate { batch } => {
                out.push(REQ_MUTATE);
                // The batch's Record encoding, length-framed — the same
                // bytes the journal logs to its WAL.
                let mut body = Vec::new();
                batch.encode(&mut body);
                put_u32(&mut out, body.len() as u32);
                out.extend_from_slice(&body);
            }
        }
        Bytes::from(out)
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> PagerResult<WireRequest> {
        let mut r = Reader::new(payload);
        let req = match r.get_u8()? {
            REQ_PING => WireRequest::Ping,
            REQ_ATOMIC => {
                let base = get_dn(&mut r)?;
                let scope = get_scope(&mut r)?;
                let filter = get_atomic_filter(&mut r)?;
                WireRequest::Atomic { base, scope, filter }
            }
            REQ_LDAP => {
                let base = get_dn(&mut r)?;
                let scope = get_scope(&mut r)?;
                let filter = get_composite_filter(&mut r)?;
                WireRequest::Ldap { base, scope, filter }
            }
            REQ_QUERY => {
                let home = r.get_str()?.to_string();
                let text = r.get_str()?.to_string();
                WireRequest::Query { home, text }
            }
            REQ_SHUTDOWN => WireRequest::Shutdown,
            REQ_QUERY_PARTIAL => {
                let home = r.get_str()?.to_string();
                let text = r.get_str()?.to_string();
                WireRequest::QueryPartial { home, text }
            }
            REQ_STATS => WireRequest::Stats,
            REQ_QUERY_ANALYZE => {
                let home = r.get_str()?.to_string();
                let text = r.get_str()?.to_string();
                WireRequest::QueryAnalyze { home, text }
            }
            REQ_MUTATE => {
                let batch = MutationBatch::decode(r.get_bytes()?)?;
                WireRequest::Mutate { batch }
            }
            t => return Err(corrupt(format!("unknown request tag {t}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl WireResponse {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            WireResponse::Pong => out.push(RESP_PONG),
            WireResponse::Entries(entries) => {
                out.push(RESP_ENTRIES);
                put_encoded_entries(&mut out, entries);
            }
            WireResponse::Error(msg) => {
                out.push(RESP_ERROR);
                put_str(&mut out, msg);
            }
            WireResponse::Partial { entries, skipped } => {
                out.push(RESP_PARTIAL);
                put_encoded_entries(&mut out, entries);
                put_u32(&mut out, skipped.len() as u32);
                for p in skipped {
                    put_partition_error(&mut out, p);
                }
            }
            WireResponse::Stats(text) => {
                out.push(RESP_STATS);
                put_str(&mut out, text);
            }
            WireResponse::Analyzed { entries, trace } => {
                out.push(RESP_ANALYZED);
                put_encoded_entries(&mut out, entries);
                put_trace(&mut out, trace);
            }
            WireResponse::Mutated { epoch, mutations } => {
                out.push(RESP_MUTATED);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, *mutations);
            }
            WireResponse::Busy { retry_after_ms } => {
                out.push(RESP_BUSY);
                put_u32(&mut out, *retry_after_ms);
            }
            WireResponse::DeadlineExceeded { budget_ms } => {
                out.push(RESP_DEADLINE);
                put_u32(&mut out, *budget_ms);
            }
        }
        Bytes::from(out)
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> PagerResult<WireResponse> {
        let mut r = Reader::new(payload);
        let resp = match r.get_u8()? {
            RESP_PONG => WireResponse::Pong,
            RESP_ENTRIES => WireResponse::Entries(get_encoded_entries(&mut r)?),
            RESP_ERROR => WireResponse::Error(r.get_str()?.to_string()),
            RESP_PARTIAL => {
                let entries = get_encoded_entries(&mut r)?;
                let n = r.get_u32()? as usize;
                let mut skipped = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    skipped.push(get_partition_error(&mut r)?);
                }
                WireResponse::Partial { entries, skipped }
            }
            RESP_STATS => WireResponse::Stats(r.get_str()?.to_string()),
            RESP_ANALYZED => {
                let entries = get_encoded_entries(&mut r)?;
                let trace = get_trace(&mut r)?;
                WireResponse::Analyzed { entries, trace }
            }
            RESP_MUTATED => {
                let epoch = get_u64(&mut r)?;
                let mutations = r.get_u32()?;
                WireResponse::Mutated { epoch, mutations }
            }
            RESP_BUSY => WireResponse::Busy {
                retry_after_ms: r.get_u32()?,
            },
            RESP_DEADLINE => WireResponse::DeadlineExceeded {
                budget_ms: r.get_u32()?,
            },
            t => return Err(corrupt(format!("unknown response tag {t}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::record::Record;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn round_trip_req(req: WireRequest) {
        let bytes = req.encode();
        let back = WireRequest::decode(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(WireRequest::Ping);
        round_trip_req(WireRequest::Shutdown);
        round_trip_req(WireRequest::Stats);
        round_trip_req(WireRequest::Query {
            home: "att".into(),
            text: "(dc=com ? sub ? surName=jagadish)".into(),
        });
        round_trip_req(WireRequest::QueryPartial {
            home: "att".into(),
            text: "(dc=com ? sub ? surName=jagadish)".into(),
        });
        round_trip_req(WireRequest::QueryAnalyze {
            home: "att".into(),
            text: "(dc=com ? sub ? surName=jagadish)".into(),
        });
        for filter in [
            AtomicFilter::True,
            AtomicFilter::present("mail"),
            AtomicFilter::eq("surName", "Ume*da"), // literal star must survive
            AtomicFilter::Substring(
                AttrName::new("cn"),
                SubstringPattern::new(Some("ha"), &["ga", "d"], None),
            ),
            AtomicFilter::IntCmp(AttrName::new("priority"), IntOp::Ge, -7),
            AtomicFilter::DnEq(AttrName::new("manager"), dn("uid=j, dc=com")),
        ] {
            round_trip_req(WireRequest::Atomic {
                base: dn("ou=people, dc=att, dc=com"),
                scope: Scope::Sub,
                filter,
            });
        }
        round_trip_req(WireRequest::Ldap {
            base: dn("dc=com"),
            scope: Scope::One,
            filter: netdir_filter::parse_composite(
                "(&(objectClass=person)(|(cn=ha*sh)(!(priority>=3))))",
            )
            .unwrap(),
        });
    }

    #[test]
    fn mutate_round_trips() {
        use netdir_journal::{Mutation, MutationBatch};
        let e = netdir_model::Entry::builder(dn("uid=new, dc=att, dc=com"))
            .class("person")
            .attr("surName", "fresh")
            .attr("priority", 3i64)
            .build()
            .unwrap();
        let batch = MutationBatch::from_mutations(vec![
            Mutation::Add(e),
            Mutation::Modify {
                dn: dn("uid=new, dc=att, dc=com"),
                add: vec![("title".into(), netdir_model::Value::Str("dr".into()))],
                remove: vec![],
                remove_attrs: vec!["priority".into()],
            },
            Mutation::Delete(dn("uid=old, dc=att, dc=com")),
        ]);
        round_trip_req(WireRequest::Mutate { batch });
        round_trip_req(WireRequest::Mutate {
            batch: MutationBatch::new(),
        });
        let resp = WireResponse::Mutated {
            epoch: u64::MAX - 3,
            mutations: 42,
        };
        assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn true_and_dneq_survive_unlike_their_display_forms() {
        // Display renders True as "objectClass=*", which parses back as
        // Present — the structural codec must not fall into that trap.
        let req = WireRequest::Atomic {
            base: Dn::root(),
            scope: Scope::Sub,
            filter: AtomicFilter::True,
        };
        match WireRequest::decode(&req.encode()).unwrap() {
            WireRequest::Atomic {
                filter: AtomicFilter::True,
                ..
            } => {}
            other => panic!("True mangled in transit: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let e = netdir_model::Entry::builder(dn("uid=a, dc=com"))
            .class("person")
            .attr("cn", "Alice")
            .build()
            .unwrap();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        for resp in [
            WireResponse::Pong,
            WireResponse::Error("zone unreachable".into()),
            WireResponse::Entries(vec![]),
            WireResponse::Entries(vec![buf.clone(), vec![1, 2, 3]]),
            WireResponse::Partial {
                entries: vec![buf.clone()],
                skipped: vec![],
            },
            WireResponse::Partial {
                entries: vec![buf.clone(), vec![9, 9]],
                skipped: vec![
                    PartitionError {
                        zone: dn("dc=research, dc=att, dc=com"),
                        servers: vec![2, 5],
                        detail: "server 2: i/o timeout".into(),
                    },
                    PartitionError {
                        zone: dn("dc=org"),
                        servers: vec![3],
                        detail: "no live server".into(),
                    },
                ],
            },
        ] {
            let bytes = resp.encode();
            assert_eq!(WireResponse::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn overload_responses_round_trip() {
        for resp in [
            WireResponse::Busy { retry_after_ms: 0 },
            WireResponse::Busy {
                retry_after_ms: u32::MAX,
            },
            WireResponse::DeadlineExceeded { budget_ms: 0 },
            WireResponse::DeadlineExceeded {
                budget_ms: u32::MAX,
            },
        ] {
            let bytes = resp.encode();
            assert_eq!(WireResponse::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn stats_and_analyzed_responses_round_trip() {
        use netdir_obs::{OperatorSpan, QueryTrace};
        let stats = WireResponse::Stats(
            "# TYPE netdir_queries_total counter\nnetdir_queries_total 7\n".into(),
        );
        assert_eq!(WireResponse::decode(&stats.encode()).unwrap(), stats);
        // A trace with extreme values: f64 must survive bit-exactly,
        // u64 fields must not be mangled by the signed wire slot.
        let analyzed = WireResponse::Analyzed {
            entries: vec![vec![1, 2, 3]],
            trace: QueryTrace {
                query: "(dc=com ? sub ? objectClass=*)".into(),
                spans: vec![OperatorSpan {
                    node: "atomic".into(),
                    depth: 0,
                    entries_in: 0,
                    entries_out: 5,
                    pages_out: 1,
                    reads: u64::MAX,
                    writes: 3,
                    elapsed_nanos: u64::MAX - 1,
                    predicted_io: 0.1 + 0.2, // not exactly representable
                }],
                predicted_io: f64::MAX,
                observed_io: u64::MAX,
                elapsed_nanos: 12_345,
            },
        };
        assert_eq!(WireResponse::decode(&analyzed.encode()).unwrap(), analyzed);
    }

    #[test]
    fn strict_tags_are_unchanged_by_the_fault_model() {
        // Version tolerance: pre-fault-model peers never see the new
        // tags, so strict-mode traffic must stay byte-identical. Pin the
        // first byte of every legacy frame.
        assert_eq!(WireRequest::Ping.encode()[0], 0);
        assert_eq!(WireRequest::Shutdown.encode()[0], 4);
        let q = WireRequest::Query {
            home: "a".into(),
            text: "t".into(),
        };
        assert_eq!(q.encode()[0], 3);
        assert_eq!(WireResponse::Pong.encode()[0], 0);
        assert_eq!(WireResponse::Entries(vec![]).encode()[0], 1);
        assert_eq!(WireResponse::Error("e".into()).encode()[0], 2);
        // The new tags sit beyond the legacy range.
        let qp = WireRequest::QueryPartial {
            home: "a".into(),
            text: "t".into(),
        };
        assert_eq!(qp.encode()[0], 5);
        let p = WireResponse::Partial {
            entries: vec![],
            skipped: vec![],
        };
        assert_eq!(p.encode()[0], 3);
        // Observability tags extend the range again without renumbering.
        assert_eq!(WireRequest::Stats.encode()[0], 6);
        let qa = WireRequest::QueryAnalyze {
            home: "a".into(),
            text: "t".into(),
        };
        assert_eq!(qa.encode()[0], 7);
        assert_eq!(WireResponse::Stats(String::new()).encode()[0], 4);
        // The write path extends the range once more: Mutate/Mutated
        // sit past every read-only tag, so a read-only conversation
        // never produces them and an old peer rejects them cleanly.
        let m = WireRequest::Mutate {
            batch: netdir_journal::MutationBatch::new(),
        };
        assert_eq!(m.encode()[0], 8);
        let md = WireResponse::Mutated {
            epoch: 0,
            mutations: 0,
        };
        assert_eq!(md.encode()[0], 6);
        // The overload responses extend the range yet again: a daemon
        // under no overload never emits them, so pre-admission traffic
        // stays byte-identical, and an old peer rejects them cleanly.
        let b = WireResponse::Busy { retry_after_ms: 50 };
        assert_eq!(b.encode()[0], 7);
        let d = WireResponse::DeadlineExceeded { budget_ms: 100 };
        assert_eq!(d.encode()[0], 8);
        // And the legacy Query payload is byte-identical to its
        // pre-observability encoding: tag, then home and text as
        // length-prefixed strings.
        let q = WireRequest::Query {
            home: "a".into(),
            text: "t".into(),
        };
        let mut legacy = vec![3u8];
        put_str(&mut legacy, "a");
        put_str(&mut legacy, "t");
        assert_eq!(q.encode().to_vec(), legacy);
    }

    #[test]
    fn every_tag_round_trips_and_matches_the_committed_lockfile() {
        use std::collections::BTreeMap;

        // The committed freeze (also enforced statically by ndlint's
        // wire-tag-freeze lint; this test is the dynamic half).
        let lock_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../compat/wire_tags.lock");
        let text = std::fs::read_to_string(lock_path).expect("compat/wire_tags.lock exists");
        let mut locked: BTreeMap<String, u8> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once('=').expect("lock line is `NAME = value`");
            let prev = locked.insert(
                name.trim().to_string(),
                value.trim().parse().expect("tag value fits u8"),
            );
            assert!(prev.is_none(), "duplicate lock entry {}", name.trim());
        }

        // The complete in-code tag table. Adding a constant to the
        // codec without extending this list (and the lockfile) fails
        // the set comparison below.
        let in_code: &[(&str, u8)] = &[
            ("REQ_PING", REQ_PING),
            ("REQ_ATOMIC", REQ_ATOMIC),
            ("REQ_LDAP", REQ_LDAP),
            ("REQ_QUERY", REQ_QUERY),
            ("REQ_SHUTDOWN", REQ_SHUTDOWN),
            ("REQ_QUERY_PARTIAL", REQ_QUERY_PARTIAL),
            ("REQ_STATS", REQ_STATS),
            ("REQ_QUERY_ANALYZE", REQ_QUERY_ANALYZE),
            ("REQ_MUTATE", REQ_MUTATE),
            ("RESP_PONG", RESP_PONG),
            ("RESP_ENTRIES", RESP_ENTRIES),
            ("RESP_ERROR", RESP_ERROR),
            ("RESP_PARTIAL", RESP_PARTIAL),
            ("RESP_STATS", RESP_STATS),
            ("RESP_ANALYZED", RESP_ANALYZED),
            ("RESP_MUTATED", RESP_MUTATED),
            ("RESP_BUSY", RESP_BUSY),
            ("RESP_DEADLINE", RESP_DEADLINE),
            ("AF_PRESENT", AF_PRESENT),
            ("AF_EQ", AF_EQ),
            ("AF_SUBSTRING", AF_SUBSTRING),
            ("AF_INTCMP", AF_INTCMP),
            ("AF_DNEQ", AF_DNEQ),
            ("AF_TRUE", AF_TRUE),
            ("AF_FALSE", AF_FALSE),
            ("CF_ATOMIC", CF_ATOMIC),
            ("CF_AND", CF_AND),
            ("CF_OR", CF_OR),
            ("CF_NOT", CF_NOT),
        ];
        let code_set: BTreeMap<String, u8> =
            in_code.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        assert_eq!(
            code_set, locked,
            "codec tag constants and compat/wire_tags.lock must be the same set"
        );

        // A representative frame for every request/response tag:
        // round-trip it and pin its first byte to the locked value.
        let attr = |s: &str| AttrName::new(s);
        let reqs: Vec<(&str, WireRequest)> = vec![
            ("REQ_PING", WireRequest::Ping),
            (
                "REQ_ATOMIC",
                WireRequest::Atomic {
                    base: dn("dc=com"),
                    scope: Scope::Sub,
                    filter: AtomicFilter::Eq(attr("cn"), "x".into()),
                },
            ),
            (
                "REQ_LDAP",
                WireRequest::Ldap {
                    base: dn("dc=com"),
                    scope: Scope::Base,
                    filter: CompositeFilter::Atomic(AtomicFilter::True),
                },
            ),
            (
                "REQ_QUERY",
                WireRequest::Query {
                    home: "a".into(),
                    text: "t".into(),
                },
            ),
            ("REQ_SHUTDOWN", WireRequest::Shutdown),
            (
                "REQ_QUERY_PARTIAL",
                WireRequest::QueryPartial {
                    home: "a".into(),
                    text: "t".into(),
                },
            ),
            ("REQ_STATS", WireRequest::Stats),
            (
                "REQ_QUERY_ANALYZE",
                WireRequest::QueryAnalyze {
                    home: "a".into(),
                    text: "t".into(),
                },
            ),
            (
                "REQ_MUTATE",
                WireRequest::Mutate {
                    batch: MutationBatch::new(),
                },
            ),
        ];
        assert_eq!(
            reqs.len(),
            locked.keys().filter(|k| k.starts_with("REQ_")).count(),
            "every REQ_ tag needs a representative frame here"
        );
        for (name, req) in reqs {
            let bytes = req.encode();
            assert_eq!(bytes[0], locked[name], "first byte of {name} frame");
            assert_eq!(WireRequest::decode(&bytes).unwrap(), req, "{name} round-trip");
        }

        let resps: Vec<(&str, WireResponse)> = vec![
            ("RESP_PONG", WireResponse::Pong),
            ("RESP_ENTRIES", WireResponse::Entries(vec![vec![1]])),
            ("RESP_ERROR", WireResponse::Error("e".into())),
            (
                "RESP_PARTIAL",
                WireResponse::Partial {
                    entries: vec![],
                    skipped: vec![],
                },
            ),
            ("RESP_STATS", WireResponse::Stats("x 1\n".into())),
            (
                "RESP_ANALYZED",
                WireResponse::Analyzed {
                    entries: vec![],
                    trace: QueryTrace {
                        query: "q".into(),
                        spans: vec![],
                        predicted_io: 0.0,
                        observed_io: 0,
                        elapsed_nanos: 1,
                    },
                },
            ),
            (
                "RESP_MUTATED",
                WireResponse::Mutated {
                    epoch: 1,
                    mutations: 2,
                },
            ),
            ("RESP_BUSY", WireResponse::Busy { retry_after_ms: 9 }),
            (
                "RESP_DEADLINE",
                WireResponse::DeadlineExceeded { budget_ms: 7 },
            ),
        ];
        assert_eq!(
            resps.len(),
            locked.keys().filter(|k| k.starts_with("RESP_")).count(),
            "every RESP_ tag needs a representative frame here"
        );
        for (name, resp) in resps {
            let bytes = resp.encode();
            assert_eq!(bytes[0], locked[name], "first byte of {name} frame");
            assert_eq!(WireResponse::decode(&bytes).unwrap(), resp, "{name} round-trip");
        }

        // Filter encodings: one representative per AF_/CF_ tag.
        let atomics: Vec<(&str, AtomicFilter)> = vec![
            ("AF_PRESENT", AtomicFilter::Present(attr("cn"))),
            ("AF_EQ", AtomicFilter::Eq(attr("cn"), "x".into())),
            (
                "AF_SUBSTRING",
                AtomicFilter::Substring(
                    attr("cn"),
                    SubstringPattern {
                        initial: Some("a".into()),
                        any: vec!["b".into()],
                        final_: None,
                    },
                ),
            ),
            ("AF_INTCMP", AtomicFilter::IntCmp(attr("n"), IntOp::Ge, 3)),
            ("AF_DNEQ", AtomicFilter::DnEq(attr("member"), dn("dc=com"))),
            ("AF_TRUE", AtomicFilter::True),
            ("AF_FALSE", AtomicFilter::False),
        ];
        assert_eq!(
            atomics.len(),
            locked.keys().filter(|k| k.starts_with("AF_")).count(),
            "every AF_ tag needs a representative filter here"
        );
        for (name, f) in atomics {
            let mut buf = Vec::new();
            put_atomic_filter(&mut buf, &f);
            assert_eq!(buf[0], locked[name], "tag byte of {name}");
            let mut r = Reader::new(&buf);
            assert_eq!(get_atomic_filter(&mut r).unwrap(), f, "{name} round-trip");
        }

        let composites: Vec<(&str, CompositeFilter)> = vec![
            ("CF_ATOMIC", CompositeFilter::Atomic(AtomicFilter::True)),
            (
                "CF_AND",
                CompositeFilter::And(vec![CompositeFilter::Atomic(AtomicFilter::True)]),
            ),
            (
                "CF_OR",
                CompositeFilter::Or(vec![CompositeFilter::Atomic(AtomicFilter::True)]),
            ),
            (
                "CF_NOT",
                CompositeFilter::Not(Box::new(CompositeFilter::Atomic(AtomicFilter::True))),
            ),
        ];
        assert_eq!(
            composites.len(),
            locked.keys().filter(|k| k.starts_with("CF_")).count(),
            "every CF_ tag needs a representative filter here"
        );
        for (name, f) in composites {
            let mut buf = Vec::new();
            put_composite_filter(&mut buf, &f);
            assert_eq!(buf[0], locked[name], "tag byte of {name}");
            let mut r = Reader::new(&buf);
            assert_eq!(get_composite_filter(&mut r).unwrap(), f, "{name} round-trip");
        }
    }

    #[test]
    fn junk_payloads_are_rejected() {
        assert!(WireRequest::decode(&[]).is_err());
        assert!(WireRequest::decode(&[99]).is_err());
        assert!(WireResponse::decode(&[99]).is_err());
        // Trailing garbage after a valid request is corruption.
        let mut bytes = WireRequest::Ping.encode().to_vec();
        bytes.push(0);
        assert!(WireRequest::decode(&bytes).is_err());
        // Entries count larger than the actual payload.
        let mut resp = Vec::new();
        resp.push(RESP_ENTRIES);
        put_u32(&mut resp, 1000);
        assert!(WireResponse::decode(&resp).is_err());
        // A Partial response whose skipped-zone record is truncated.
        let mut resp = Vec::new();
        resp.push(RESP_PARTIAL);
        put_u32(&mut resp, 0); // no entries
        put_u32(&mut resp, 1); // one skipped zone...
        put_str(&mut resp, "dc=com");
        put_u32(&mut resp, 1000); // ...claiming 1000 servers, providing 0
        assert!(WireResponse::decode(&resp).is_err());
        // A truncated QueryPartial (home but no text).
        let mut req = Vec::new();
        req.push(REQ_QUERY_PARTIAL);
        put_str(&mut req, "att");
        assert!(WireRequest::decode(&req).is_err());
        // A truncated QueryAnalyze (home but no text).
        let mut req = Vec::new();
        req.push(REQ_QUERY_ANALYZE);
        put_str(&mut req, "att");
        assert!(WireRequest::decode(&req).is_err());
        // A Stats request with trailing garbage.
        let mut req = WireRequest::Stats.encode().to_vec();
        req.push(7);
        assert!(WireRequest::decode(&req).is_err());
        // An Analyzed response whose trace claims more spans than it
        // carries.
        let mut resp = Vec::new();
        resp.push(RESP_ANALYZED);
        put_u32(&mut resp, 0); // no entries
        put_str(&mut resp, "(q)");
        put_u32(&mut resp, 1000); // 1000 spans, none present
        assert!(WireResponse::decode(&resp).is_err());
        // A Mutate whose framed batch is garbage.
        let mut req = Vec::new();
        req.push(REQ_MUTATE);
        put_u32(&mut req, 3);
        req.extend_from_slice(&[0xff, 0xff, 0xff]);
        assert!(WireRequest::decode(&req).is_err());
        // A Mutate with bytes after the framed batch.
        let mut req = WireRequest::Mutate {
            batch: netdir_journal::MutationBatch::new(),
        }
        .encode()
        .to_vec();
        req.push(0);
        assert!(WireRequest::decode(&req).is_err());
        // A truncated Mutated response (epoch but no count).
        let mut resp = Vec::new();
        resp.push(RESP_MUTATED);
        put_u64(&mut resp, 1);
        assert!(WireResponse::decode(&resp).is_err());
        // A truncated Busy (no retry hint) and one with trailing bytes.
        assert!(WireResponse::decode(&[RESP_BUSY]).is_err());
        let mut resp = WireResponse::Busy { retry_after_ms: 1 }.encode().to_vec();
        resp.push(0);
        assert!(WireResponse::decode(&resp).is_err());
        // A truncated DeadlineExceeded (no budget).
        assert!(WireResponse::decode(&[RESP_DEADLINE]).is_err());
    }
}
