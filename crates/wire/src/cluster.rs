//! A loopback cluster of TCP daemons sharing one partitioning rule with
//! the in-process [`Cluster`].
//!
//! [`WireCluster::launch`] takes the same [`ClusterBuilder`] a channel
//! cluster takes, partitions the directory with
//! [`ClusterBuilder::into_parts`] (so TCP and in-process deployments can
//! never partition differently), then gives every server its own
//! [`WireServer`] on an ephemeral loopback port. A shared [`Router`]
//! over [`SocketTransport`] provides distributed evaluation; each
//! daemon also answers full `Query` frames by running that router
//! itself, shipping its remote atomic sub-queries over real sockets.
//!
//! [`Cluster`]: netdir_server::Cluster

use crate::client::{ClientOptions, WireClient};
use crate::codec::{WireRequest, WireResponse};
use crate::server::{ServerOptions, WireServer, WireService};
use crate::socket::SocketTransport;
use crossbeam::channel::{unbounded, Sender};
use netdir_model::{Directory, Entry};
use netdir_obs::{Clock, MetricsRegistry, MonotonicClock};
use netdir_pager::record::Record;
use netdir_pager::Pager;
use netdir_query::parse_query;
use netdir_query::{Query, QueryError, QueryResult};
use netdir_server::delegation::ServerId;
use netdir_server::metrics as bridge;
use netdir_server::node::Request;
use netdir_server::{
    BreakerConfig, ClusterBuilder, ConsistencyMode, FaultConfig, FaultStats, FaultTransport,
    NetStats, QueryOutcome, RetryPolicy, RetryStats, Router, ServerNode,
};
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};

/// Encode entries the way they live on pages (and on the channel wire).
pub fn encode_entries(entries: &[Entry]) -> Vec<Vec<u8>> {
    entries
        .iter()
        .map(|e| {
            let mut buf = Vec::new();
            e.encode(&mut buf);
            buf
        })
        .collect()
}

/// The per-daemon service: local store over a channel, full queries via
/// the shared router.
struct NodeService {
    /// Request channel into this daemon's own [`ServerNode`].
    sender: Sender<Request>,
    /// This daemon's server id (default `home` for queries).
    home: ServerId,
    /// Server names, indexed by id, for `Query { home }` resolution.
    names: Arc<Vec<String>>,
    /// Distributed evaluator over socket transport; set once all
    /// listeners are bound (requests racing launch get a clean error).
    router: Arc<OnceLock<Router>>,
    /// Cluster-wide metrics, served by `Stats` frames.
    metrics: MetricsRegistry,
    /// Fault-injection counters, set at launch when a [`FaultPlan`] is
    /// active (same race rules as `router`).
    fault: Arc<OnceLock<FaultStats>>,
    /// Time source for query-latency metrics.
    clock: Arc<dyn Clock>,
}

impl NodeService {
    fn local(
        &self,
        build: impl FnOnce(Sender<Result<Vec<Vec<u8>>, String>>) -> Request,
    ) -> WireResponse {
        let (reply, rx) = unbounded();
        if self.sender.send(build(reply)).is_err() {
            return WireResponse::Error("server node is gone".into());
        }
        match rx.recv() {
            Ok(Ok(encoded)) => WireResponse::Entries(encoded),
            Ok(Err(e)) => WireResponse::Error(e),
            Err(e) => WireResponse::Error(format!("server node reply lost: {e}")),
        }
    }

    /// Resolve a `Query` frame's `home` field (empty = this daemon).
    fn resolve_home(&self, home: &str) -> Result<ServerId, WireResponse> {
        if home.is_empty() {
            return Ok(self.home);
        }
        self.names
            .iter()
            .position(|n| n == home)
            .ok_or_else(|| WireResponse::Error(format!("no such server: {home}")))
    }

    /// Feed one finished query into the cluster metrics: the scratch
    /// pager's whole ledger is this query's I/O (each query gets a
    /// fresh pager).
    fn observe_query(&self, pager: &Pager, elapsed_nanos: u64) {
        let io = pager.io();
        bridge::absorb_io(&self.metrics, io);
        bridge::absorb_pool(&self.metrics, pager.pool().metrics());
        bridge::record_query(&self.metrics, elapsed_nanos, io.total());
    }

    /// Answer a full distributed query under `mode`. A partial outcome
    /// with nothing skipped answers as a plain `Entries` frame, so a
    /// healthy cluster's traffic is indistinguishable from strict mode.
    fn distributed(&self, home: &str, text: &str, mode: ConsistencyMode) -> WireResponse {
        let Some(router) = self.router.get() else {
            return WireResponse::Error("cluster still launching".into());
        };
        let home_id = match self.resolve_home(home) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        let query = match parse_query(text) {
            Ok(q) => q,
            Err(e) => return WireResponse::Error(format!("bad query: {e}")),
        };
        let pager = netdir_pager::default_pager();
        let started = self.clock.now();
        match router.query_with(home_id, &pager, &query, mode) {
            Ok(outcome) => {
                let elapsed = u64::try_from(
                    self.clock.now().saturating_sub(started).as_nanos(),
                )
                .unwrap_or(u64::MAX);
                self.observe_query(&pager, elapsed);
                if outcome.is_complete() {
                    WireResponse::Entries(encode_entries(&outcome.entries))
                } else {
                    WireResponse::Partial {
                        entries: encode_entries(&outcome.entries),
                        skipped: outcome.partial,
                    }
                }
            }
            Err(e) => WireResponse::Error(e.to_string()),
        }
    }

    /// Answer a `QueryAnalyze` frame: strict distributed evaluation
    /// plus the per-operator trace.
    fn analyzed(&self, home: &str, text: &str) -> WireResponse {
        let Some(router) = self.router.get() else {
            return WireResponse::Error("cluster still launching".into());
        };
        let home_id = match self.resolve_home(home) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        let query = match parse_query(text) {
            Ok(q) => q,
            Err(e) => return WireResponse::Error(format!("bad query: {e}")),
        };
        let pager = netdir_pager::default_pager();
        match router.query_analyzed(home_id, &pager, &query, ConsistencyMode::Strict) {
            Ok((outcome, trace)) => {
                self.observe_query(&pager, trace.elapsed_nanos);
                WireResponse::Analyzed {
                    entries: encode_entries(&outcome.entries),
                    trace,
                }
            }
            Err(e) => WireResponse::Error(e.to_string()),
        }
    }

    /// Answer a `Stats` frame: refresh the registry from every live
    /// subsystem, then render the Prometheus exposition.
    fn stats(&self) -> WireResponse {
        if let Some(router) = self.router.get() {
            bridge::sync_net(&self.metrics, router.net().snapshot());
            bridge::sync_retry(&self.metrics, router.retry_stats().snapshot());
            bridge::sync_health(&self.metrics, router.health().transitions());
        }
        if let Some(fault) = self.fault.get() {
            bridge::sync_fault(&self.metrics, fault.snapshot());
        }
        WireResponse::Stats(self.metrics.render_prometheus())
    }
}

impl WireService for NodeService {
    fn handle(&self, req: WireRequest) -> WireResponse {
        match req {
            WireRequest::Ping | WireRequest::Shutdown => WireResponse::Pong,
            WireRequest::Atomic { base, scope, filter } => self.local(|reply| {
                Request::Atomic {
                    base,
                    scope,
                    filter,
                    reply,
                }
            }),
            WireRequest::Ldap { base, scope, filter } => self.local(|reply| {
                Request::Ldap {
                    base,
                    scope,
                    filter,
                    reply,
                }
            }),
            WireRequest::Query { home, text } => {
                self.distributed(&home, &text, ConsistencyMode::Strict)
            }
            WireRequest::QueryPartial { home, text } => {
                self.distributed(&home, &text, ConsistencyMode::Partial)
            }
            WireRequest::QueryAnalyze { home, text } => self.analyzed(&home, &text),
            WireRequest::Stats => self.stats(),
            // The loopback cluster's nodes are bulk-loaded read replicas;
            // the single-daemon `netdird` owns the write path.
            WireRequest::Mutate { .. } => {
                WireResponse::Error("this node is read-only; mutate the primary daemon".into())
            }
        }
    }
}

/// Fault-tolerance knobs for [`WireCluster::launch_with_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Deterministic fault injection wrapped around the socket
    /// transport (above the TCP clients, so injected faults never race
    /// real sockets and a fixed seed replays bit-identically).
    pub faults: FaultConfig,
    /// Zone-fetch retry policy for the shared router.
    pub retry: RetryPolicy,
    /// Per-server circuit-breaker configuration.
    pub breaker: BreakerConfig,
}

/// A running cluster of loopback TCP daemons.
pub struct WireCluster {
    names: Arc<Vec<String>>,
    addrs: Vec<SocketAddr>,
    router: Arc<OnceLock<Router>>,
    servers: Vec<WireServer>,
    /// Keeps the store threads alive for the daemons' lifetime.
    _nodes: Vec<ServerNode>,
    orphaned: usize,
    client_opts: ClientOptions,
    /// Fault-injection counters, when launched with a [`FaultPlan`].
    fault_stats: Option<FaultStats>,
    /// Cluster-wide metrics registry (shared with every daemon's
    /// service; served by `Stats` frames).
    metrics: MetricsRegistry,
}

impl WireCluster {
    /// Partition `dir` across the builder's declared contexts and start
    /// one TCP daemon per server on `127.0.0.1:0`.
    pub fn launch(
        builder: ClusterBuilder,
        dir: &Directory,
        server_opts: ServerOptions,
        client_opts: ClientOptions,
    ) -> io::Result<WireCluster> {
        WireCluster::launch_inner(builder, dir, server_opts, client_opts, None)
    }

    /// Like [`WireCluster::launch`], but with deterministic fault
    /// injection between the router and the sockets, plus explicit
    /// retry/breaker configuration — the chaos-test entry point.
    pub fn launch_with_faults(
        builder: ClusterBuilder,
        dir: &Directory,
        server_opts: ServerOptions,
        client_opts: ClientOptions,
        plan: FaultPlan,
    ) -> io::Result<WireCluster> {
        WireCluster::launch_inner(builder, dir, server_opts, client_opts, Some(plan))
    }

    fn launch_inner(
        builder: ClusterBuilder,
        dir: &Directory,
        server_opts: ServerOptions,
        client_opts: ClientOptions,
        plan: Option<FaultPlan>,
    ) -> io::Result<WireCluster> {
        let parts = builder.into_parts(dir);
        let names: Arc<Vec<String>> =
            Arc::new(parts.configs.iter().map(|c| c.name.clone()).collect());
        let nodes: Vec<ServerNode> = parts
            .configs
            .into_iter()
            .zip(parts.partitions)
            .map(|(cfg, entries)| ServerNode::spawn(cfg, entries))
            .collect();
        let router: Arc<OnceLock<Router>> = Arc::new(OnceLock::new());
        let metrics = MetricsRegistry::default();
        bridge::register_all(&metrics);
        let fault_slot: Arc<OnceLock<FaultStats>> = Arc::new(OnceLock::new());
        let mut servers = Vec::with_capacity(nodes.len());
        let mut addrs = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let service = Arc::new(NodeService {
                sender: node.sender(),
                home: id,
                names: names.clone(),
                router: router.clone(),
                metrics: metrics.clone(),
                fault: fault_slot.clone(),
                clock: Arc::new(MonotonicClock::new()),
            });
            let server = WireServer::bind("127.0.0.1:0", service, server_opts.clone())?;
            addrs.push(server.local_addr());
            servers.push(server);
        }
        let transport = SocketTransport::connect(&addrs, client_opts.clone());
        let (fault_stats, shared_router) = match plan {
            None => (None, Router::new(parts.delegation, Box::new(transport))),
            Some(plan) => {
                let fault = FaultTransport::new(Box::new(transport), plan.faults);
                let stats = fault.stats();
                let r = Router::new(parts.delegation, Box::new(fault))
                    .with_retry(plan.retry)
                    .with_breaker(plan.breaker);
                (Some(stats), r)
            }
        };
        let _ = router.set(shared_router);
        if let Some(stats) = &fault_stats {
            let _ = fault_slot.set(stats.clone());
        }
        Ok(WireCluster {
            names,
            addrs,
            router,
            servers,
            _nodes: nodes,
            orphaned: parts.orphaned,
            client_opts,
            fault_stats,
            metrics,
        })
    }

    /// Launch with default server/client options.
    pub fn launch_default(builder: ClusterBuilder, dir: &Directory) -> io::Result<WireCluster> {
        WireCluster::launch(
            builder,
            dir,
            ServerOptions::default(),
            ClientOptions::default(),
        )
    }

    /// The shared distributed evaluator (delegation + transport +
    /// health + retry accounting).
    pub fn router(&self) -> &Router {
        self.router.get().expect("router is set before launch returns")
    }

    /// Fault-injection counters (present when launched with a
    /// [`FaultPlan`]).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault_stats.as_ref()
    }

    /// The cluster-wide metrics registry (what `Stats` frames serve).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Zone-fetch retry counters of the shared router.
    pub fn retry_stats(&self) -> &RetryStats {
        self.router().retry_stats()
    }

    /// Number of daemons.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Server id by name.
    pub fn server_id(&self, name: &str) -> Option<ServerId> {
        self.names.iter().position(|n| n == name)
    }

    /// The loopback address server `id` listens on.
    pub fn addr(&self, id: ServerId) -> SocketAddr {
        self.addrs[id]
    }

    /// All daemon addresses, indexed by server id.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Entries that matched no context at partition time.
    pub fn orphaned(&self) -> usize {
        self.orphaned
    }

    /// Cluster-wide network counters: real frame bytes shipped between
    /// daemons by distributed evaluation.
    pub fn net(&self) -> &NetStats {
        self.router().net()
    }

    /// A fresh pooled client for daemon `id` (an external caller's view
    /// of the cluster).
    pub fn client(&self, id: ServerId) -> WireClient {
        WireClient::connect(self.addrs[id], self.client_opts.clone())
    }

    /// Evaluate `query` as posed to server `home` (by name), shipping
    /// remote sub-queries over the loopback sockets.
    pub fn query_from(
        &self,
        home: &str,
        pager: &netdir_pager::Pager,
        query: &Query,
    ) -> QueryResult<Vec<Entry>> {
        Ok(self
            .query_from_with(home, pager, query, ConsistencyMode::Strict)?
            .entries)
    }

    /// Like [`WireCluster::query_from`], but under an explicit
    /// [`ConsistencyMode`] — `Partial` skips and reports unreachable
    /// zones instead of failing the query.
    pub fn query_from_with(
        &self,
        home: &str,
        pager: &netdir_pager::Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<QueryOutcome> {
        let home = self.server_id(home).ok_or_else(|| QueryError::Parse {
            input: home.into(),
            detail: "no such server".into(),
        })?;
        self.router().query_with(home, pager, query, mode)
    }

    /// Like [`WireCluster::query_from`], but also returns the
    /// per-operator [`netdir_obs::QueryTrace`] of the evaluation.
    pub fn query_analyzed_from(
        &self,
        home: &str,
        pager: &netdir_pager::Pager,
        query: &Query,
        mode: ConsistencyMode,
    ) -> QueryResult<(QueryOutcome, netdir_obs::QueryTrace)> {
        let home = self.server_id(home).ok_or_else(|| QueryError::Parse {
            input: home.into(),
            detail: "no such server".into(),
        })?;
        self.router().query_analyzed(home, pager, query, mode)
    }

    /// Stop every daemon gracefully.
    pub fn shutdown(&mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

impl Drop for WireCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
