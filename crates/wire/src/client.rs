//! `WireClient` — a small pooled client for the frame protocol.
//!
//! One client addresses one daemon. Connections are created lazily,
//! parked in a small pool between requests, and retired on any error; a
//! request that fails on a *pooled* (possibly stale) connection is
//! retried once on a fresh one, so an idle-timeout on the server side is
//! invisible to callers. Every socket carries the configured request
//! timeout, so a hung daemon surfaces as an error rather than a hang.

use crate::codec::{WireRequest, WireResponse};
use crate::frame::{frame_len, read_frame, write_frame, DEFAULT_MAX_FRAME};
use netdir_filter::{AtomicFilter, CompositeFilter, Scope};
use netdir_journal::MutationBatch;
use netdir_model::{Dn, Entry};
use netdir_server::node::decode_entries;
use netdir_server::{QueryOutcome, RetryPolicy, Retryable};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(String),
    /// The peer spoke the protocol wrong (bad frame or payload).
    Protocol(String),
    /// The daemon executed the request and reported an error.
    Remote(String),
}

impl WireError {
    /// May another attempt succeed? Only connection weather ([`Io`])
    /// qualifies: a protocol violation repeats identically and a remote
    /// evaluation error means the query itself fails over there.
    ///
    /// [`Io`]: WireError::Io
    pub fn is_retryable(&self) -> bool {
        matches!(self, WireError::Io(_))
    }

    /// Classify an I/O failure from the frame layer: the size guards
    /// (`InvalidInput` from `write_frame`, `InvalidData` from
    /// `read_frame`) are protocol violations, everything else is
    /// connection weather.
    fn from_io(e: io::Error) -> WireError {
        match e.kind() {
            io::ErrorKind::InvalidInput | io::ErrorKind::InvalidData => {
                WireError::Protocol(e.to_string())
            }
            _ => WireError::Io(e.to_string()),
        }
    }
}

impl Retryable for WireError {
    fn is_retryable(&self) -> bool {
        WireError::is_retryable(self)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(e) => write!(f, "protocol error: {e}"),
            WireError::Remote(e) => write!(f, "remote error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias.
pub type WireResult<T> = Result<T, WireError>;

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Connect/read/write timeout applied to every request.
    pub timeout: Duration,
    /// Maximum frame payload size sent or accepted.
    pub max_frame: usize,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Retry policy for retryable ([`WireError::Io`]) failures. The
    /// stale-pooled-connection retry is separate and always free — this
    /// policy governs genuinely failed exchanges.
    pub retry: RetryPolicy,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            pool_size: 2,
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
        }
    }
}

/// A pooled client for one daemon address.
pub struct WireClient {
    addr: SocketAddr,
    opts: ClientOptions,
    pool: Mutex<Vec<TcpStream>>,
    retries: AtomicU64,
}

impl WireClient {
    /// Address `addr` with `opts`. No connection is made until the first
    /// request (use [`WireClient::ping`] to fail fast).
    pub fn connect(addr: SocketAddr, opts: ClientOptions) -> WireClient {
        WireClient {
            addr,
            opts,
            pool: Mutex::new(Vec::new()),
            retries: AtomicU64::new(0),
        }
    }

    /// The daemon this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Policy-driven retries performed so far (the free
    /// stale-pooled-connection redo is not counted).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn fresh_conn(&self) -> WireResult<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.addr, self.opts.timeout)
            .map_err(|e| WireError::Io(format!("connect {}: {e}", self.addr)))?;
        let t = Some(self.opts.timeout);
        conn.set_read_timeout(t)
            .and_then(|()| conn.set_write_timeout(t))
            .map_err(|e| WireError::Io(e.to_string()))?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn checkin(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.opts.pool_size {
            pool.push(conn);
        }
    }

    /// One request/response exchange on an established connection.
    /// Returns the response payload (None if the server closed instead
    /// of answering).
    fn exchange(
        &self,
        conn: &mut (impl Read + Write),
        payload: &[u8],
    ) -> WireResult<Option<Vec<u8>>> {
        write_frame(conn, payload, self.opts.max_frame).map_err(WireError::from_io)?;
        read_frame(conn, self.opts.max_frame).map_err(WireError::from_io)
    }

    /// Issue `req`; return the decoded response plus the number of bytes
    /// the response occupied on the wire (frame header included).
    ///
    /// Failure handling, in order: a failed exchange on a *pooled*
    /// connection is redone once immediately on a fresh one (a server
    /// idle-timeout is not weather); after that, retryable errors get
    /// [`ClientOptions::retry`] attempts with capped jittered backoff;
    /// fatal errors ([`WireError::Protocol`], [`WireError::Remote`])
    /// surface immediately.
    pub fn call_counted(&self, req: &WireRequest) -> WireResult<(WireResponse, u64)> {
        let payload = req.encode();
        let mut last_err = WireError::Io("no attempt made".into());
        let mut pool_grace = true;
        let max_attempts = self.opts.retry.max_attempts.max(1);
        let mut attempt = 0;
        while attempt < max_attempts {
            let conn = match self.checkout() {
                Some(c) => Ok((c, true)),
                None => self.fresh_conn().map(|c| (c, false)),
            };
            match conn {
                Ok((mut conn, pooled)) => match self.exchange(&mut conn, &payload) {
                    Ok(Some(resp_payload)) => {
                        let on_wire = frame_len(resp_payload.len());
                        let resp = WireResponse::decode(&resp_payload)
                            .map_err(|e| WireError::Protocol(e.to_string()))?;
                        self.checkin(conn);
                        return Ok((resp, on_wire));
                    }
                    Ok(None) => {
                        last_err =
                            WireError::Io("server closed connection without answering".into());
                        // One free immediate redo: the pooled connection
                        // was probably reaped by the server while idle.
                        if pooled && pool_grace {
                            pool_grace = false;
                            continue;
                        }
                    }
                    Err(e) => {
                        if !e.is_retryable() {
                            return Err(e);
                        }
                        last_err = e;
                        if pooled && pool_grace {
                            pool_grace = false;
                            continue;
                        }
                    }
                },
                Err(e) => {
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last_err = e;
                }
            }
            attempt += 1;
            if attempt < max_attempts {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let delay = self.opts.retry.backoff(attempt - 1, self.addr.port() as u64);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        Err(last_err)
    }

    /// Issue `req`, expecting entries back.
    fn call_entries(&self, req: &WireRequest) -> WireResult<(Vec<Vec<u8>>, u64)> {
        match self.call_counted(req)? {
            (WireResponse::Entries(encoded), n) => Ok((encoded, n)),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected entries, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> WireResult<()> {
        match self.call_counted(&WireRequest::Ping)? {
            (WireResponse::Pong, _) => Ok(()),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown_server(&self) -> WireResult<()> {
        match self.call_counted(&WireRequest::Shutdown)? {
            (WireResponse::Pong, _) => Ok(()),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Atomic query returning the raw on-page encodings plus the bytes
    /// the response occupied on the wire (what [`SocketTransport`] feeds
    /// into `NetStats`).
    ///
    /// [`SocketTransport`]: crate::socket::SocketTransport
    pub fn atomic_counted(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> WireResult<(Vec<Vec<u8>>, u64)> {
        self.call_entries(&WireRequest::Atomic {
            base: base.clone(),
            scope,
            filter: filter.clone(),
        })
    }

    /// Atomic query returning decoded entries.
    pub fn atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> WireResult<Vec<Entry>> {
        let (encoded, _) = self.atomic_counted(base, scope, filter)?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Baseline LDAP search (single base/scope/composite filter).
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &CompositeFilter,
    ) -> WireResult<Vec<Entry>> {
        let (encoded, _) = self.call_entries(&WireRequest::Ldap {
            base: base.clone(),
            scope,
            filter: filter.clone(),
        })?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Full L0–L3 query (text form), evaluated distributed-style as
    /// posed to the server named `home` (empty = the receiving daemon).
    pub fn query(&self, home: &str, text: &str) -> WireResult<Vec<Entry>> {
        let encoded = self.query_encoded(home, text)?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Like [`WireClient::query`] but returns the entries still in their
    /// wire encoding (for byte-level comparisons).
    pub fn query_encoded(&self, home: &str, text: &str) -> WireResult<Vec<Vec<u8>>> {
        let (encoded, _) = self.call_entries(&WireRequest::Query {
            home: home.to_string(),
            text: text.to_string(),
        })?;
        Ok(encoded)
    }

    /// Fetch the daemon's metrics in Prometheus exposition format.
    pub fn stats(&self) -> WireResult<String> {
        match self.call_counted(&WireRequest::Stats)? {
            (WireResponse::Stats(text), _) => Ok(text),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Full L0–L3 query returning the entries *and* the remote
    /// evaluation's per-operator [`netdir_obs::QueryTrace`] —
    /// `EXPLAIN ANALYZE` over the wire.
    pub fn query_analyze(
        &self,
        home: &str,
        text: &str,
    ) -> WireResult<(Vec<Entry>, netdir_obs::QueryTrace)> {
        let req = WireRequest::QueryAnalyze {
            home: home.to_string(),
            text: text.to_string(),
        };
        match self.call_counted(&req)? {
            (WireResponse::Analyzed { entries, trace }, _) => {
                let entries = decode_entries(&entries)
                    .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((entries, trace))
            }
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected analyzed entries, got {other:?}"
            ))),
        }
    }

    /// Full L0–L3 query under graceful degradation: zones the remote
    /// cluster cannot reach are skipped and reported in
    /// [`QueryOutcome::partial`] instead of failing the query.
    pub fn query_partial(&self, home: &str, text: &str) -> WireResult<QueryOutcome> {
        let req = WireRequest::QueryPartial {
            home: home.to_string(),
            text: text.to_string(),
        };
        let (encoded, partial) = match self.call_counted(&req)? {
            // A fully healthy cluster may answer with a plain Entries
            // frame (nothing was skipped).
            (WireResponse::Entries(encoded), _) => (encoded, Vec::new()),
            (WireResponse::Partial { entries, skipped }, _) => (entries, skipped),
            (WireResponse::Error(e), _) => return Err(WireError::Remote(e)),
            (other, _) => {
                return Err(WireError::Protocol(format!(
                    "expected entries or partial, got {other:?}"
                )))
            }
        };
        let entries =
            decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))?;
        Ok(QueryOutcome { entries, partial })
    }

    /// Apply a mutation batch atomically on the daemon. Returns the
    /// journal epoch after the commit and the number of mutations
    /// applied. A rejected batch (unknown DN, duplicate add, …) comes
    /// back as [`WireError::Remote`] with nothing applied.
    ///
    /// Unlike queries, mutations are **never retried**: an I/O error
    /// after the request was written leaves the commit status unknown,
    /// and a blind redo could apply the batch twice. Each call uses a
    /// fresh connection so a stale pooled socket cannot eat the request
    /// either; on error, re-query and resubmit deliberately.
    pub fn apply(&self, batch: &MutationBatch) -> WireResult<(u64, u32)> {
        let req = WireRequest::Mutate {
            batch: batch.clone(),
        };
        let payload = req.encode();
        let mut conn = self.fresh_conn()?;
        let resp_payload = self
            .exchange(&mut conn, &payload)?
            .ok_or_else(|| WireError::Io("server closed connection without answering".into()))?;
        let resp = WireResponse::decode(&resp_payload)
            .map_err(|e| WireError::Protocol(e.to_string()))?;
        self.checkin(conn);
        match resp {
            WireResponse::Mutated { epoch, mutations } => Ok((epoch, mutations)),
            WireResponse::Error(e) => Err(WireError::Remote(e)),
            other => Err(WireError::Protocol(format!(
                "expected mutated ack, got {other:?}"
            ))),
        }
    }
}
