//! `WireClient` — a small pooled client for the frame protocol.
//!
//! One client addresses one daemon. Connections are created lazily,
//! parked in a small pool between requests, and retired on any error; a
//! request that fails on a *pooled* (possibly stale) connection is
//! retried once on a fresh one, so an idle-timeout on the server side is
//! invisible to callers. Every socket carries the configured request
//! timeout, so a hung daemon surfaces as an error rather than a hang.

use crate::codec::{WireRequest, WireResponse};
use crate::frame::{frame_len, read_frame, write_frame, DEFAULT_MAX_FRAME};
use netdir_filter::{AtomicFilter, CompositeFilter, Scope};
use netdir_journal::MutationBatch;
use netdir_model::{Dn, Entry};
use netdir_obs::{Clock, MonotonicClock};
use netdir_server::node::decode_entries;
use netdir_server::{QueryOutcome, RetryPolicy, Retryable};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(String),
    /// The peer spoke the protocol wrong (bad frame or payload).
    Protocol(String),
    /// The daemon executed the request and reported an error.
    Remote(String),
    /// The daemon shed the request at admission (queue full, rate
    /// limit, enumeration cap) without executing it. Retryable after
    /// the hinted delay.
    Busy {
        /// Server's suggested wait before retrying.
        retry_after_ms: u32,
    },
    /// The daemon started the request but its execution deadline
    /// expired. **Not** retryable: the same request blows the same
    /// budget again.
    DeadlineExceeded {
        /// The budget that was exhausted.
        budget_ms: u32,
    },
}

impl WireError {
    /// May another attempt succeed? Connection weather ([`Io`]) and
    /// admission shedding ([`Busy`]) qualify: both are transient server
    /// states. A protocol violation repeats identically, a remote
    /// evaluation error means the query itself fails over there, and a
    /// blown deadline blows again.
    ///
    /// [`Io`]: WireError::Io
    /// [`Busy`]: WireError::Busy
    pub fn is_retryable(&self) -> bool {
        matches!(self, WireError::Io(_) | WireError::Busy { .. })
    }

    /// Classify an I/O failure from the frame layer: the size guards
    /// (`InvalidInput` from `write_frame`, `InvalidData` from
    /// `read_frame`) are protocol violations, everything else is
    /// connection weather.
    fn from_io(e: io::Error) -> WireError {
        match e.kind() {
            io::ErrorKind::InvalidInput | io::ErrorKind::InvalidData => {
                WireError::Protocol(e.to_string())
            }
            _ => WireError::Io(e.to_string()),
        }
    }
}

impl Retryable for WireError {
    fn is_retryable(&self) -> bool {
        WireError::is_retryable(self)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(e) => write!(f, "protocol error: {e}"),
            WireError::Remote(e) => write!(f, "remote error: {e}"),
            WireError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms}ms)")
            }
            WireError::DeadlineExceeded { budget_ms } => {
                write!(f, "request deadline exceeded ({budget_ms}ms budget)")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias.
pub type WireResult<T> = Result<T, WireError>;

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Connect/read/write timeout applied to every request.
    pub timeout: Duration,
    /// Maximum frame payload size sent or accepted.
    pub max_frame: usize,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Retry policy for retryable ([`WireError::Io`]) failures. The
    /// stale-pooled-connection retry is separate and always free — this
    /// policy governs genuinely failed exchanges.
    pub retry: RetryPolicy,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            pool_size: 2,
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
        }
    }
}

/// A pooled client for one daemon address.
pub struct WireClient {
    addr: SocketAddr,
    opts: ClientOptions,
    pool: Mutex<Vec<TcpStream>>,
    retries: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl WireClient {
    /// Address `addr` with `opts`. No connection is made until the first
    /// request (use [`WireClient::ping`] to fail fast).
    pub fn connect(addr: SocketAddr, opts: ClientOptions) -> WireClient {
        WireClient {
            addr,
            opts,
            pool: Mutex::new(Vec::new()),
            retries: AtomicU64::new(0),
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Replace the time source driving retry backoff. Tests inject a
    /// [`netdir_obs::ManualClock`] so backoff loops complete instantly
    /// while still advancing observable time.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> WireClient {
        self.clock = clock;
        self
    }

    /// The daemon this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Policy-driven retries performed so far (the free
    /// stale-pooled-connection redo is not counted).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn fresh_conn(&self) -> WireResult<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.addr, self.opts.timeout)
            .map_err(|e| WireError::Io(format!("connect {}: {e}", self.addr)))?;
        let t = Some(self.opts.timeout);
        conn.set_read_timeout(t)
            .and_then(|()| conn.set_write_timeout(t))
            .map_err(|e| WireError::Io(e.to_string()))?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn checkin(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.opts.pool_size {
            pool.push(conn);
        }
    }

    /// One request/response exchange on an established connection.
    /// Returns the response payload (None if the server closed instead
    /// of answering).
    fn exchange(
        &self,
        conn: &mut (impl Read + Write),
        payload: &[u8],
    ) -> WireResult<Option<Vec<u8>>> {
        write_frame(conn, payload, self.opts.max_frame).map_err(WireError::from_io)?;
        read_frame(conn, self.opts.max_frame).map_err(WireError::from_io)
    }

    /// Issue `req`; return the decoded response plus the number of bytes
    /// the response occupied on the wire (frame header included).
    ///
    /// Failure handling, in order: a failed exchange on a *pooled*
    /// connection is redone once immediately on a fresh one (a server
    /// idle-timeout is not weather); after that, retryable errors
    /// ([`WireError::Io`], [`WireError::Busy`]) get
    /// [`ClientOptions::retry`] attempts with capped jittered backoff —
    /// a `Busy` frame additionally raises the delay to the server's
    /// `retry_after` hint (itself capped by the policy's `max_delay`);
    /// fatal errors ([`WireError::Protocol`], [`WireError::Remote`],
    /// [`WireError::DeadlineExceeded`]) surface immediately.
    pub fn call_counted(&self, req: &WireRequest) -> WireResult<(WireResponse, u64)> {
        let payload = req.encode();
        let mut last_err = WireError::Io("no attempt made".into());
        let mut pool_grace = true;
        let max_attempts = self.opts.retry.max_attempts.max(1);
        let mut attempt = 0;
        while attempt < max_attempts {
            let conn = match self.checkout() {
                Some(c) => Ok((c, true)),
                None => self.fresh_conn().map(|c| (c, false)),
            };
            match conn {
                Ok((mut conn, pooled)) => match self.exchange(&mut conn, &payload) {
                    Ok(Some(resp_payload)) => {
                        let on_wire = frame_len(resp_payload.len());
                        let resp = WireResponse::decode(&resp_payload)
                            .map_err(|e| WireError::Protocol(e.to_string()))?;
                        self.checkin(conn);
                        match resp {
                            // Shed at admission: the connection stays
                            // usable, the request was never executed —
                            // retry with backoff, honouring the hint.
                            WireResponse::Busy { retry_after_ms } => {
                                last_err = WireError::Busy { retry_after_ms };
                            }
                            WireResponse::DeadlineExceeded { budget_ms } => {
                                return Err(WireError::DeadlineExceeded { budget_ms });
                            }
                            resp => return Ok((resp, on_wire)),
                        }
                    }
                    Ok(None) => {
                        last_err =
                            WireError::Io("server closed connection without answering".into());
                        // One free immediate redo: the pooled connection
                        // was probably reaped by the server while idle.
                        if pooled && pool_grace {
                            pool_grace = false;
                            continue;
                        }
                    }
                    Err(e) => {
                        if !e.is_retryable() {
                            return Err(e);
                        }
                        last_err = e;
                        if pooled && pool_grace {
                            pool_grace = false;
                            continue;
                        }
                    }
                },
                Err(e) => {
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last_err = e;
                }
            }
            attempt += 1;
            if attempt < max_attempts {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let mut delay = self.opts.retry.backoff(attempt - 1, self.addr.port() as u64);
                if let WireError::Busy { retry_after_ms } = last_err {
                    // Respect the server's hint, but never wait longer
                    // than the policy's own cap (so an immediate test
                    // policy with max_delay=0 stays immediate).
                    let hint = Duration::from_millis(u64::from(retry_after_ms))
                        .min(self.opts.retry.max_delay);
                    delay = delay.max(hint);
                }
                if !delay.is_zero() {
                    self.clock.sleep(delay);
                }
            }
        }
        Err(last_err)
    }

    /// Issue `req`, expecting entries back.
    fn call_entries(&self, req: &WireRequest) -> WireResult<(Vec<Vec<u8>>, u64)> {
        match self.call_counted(req)? {
            (WireResponse::Entries(encoded), n) => Ok((encoded, n)),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected entries, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> WireResult<()> {
        match self.call_counted(&WireRequest::Ping)? {
            (WireResponse::Pong, _) => Ok(()),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown_server(&self) -> WireResult<()> {
        match self.call_counted(&WireRequest::Shutdown)? {
            (WireResponse::Pong, _) => Ok(()),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Atomic query returning the raw on-page encodings plus the bytes
    /// the response occupied on the wire (what [`SocketTransport`] feeds
    /// into `NetStats`).
    ///
    /// [`SocketTransport`]: crate::socket::SocketTransport
    pub fn atomic_counted(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> WireResult<(Vec<Vec<u8>>, u64)> {
        self.call_entries(&WireRequest::Atomic {
            base: base.clone(),
            scope,
            filter: filter.clone(),
        })
    }

    /// Atomic query returning decoded entries.
    pub fn atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> WireResult<Vec<Entry>> {
        let (encoded, _) = self.atomic_counted(base, scope, filter)?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Baseline LDAP search (single base/scope/composite filter).
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &CompositeFilter,
    ) -> WireResult<Vec<Entry>> {
        let (encoded, _) = self.call_entries(&WireRequest::Ldap {
            base: base.clone(),
            scope,
            filter: filter.clone(),
        })?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Full L0–L3 query (text form), evaluated distributed-style as
    /// posed to the server named `home` (empty = the receiving daemon).
    pub fn query(&self, home: &str, text: &str) -> WireResult<Vec<Entry>> {
        let encoded = self.query_encoded(home, text)?;
        decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Like [`WireClient::query`] but returns the entries still in their
    /// wire encoding (for byte-level comparisons).
    pub fn query_encoded(&self, home: &str, text: &str) -> WireResult<Vec<Vec<u8>>> {
        let (encoded, _) = self.call_entries(&WireRequest::Query {
            home: home.to_string(),
            text: text.to_string(),
        })?;
        Ok(encoded)
    }

    /// Fetch the daemon's metrics in Prometheus exposition format.
    pub fn stats(&self) -> WireResult<String> {
        match self.call_counted(&WireRequest::Stats)? {
            (WireResponse::Stats(text), _) => Ok(text),
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Full L0–L3 query returning the entries *and* the remote
    /// evaluation's per-operator [`netdir_obs::QueryTrace`] —
    /// `EXPLAIN ANALYZE` over the wire.
    pub fn query_analyze(
        &self,
        home: &str,
        text: &str,
    ) -> WireResult<(Vec<Entry>, netdir_obs::QueryTrace)> {
        let req = WireRequest::QueryAnalyze {
            home: home.to_string(),
            text: text.to_string(),
        };
        match self.call_counted(&req)? {
            (WireResponse::Analyzed { entries, trace }, _) => {
                let entries = decode_entries(&entries)
                    .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((entries, trace))
            }
            (WireResponse::Error(e), _) => Err(WireError::Remote(e)),
            (other, _) => Err(WireError::Protocol(format!(
                "expected analyzed entries, got {other:?}"
            ))),
        }
    }

    /// Full L0–L3 query under graceful degradation: zones the remote
    /// cluster cannot reach are skipped and reported in
    /// [`QueryOutcome::partial`] instead of failing the query.
    pub fn query_partial(&self, home: &str, text: &str) -> WireResult<QueryOutcome> {
        let req = WireRequest::QueryPartial {
            home: home.to_string(),
            text: text.to_string(),
        };
        let (encoded, partial) = match self.call_counted(&req)? {
            // A fully healthy cluster may answer with a plain Entries
            // frame (nothing was skipped).
            (WireResponse::Entries(encoded), _) => (encoded, Vec::new()),
            (WireResponse::Partial { entries, skipped }, _) => (entries, skipped),
            (WireResponse::Error(e), _) => return Err(WireError::Remote(e)),
            (other, _) => {
                return Err(WireError::Protocol(format!(
                    "expected entries or partial, got {other:?}"
                )))
            }
        };
        let entries =
            decode_entries(&encoded).map_err(|e| WireError::Protocol(e.to_string()))?;
        Ok(QueryOutcome { entries, partial })
    }

    /// Apply a mutation batch atomically on the daemon. Returns the
    /// journal epoch after the commit and the number of mutations
    /// applied. A rejected batch (unknown DN, duplicate add, …) comes
    /// back as [`WireError::Remote`] with nothing applied.
    ///
    /// Unlike queries, mutations are **never retried**: an I/O error
    /// after the request was written leaves the commit status unknown,
    /// and a blind redo could apply the batch twice. Each call uses a
    /// fresh connection so a stale pooled socket cannot eat the request
    /// either; on error, re-query and resubmit deliberately.
    pub fn apply(&self, batch: &MutationBatch) -> WireResult<(u64, u32)> {
        let req = WireRequest::Mutate {
            batch: batch.clone(),
        };
        let payload = req.encode();
        let mut conn = self.fresh_conn()?;
        let resp_payload = self
            .exchange(&mut conn, &payload)?
            .ok_or_else(|| WireError::Io("server closed connection without answering".into()))?;
        let resp = WireResponse::decode(&resp_payload)
            .map_err(|e| WireError::Protocol(e.to_string()))?;
        self.checkin(conn);
        match resp {
            WireResponse::Mutated { epoch, mutations } => Ok((epoch, mutations)),
            WireResponse::Error(e) => Err(WireError::Remote(e)),
            // Shed before execution: nothing was applied, and since
            // mutations are never auto-retried the caller decides when
            // to resubmit.
            WireResponse::Busy { retry_after_ms } => Err(WireError::Busy { retry_after_ms }),
            WireResponse::DeadlineExceeded { budget_ms } => {
                Err(WireError::DeadlineExceeded { budget_ms })
            }
            other => Err(WireError::Protocol(format!(
                "expected mutated ack, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    /// A scripted daemon: hands out the responses in `script` one per
    /// request (across however many connections the client opens), then
    /// stops answering.
    fn scripted_server(script: Vec<WireResponse>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut script = script.into_iter();
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { continue };
                while let Ok(Some(_req)) = read_frame(&mut conn, DEFAULT_MAX_FRAME) {
                    let Some(resp) = script.next() else { return };
                    if write_frame(&mut conn, &resp.encode(), DEFAULT_MAX_FRAME).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn client(addr: SocketAddr, retry: RetryPolicy) -> WireClient {
        WireClient::connect(
            addr,
            ClientOptions {
                timeout: Duration::from_secs(5),
                retry,
                ..ClientOptions::default()
            },
        )
    }

    #[test]
    fn busy_frames_are_retried_until_admitted() {
        let addr = scripted_server(vec![
            WireResponse::Busy { retry_after_ms: 1 },
            WireResponse::Busy { retry_after_ms: 1 },
            WireResponse::Pong,
        ]);
        let c = client(addr, RetryPolicy::immediate(5));
        c.ping().unwrap();
        assert_eq!(c.retries(), 2, "each Busy costs one policy retry");
    }

    #[test]
    fn persistent_busy_exhausts_the_policy_and_surfaces() {
        let addr = scripted_server(vec![
            WireResponse::Busy { retry_after_ms: 7 },
            WireResponse::Busy { retry_after_ms: 7 },
            WireResponse::Busy { retry_after_ms: 7 },
        ]);
        let c = client(addr, RetryPolicy::immediate(3));
        let err = c.ping().unwrap_err();
        assert_eq!(err, WireError::Busy { retry_after_ms: 7 });
        assert!(err.is_retryable(), "Busy classifies as retryable");
    }

    #[test]
    fn deadline_exceeded_is_fatal_and_never_retried() {
        let addr = scripted_server(vec![WireResponse::DeadlineExceeded { budget_ms: 50 }]);
        let c = client(addr, RetryPolicy::immediate(4));
        let err = c.ping().unwrap_err();
        assert_eq!(err, WireError::DeadlineExceeded { budget_ms: 50 });
        assert!(!err.is_retryable(), "the same request blows the same budget");
        assert_eq!(c.retries(), 0, "fatal errors must not burn retries");
    }

    #[test]
    fn busy_retry_waits_at_least_the_server_hint() {
        let addr = scripted_server(vec![
            WireResponse::Busy { retry_after_ms: 30 },
            WireResponse::Pong,
        ]);
        // base_delay ZERO makes the policy's own backoff zero, so any
        // wait observed comes from honouring the hint (capped at 100ms).
        let c = client(
            addr,
            RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::ZERO,
                max_delay: Duration::from_millis(100),
                ..RetryPolicy::default()
            },
        );
        let started = Instant::now();
        c.ping().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "hint ignored: retried after {:?}",
            started.elapsed()
        );
    }
}
