//! # netdir-wire — the directory protocol on a real network
//!
//! The paper's Section 8.3 plan — ship each atomic sub-query to the
//! server owning its base, ship the sorted results back, evaluate the
//! operator tree at the queried server — is transport-independent, and
//! `netdir-server` keeps it that way behind its `Transport` trait. This
//! crate supplies the other side of that trait: a real TCP wire
//! protocol, so the distributed evaluator's shipped-byte accounting can
//! be measured against actual sockets instead of in-process channels.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed frames (4-byte big-endian header) with
//!   max-size guards in both directions.
//! * [`codec`] — request/response payloads: DNs and L0–L3 queries as
//!   canonical text, filters structurally, entries in their on-page
//!   [`Record`](netdir_pager::record::Record) encoding (byte-identical
//!   to what the channel transport ships).
//! * [`server`] — a blocking multi-threaded frame server (`std::net`
//!   accept thread + crossbeam worker pool, no async runtime) with
//!   per-connection timeouts and graceful shutdown; the `netdird`
//!   binary wraps it around a directory cluster.
//! * [`client`] — [`WireClient`], a pooled blocking client with request
//!   timeouts and one-shot `query()`/`search()` helpers; also the
//!   `ndquery` binary.
//! * [`socket`] — [`SocketTransport`], plugging TCP under
//!   `netdir_server::Router` unchanged.
//! * [`cluster`] — [`WireCluster`], a loopback fleet of daemons built
//!   from the same `ClusterBuilder` partitioning as in-process clusters.

pub mod client;
pub mod cluster;
pub mod codec;
pub mod frame;
pub mod server;
pub mod socket;

pub use client::{ClientOptions, WireClient, WireError, WireResult};
pub use cluster::{encode_entries, FaultPlan, WireCluster};
pub use codec::{WireRequest, WireResponse};
pub use frame::DEFAULT_MAX_FRAME;
pub use server::{ServerOptions, WireServer, WireService};
pub use socket::SocketTransport;
