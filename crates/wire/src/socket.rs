//! [`SocketTransport`] — the Section 8.3 evaluator over real TCP.
//!
//! Implements `netdir_server::Transport` with one [`WireClient`] per
//! server, so [`Router`] runs the identical routing/merging logic it
//! runs over in-process channels — only the shipping medium changes.
//! `NetStats` here counts **actual frame bytes** (header + payload of
//! each response), not the hypothetical payload sizes the channel
//! transport charges, so `exp_distributed --wire` reports what truly
//! crossed the loopback.
//!
//! [`Router`]: netdir_server::Router

use crate::client::{ClientOptions, WireClient, WireError};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;
use netdir_server::delegation::ServerId;
use netdir_server::{AtomicResponse, NetStats, Transport, TransportError, TransportResult};
use std::net::SocketAddr;

/// Preserve the retry classification across the error-type boundary, so
/// the router treats a TCP failure exactly like the equivalent channel
/// failure.
fn to_transport_error(e: WireError) -> TransportError {
    match e {
        WireError::Io(d) => TransportError::new(d),
        WireError::Protocol(d) => TransportError::protocol(d),
        WireError::Remote(d) => TransportError::remote(d),
        // Admission shedding is transient server weather (retryable,
        // possibly on a replica); a blown deadline repeats over there.
        e @ WireError::Busy { .. } => TransportError::new(e.to_string()),
        e @ WireError::DeadlineExceeded { .. } => TransportError::remote(e.to_string()),
    }
}

/// TCP transport: server `i` of the delegation table lives at `addrs[i]`.
pub struct SocketTransport {
    clients: Vec<WireClient>,
    net: NetStats,
}

impl SocketTransport {
    /// One pooled client per server address.
    pub fn connect(addrs: &[SocketAddr], opts: ClientOptions) -> SocketTransport {
        SocketTransport {
            clients: addrs
                .iter()
                .map(|&a| WireClient::connect(a, opts.clone()))
                .collect(),
            net: NetStats::new(),
        }
    }

    /// The client addressing server `id`.
    pub fn client(&self, id: ServerId) -> &WireClient {
        &self.clients[id]
    }

    /// Total policy-driven retries performed by the per-server clients
    /// (connection-level; the router's own zone retries are counted
    /// separately in its `RetryStats`).
    pub fn client_retries(&self) -> u64 {
        self.clients.iter().map(|c| c.retries()).sum()
    }
}

impl Transport for SocketTransport {
    fn atomic(
        &self,
        target: ServerId,
        home: ServerId,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> TransportResult<AtomicResponse> {
        let client = self
            .clients
            .get(target)
            .ok_or_else(|| TransportError::addressing(format!("no server with id {target}")))?;
        let (encoded, frame_bytes) = client
            .atomic_counted(base, scope, filter)
            .map_err(to_transport_error)?;
        if target != home {
            self.net.record_round_trip(encoded.len() as u64, frame_bytes);
        }
        Ok(AtomicResponse {
            encoded,
            wire_bytes: frame_bytes,
        })
    }

    fn net(&self) -> &NetStats {
        &self.net
    }

    fn num_servers(&self) -> usize {
        self.clients.len()
    }
}
