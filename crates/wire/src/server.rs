//! A blocking, multi-threaded TCP frame server.
//!
//! No async runtime: one accept thread feeds accepted connections over a
//! crossbeam channel to a fixed worker pool, and each worker speaks the
//! frame protocol synchronously over its connection (the same
//! threads-and-channels idiom the in-process [`ServerNode`] uses).
//!
//! Robustness guards, all per-connection:
//! * read/write timeouts — a stalled peer costs one worker for at most
//!   the timeout, then the connection is dropped;
//! * max-frame-size enforcement on both directions (see [`crate::frame`]);
//! * malformed payloads get a [`WireResponse::Error`] and the connection
//!   survives; transport-level damage (truncated frame) closes it.
//!
//! Shutdown is graceful and prompt: [`WireServer::shutdown`] (also
//! triggered by a remote [`WireRequest::Shutdown`] frame) stops the
//! accept loop via a flag plus a self-connection to unblock `accept`,
//! half-closes the read side of every open connection so workers parked
//! in `read` wake immediately, lets requests already being processed
//! write their responses, then joins every thread.
//!
//! [`ServerNode`]: netdir_server::ServerNode

use crate::codec::{WireRequest, WireResponse};
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use crossbeam::channel::{unbounded, Receiver};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a daemon does with each decoded request.
///
/// `Shutdown` frames are intercepted by the framework (acknowledged,
/// then the server stops); services never see them.
pub trait WireService: Send + Sync + 'static {
    /// Produce the response for one request.
    fn handle(&self, req: WireRequest) -> WireResponse;
}

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads serving connections. Must be at least 2 if the
    /// service evaluates distributed queries that can call back into
    /// this same server (a full `Query` occupies one worker while its
    /// locally-targeted atomic sub-queries arrive on another).
    pub workers: usize,
    /// Per-connection read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (None = block forever).
    pub write_timeout: Option<Duration>,
    /// Maximum frame payload size accepted or produced.
    pub max_frame: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 4,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    addr: SocketAddr,
    stop: AtomicBool,
    /// Read-half clones of every open connection, so shutdown can wake
    /// workers parked in `read` without waiting out their timeout.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Set the stop flag, poke the accept loop awake, and half-close
    /// every open connection's read side. Idempotent.
    fn request_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Track a connection for shutdown wake-up.
    fn register(&self, conn: &TcpStream) -> Option<u64> {
        let clone = conn.try_clone().ok()?;
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, clone);
        // A stop between the flag check and registration would miss this
        // connection; re-check so it is woken like the rest.
        if self.stopping() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        Some(id)
    }

    fn unregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
        }
    }
}

/// Handle to a running frame server. Dropping it shuts the server down.
pub struct WireServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` on a pool of `opts.workers` threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn WireService>,
        opts: ServerOptions,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            addr: listener.local_addr()?,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let (tx, rx) = unbounded::<TcpStream>();
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let service = service.clone();
                let opts = opts.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("netdird-worker-{i}"))
                    .spawn(move || worker_loop(rx, service, opts, shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("netdird-accept".into())
                .spawn(move || {
                    loop {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                if shared.stopping() {
                                    break; // the wake-up self-connection
                                }
                                let _ = tx.send(conn);
                            }
                            Err(_) => {
                                if shared.stopping() {
                                    break;
                                }
                                // Transient accept errors (e.g. aborted
                                // handshake) are not fatal.
                            }
                        }
                    }
                    // tx drops here; workers drain the queue and exit.
                })?
        };
        Ok(WireServer {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Has shutdown been requested (locally or by a remote frame)?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Stop accepting, wake parked readers, let requests already being
    /// processed answer, and join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_stop();
        self.join();
    }

    /// Block until every server thread has exited (used by the daemon
    /// binary to park the main thread until a remote Shutdown arrives).
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    service: Arc<dyn WireService>,
    opts: ServerOptions,
    shared: Arc<Shared>,
) {
    for conn in rx.iter() {
        let peer = conn.peer_addr().ok();
        let id = shared.register(&conn);
        // A failing connection (truncated frame, oversized header, reset
        // peer) costs exactly that connection: log it and serve the next
        // one. The daemon itself must be unkillable from the outside.
        if let Err(e) = serve_conn(conn, service.as_ref(), &opts, &shared) {
            if !shared.stopping() {
                match peer {
                    Some(p) => eprintln!("netdird: connection {p}: {e}"),
                    None => eprintln!("netdird: connection error: {e}"),
                }
            }
        }
        shared.unregister(id);
        if shared.stopping() {
            break;
        }
    }
}

fn serve_conn(
    mut conn: TcpStream,
    service: &dyn WireService,
    opts: &ServerOptions,
    shared: &Shared,
) -> io::Result<()> {
    conn.set_read_timeout(opts.read_timeout)?;
    conn.set_write_timeout(opts.write_timeout)?;
    let _ = conn.set_nodelay(true);
    loop {
        if shared.stopping() {
            break;
        }
        let Some(payload) = read_frame(&mut conn, opts.max_frame)? else {
            break; // clean end of session
        };
        let resp = match WireRequest::decode(&payload) {
            Ok(WireRequest::Shutdown) => {
                // Acknowledge first so the requester is not left hanging,
                // then stop the whole server.
                let _ = write_frame(&mut conn, &WireResponse::Pong.encode(), opts.max_frame);
                shared.request_stop();
                break;
            }
            // A service panic (poisoned lock, indexing slip in a query
            // operator) must not take the worker thread down with it —
            // that would shrink the pool permanently, one panic at a
            // time. Contain it to an error response; the sibling
            // handlers and other connections keep running.
            Ok(req) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.handle(req)
                })) {
                    Ok(resp) => resp,
                    Err(panic) => {
                        let detail = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".into());
                        WireResponse::Error(format!("internal error: {detail}"))
                    }
                }
            }
            Err(e) => WireResponse::Error(format!("malformed request: {e}")),
        };
        write_frame(&mut conn, &resp.encode(), opts.max_frame)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    /// Echo-style service: answers Ping, errors on everything else.
    struct PingOnly;
    impl WireService for PingOnly {
        fn handle(&self, req: WireRequest) -> WireResponse {
            match req {
                WireRequest::Ping => WireResponse::Pong,
                other => WireResponse::Error(format!("unsupported: {other:?}")),
            }
        }
    }

    /// One request/response exchange, with every failure surfaced as a
    /// `Result` (no unwraps: tests asserting on daemon survival need to
    /// distinguish "server answered garbage" from "helper panicked").
    fn call(conn: &mut TcpStream, req: &WireRequest) -> io::Result<WireResponse> {
        write_frame(conn, &req.encode(), DEFAULT_MAX_FRAME)?;
        let payload = read_frame(conn, DEFAULT_MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed without answering",
            )
        })?;
        WireResponse::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    #[test]
    fn serves_many_requests_per_connection() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        for _ in 0..10 {
            assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        }
        drop(conn);
        srv.shutdown();
    }

    #[test]
    fn malformed_payload_gets_error_but_connection_survives() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        write_frame(&mut conn, &[99, 1, 2], DEFAULT_MAX_FRAME).unwrap();
        let payload = read_frame(&mut conn, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(
            WireResponse::decode(&payload).unwrap(),
            WireResponse::Error(_)
        ));
        // Still serving on the same connection.
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    #[test]
    fn oversized_frame_drops_the_connection() {
        let opts = ServerOptions {
            max_frame: 64,
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), opts).unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // Hand-roll a header announcing far more than the cap.
        conn.write_all(&(1_000_000u32).to_be_bytes()).unwrap();
        conn.write_all(&[0u8; 16]).unwrap();
        // Server closes without replying.
        assert!(matches!(
            read_frame(&mut conn, DEFAULT_MAX_FRAME),
            Ok(None) | Err(_)
        ));
        srv.shutdown();
    }

    #[test]
    fn garbage_bytes_cost_only_their_own_connection() {
        // Regression: transport-level damage on one connection (here a
        // header announcing ~4 GiB, then junk) must be contained — the
        // worker logs and closes that connection; a fresh connection is
        // served normally.
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        bad.write_all(b"this is not a frame").unwrap();
        // The server drops the damaged connection without replying.
        assert!(matches!(
            read_frame(&mut bad, DEFAULT_MAX_FRAME),
            Ok(None) | Err(_)
        ));
        drop(bad);
        // The daemon survives: a fresh connection gets real service.
        let mut good = TcpStream::connect(addr).unwrap();
        assert_eq!(call(&mut good, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    #[test]
    fn remote_shutdown_is_acknowledged_and_stops_the_server() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        assert_eq!(
            call(&mut conn, &WireRequest::Shutdown).unwrap(),
            WireResponse::Pong
        );
        srv.join();
        assert!(srv.is_stopping());
        // The listener is gone: fresh connections are refused (or reset).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn shutdown_does_not_wait_out_idle_connections() {
        // An idle client holds a connection open; shutdown must wake the
        // worker parked in read rather than wait for the 30s timeout.
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        let started = Instant::now();
        srv.shutdown(); // conn is still open and idle
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown blocked on an idle connection for {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn panicking_service_answers_error_and_keeps_serving() {
        /// Panics on Stats, answers Ping — exercises panic containment.
        struct Grenade;
        impl WireService for Grenade {
            fn handle(&self, req: WireRequest) -> WireResponse {
                match req {
                    WireRequest::Ping => WireResponse::Pong,
                    _ => panic!("service blew up"),
                }
            }
        }
        let opts = ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(Grenade), opts).unwrap();
        let addr = srv.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        // The panic becomes an error response on the same connection...
        match call(&mut conn, &WireRequest::Stats).unwrap() {
            WireResponse::Error(e) => assert!(e.contains("service blew up"), "got: {e}"),
            other => panic!("expected error, got {other:?}"),
        }
        // ...and neither the connection nor the worker pool is lost:
        // more panics than workers, then normal service, all succeed.
        for _ in 0..4 {
            assert!(matches!(
                call(&mut conn, &WireRequest::Stats).unwrap(),
                WireResponse::Error(_)
            ));
        }
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        let mut fresh = TcpStream::connect(addr).unwrap();
        assert_eq!(call(&mut fresh, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    #[test]
    fn concurrent_connections_are_served_in_parallel() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    for _ in 0..20 {
                        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
                    }
                });
            }
        });
        srv.shutdown();
    }
}
