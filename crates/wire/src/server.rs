//! A blocking, multi-threaded TCP frame server.
//!
//! No async runtime: one accept thread feeds accepted connections over a
//! crossbeam channel to a fixed worker pool, and each worker speaks the
//! frame protocol synchronously over its connection (the same
//! threads-and-channels idiom the in-process [`ServerNode`] uses).
//!
//! Robustness guards, all per-connection:
//! * read/write timeouts — a stalled or silent peer costs one worker
//!   for at most the timeout, then the connection is dropped;
//! * max-frame-size enforcement on both directions (see [`crate::frame`]);
//! * malformed payloads get a [`WireResponse::Error`] and the connection
//!   survives; transport-level damage (truncated frame) closes it.
//!
//! Overload guards, so the daemon sheds load early and predictably
//! instead of queueing unboundedly (DESIGN.md §10):
//! * the accept→worker queue is bounded (`max_pending`); when it is
//!   full the accept thread answers a [`WireResponse::Busy`] frame and
//!   closes, before any worker is occupied;
//! * each decoded request passes the [`AdmissionController`] policy
//!   layer (inflight cap, per-peer token bucket, anti-enumeration cap);
//!   shed requests get `Busy` on the still-open connection;
//! * an optional per-request execution deadline (`request_deadline`)
//!   runs the service on a watched thread: if the budget expires the
//!   worker is released with a [`WireResponse::DeadlineExceeded`] and
//!   the runaway evaluation is tracked until it burns out.
//!
//! Shutdown is a graceful drain: [`WireServer::shutdown`] (also
//! triggered by a remote [`WireRequest::Shutdown`] frame) stops the
//! accept loop via a flag plus a self-connection to unblock `accept`,
//! half-closes the read side of every open connection so workers parked
//! in `read` wake immediately, lets requests already being processed
//! write their responses, then joins every thread. Connections still
//! waiting in the accept queue are dropped unanswered — their clients
//! see a clean close and retry elsewhere.
//!
//! [`ServerNode`]: netdir_server::ServerNode

use crate::codec::{WireRequest, WireResponse};
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use crossbeam::channel::{unbounded, Receiver};
use netdir_server::AdmissionController;
use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a daemon does with each decoded request.
///
/// `Shutdown` frames are intercepted by the framework (acknowledged,
/// then the server stops); services never see them.
pub trait WireService: Send + Sync + 'static {
    /// Produce the response for one request.
    fn handle(&self, req: WireRequest) -> WireResponse;
}

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads serving connections. Must be at least 2 if the
    /// service evaluates distributed queries that can call back into
    /// this same server (a full `Query` occupies one worker while its
    /// locally-targeted atomic sub-queries arrive on another).
    pub workers: usize,
    /// Per-connection read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (None = block forever).
    pub write_timeout: Option<Duration>,
    /// Maximum frame payload size accepted or produced.
    pub max_frame: usize,
    /// Bound on accepted connections waiting for a worker; beyond it
    /// the accept thread sheds with a `Busy` frame instead of queueing.
    /// `0` = unbounded (the pre-admission behaviour).
    pub max_pending: usize,
    /// Per-request execution budget. When the service blows it, the
    /// worker is released with `DeadlineExceeded` and the runaway
    /// evaluation finishes detached. `None` = no deadline.
    pub request_deadline: Option<Duration>,
    /// The admission policy. `None` installs a fully permissive
    /// controller (accounting still works; no limit ever fires).
    pub admission: Option<Arc<AdmissionController>>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 4,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame: DEFAULT_MAX_FRAME,
            max_pending: 64,
            request_deadline: None,
            admission: None,
        }
    }
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    addr: SocketAddr,
    stop: AtomicBool,
    /// Read-half clones of every open connection, so shutdown can wake
    /// workers parked in `read` without waiting out their timeout.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Connections accepted but not yet picked up by a worker.
    pending: AtomicU64,
    /// The admission policy (always present; permissive by default).
    admission: Arc<AdmissionController>,
    /// Flag + condvar signalled the moment the accept thread drops the
    /// listening socket: from then on fresh connects are refused rather
    /// than queued. Event-driven so waiters wake immediately instead of
    /// polling with a fixed sleep.
    listener_closed: (Mutex<bool>, Condvar),
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Set the stop flag, poke the accept loop awake, and half-close
    /// every open connection's read side. Idempotent.
    fn request_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Track a connection for shutdown wake-up.
    fn register(&self, conn: &TcpStream) -> Option<u64> {
        let clone = conn.try_clone().ok()?;
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, clone);
        // A stop between the flag check and registration would miss this
        // connection; re-check so it is woken like the rest.
        if self.stopping() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        Some(id)
    }

    /// Record that the listener socket is gone and wake every waiter.
    fn notify_listener_closed(&self) {
        let (flag, cv) = &self.listener_closed;
        *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    fn unregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
        }
    }
}

/// Handle to a running frame server. Dropping it shuts the server down.
pub struct WireServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` on a pool of `opts.workers` threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn WireService>,
        opts: ServerOptions,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let admission = opts
            .admission
            .clone()
            .unwrap_or_else(|| Arc::new(AdmissionController::unlimited()));
        let shared = Arc::new(Shared {
            addr: listener.local_addr()?,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            admission,
            listener_closed: (Mutex::new(false), Condvar::new()),
        });
        let (tx, rx) = unbounded::<TcpStream>();
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let service = service.clone();
                let opts = opts.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("netdird-worker-{i}"))
                    .spawn(move || worker_loop(rx, service, opts, shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let accept = {
            let shared = shared.clone();
            let max_pending = opts.max_pending;
            let max_frame = opts.max_frame;
            std::thread::Builder::new()
                .name("netdird-accept".into())
                .spawn(move || {
                    loop {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                if shared.stopping() {
                                    break; // the wake-up self-connection
                                }
                                // Admission at the door: when every
                                // worker is busy and the queue is at its
                                // bound, shed this connection with a
                                // fast Busy frame instead of letting the
                                // backlog (and every queued client's
                                // latency) grow without limit.
                                let depth = shared.pending.load(Ordering::Relaxed);
                                if max_pending > 0 && depth >= max_pending as u64 {
                                    busy_reject(conn, &shared, max_frame);
                                    continue;
                                }
                                let depth = shared.pending.fetch_add(1, Ordering::Relaxed) + 1;
                                shared.admission.set_queue_depth(depth);
                                let _ = tx.send(conn);
                            }
                            Err(_) => {
                                if shared.stopping() {
                                    break;
                                }
                                // Transient accept errors (e.g. aborted
                                // handshake) are not fatal.
                            }
                        }
                    }
                    // Close the listener *before* signalling, so a
                    // woken waiter's connect attempt cannot land in the
                    // dead socket's backlog.
                    drop(listener);
                    shared.notify_listener_closed();
                    // tx drops here; workers drain the queue and exit.
                })?
        };
        Ok(WireServer {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The admission policy this server consults (the one passed in
    /// [`ServerOptions::admission`], or the default permissive one).
    pub fn admission(&self) -> Arc<AdmissionController> {
        self.shared.admission.clone()
    }

    /// Has shutdown been requested (locally or by a remote frame)?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Block until the accept thread has closed the listening socket —
    /// after which fresh connects are refused — or `timeout` elapses.
    /// Returns whether the listener is known closed. Wakes the moment
    /// the accept thread signals (condvar), so shutdown observers are
    /// not quantized to a polling interval.
    pub fn wait_listener_closed(&self, timeout: Duration) -> bool {
        let (flag, cv) = &self.shared.listener_closed;
        let closed = flag.lock().unwrap_or_else(|e| e.into_inner());
        let (closed, _timeout) = cv
            .wait_timeout_while(closed, timeout, |c| !*c)
            .unwrap_or_else(|e| e.into_inner());
        *closed
    }

    /// Stop accepting, wake parked readers, let requests already being
    /// processed answer, and join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_stop();
        self.join();
    }

    /// Block until every server thread has exited (used by the daemon
    /// binary to park the main thread until a remote Shutdown arrives).
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shed one connection at the door: count the rejection, write a `Busy`
/// frame, and close. The pending request frame is drained first —
/// closing with unread bytes in the receive buffer turns the close into
/// a TCP reset, which can discard the very `Busy` frame the client
/// needs to see. Drain and write happen on a short-lived detached
/// thread with tight timeouts: the accept thread must keep admitting
/// (and shedding) at full speed no matter how slowly a shed peer reads,
/// and each shed thread is bounded to ~1s of life.
fn busy_reject(mut conn: TcpStream, shared: &Shared, max_frame: usize) {
    let retry = shared.admission.reject_queue_full();
    let retry_after_ms = u32::try_from(retry.as_millis()).unwrap_or(u32::MAX).max(1);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = conn.set_nodelay(true);
    let shed = move || {
        let _ = read_frame(&mut conn, max_frame);
        let _ = write_frame(
            &mut conn,
            &WireResponse::Busy { retry_after_ms }.encode(),
            max_frame,
        );
    };
    if std::thread::Builder::new()
        .name("netdird-shed".into())
        .spawn(shed)
        .is_err()
    {
        // Out of threads: the connection drops unanswered, which the
        // client classifies as retryable i/o weather anyway.
    }
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    service: Arc<dyn WireService>,
    opts: ServerOptions,
    shared: Arc<Shared>,
) {
    for conn in rx.iter() {
        let depth = shared.pending.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        shared.admission.set_queue_depth(depth);
        let peer = conn.peer_addr().ok();
        let id = shared.register(&conn);
        // A failing connection (truncated frame, oversized header, reset
        // peer) costs exactly that connection: log it and serve the next
        // one. The daemon itself must be unkillable from the outside.
        if let Err(e) = serve_conn(conn, &service, &opts, &shared) {
            if !shared.stopping() {
                match peer {
                    Some(p) => eprintln!("netdird: connection {p}: {e}"),
                    None => eprintln!("netdird: connection error: {e}"),
                }
            }
        }
        shared.unregister(id);
        if shared.stopping() {
            break;
        }
    }
}

/// Run the service with panic containment: a service panic (poisoned
/// lock, indexing slip in a query operator) must not take the calling
/// thread down with it — that would shrink the worker pool permanently,
/// one panic at a time.
fn contained(service: &dyn WireService, req: WireRequest) -> WireResponse {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.handle(req))) {
        Ok(resp) => resp,
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            WireResponse::Error(format!("internal error: {detail}"))
        }
    }
}

/// Run one admitted request, enforcing the execution deadline if one is
/// configured.
///
/// With a deadline, the service runs on a watched thread. If the budget
/// expires first, the worker walks away with `DeadlineExceeded` — the
/// runaway evaluation cannot be cancelled mid-page-scan, so it finishes
/// detached (tracked by the `netdir_deadline_abandoned` gauge) and its
/// eventual result is discarded. The admission inflight cap is what
/// bounds how many runaways can pile up.
fn execute(service: &Arc<dyn WireService>, req: WireRequest, shared: &Shared,
           deadline: Option<Duration>) -> WireResponse {
    let Some(budget) = deadline else {
        return contained(service.as_ref(), req);
    };
    let budget_ms = u32::try_from(budget.as_millis()).unwrap_or(u32::MAX);
    let (tx, rx) = unbounded::<WireResponse>();
    let abandoned = Arc::new(Mutex::new(false));
    let handle = {
        let service = service.clone();
        let admission = shared.admission.clone();
        let abandoned = abandoned.clone();
        std::thread::Builder::new()
            .name("netdird-eval".into())
            .spawn(move || {
                let resp = contained(service.as_ref(), req);
                let left_behind = abandoned.lock().unwrap_or_else(|e| e.into_inner());
                if *left_behind {
                    admission.abandon_end();
                } else {
                    let _ = tx.send(resp);
                }
            })
    };
    let Ok(handle) = handle else {
        return WireResponse::Error("internal error: cannot spawn evaluator".into());
    };
    let clock = shared.admission.clock().clone();
    let started = clock.now();
    match rx.recv_timeout(budget) {
        Ok(resp) => {
            shared
                .admission
                .record_deadline_used(clock.now().saturating_sub(started));
            let _ = handle.join();
            resp
        }
        Err(_) => {
            // Hold the flag while double-checking the channel: the
            // evaluator either already sent (we take its answer) or will
            // observe the flag and account itself as abandoned.
            let mut left_behind = abandoned.lock().unwrap_or_else(|e| e.into_inner());
            if let Ok(resp) = rx.try_recv() {
                drop(left_behind);
                shared
                    .admission
                    .record_deadline_used(clock.now().saturating_sub(started));
                let _ = handle.join();
                return resp;
            }
            *left_behind = true;
            drop(left_behind);
            shared.admission.record_deadline_exceeded();
            shared.admission.abandon_begin();
            WireResponse::DeadlineExceeded { budget_ms }
        }
    }
}

/// Result entries shipped by a response, for anti-enumeration charging.
fn entries_shipped(resp: &WireResponse) -> u64 {
    match resp {
        WireResponse::Entries(e) => e.len() as u64,
        WireResponse::Partial { entries, .. } => entries.len() as u64,
        WireResponse::Analyzed { entries, .. } => entries.len() as u64,
        _ => 0,
    }
}

fn serve_conn(
    mut conn: TcpStream,
    service: &Arc<dyn WireService>,
    opts: &ServerOptions,
    shared: &Shared,
) -> io::Result<()> {
    conn.set_read_timeout(opts.read_timeout)?;
    conn.set_write_timeout(opts.write_timeout)?;
    let _ = conn.set_nodelay(true);
    let peer_ip: Option<IpAddr> = conn.peer_addr().ok().map(|a| a.ip());
    loop {
        if shared.stopping() {
            break;
        }
        let Some(payload) = read_frame(&mut conn, opts.max_frame)? else {
            break; // clean end of session
        };
        let resp = match WireRequest::decode(&payload) {
            Ok(WireRequest::Shutdown) => {
                // Acknowledge first so the requester is not left hanging,
                // then stop the whole server.
                let _ = write_frame(&mut conn, &WireResponse::Pong.encode(), opts.max_frame);
                shared.request_stop();
                break;
            }
            Ok(req) => match shared.admission.admit(peer_ip) {
                Err(rejection) => WireResponse::Busy {
                    retry_after_ms: rejection.retry_after_ms(),
                },
                Ok(()) => {
                    let resp = execute(service, req, shared, opts.request_deadline);
                    shared
                        .admission
                        .note_results(peer_ip, entries_shipped(&resp));
                    shared.admission.release();
                    resp
                }
            },
            Err(e) => WireResponse::Error(format!("malformed request: {e}")),
        };
        write_frame(&mut conn, &resp.encode(), opts.max_frame)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    /// Echo-style service: answers Ping, errors on everything else.
    struct PingOnly;
    impl WireService for PingOnly {
        fn handle(&self, req: WireRequest) -> WireResponse {
            match req {
                WireRequest::Ping => WireResponse::Pong,
                other => WireResponse::Error(format!("unsupported: {other:?}")),
            }
        }
    }

    /// One request/response exchange, with every failure surfaced as a
    /// `Result` (no unwraps: tests asserting on daemon survival need to
    /// distinguish "server answered garbage" from "helper panicked").
    fn call(conn: &mut TcpStream, req: &WireRequest) -> io::Result<WireResponse> {
        write_frame(conn, &req.encode(), DEFAULT_MAX_FRAME)?;
        let payload = read_frame(conn, DEFAULT_MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed without answering",
            )
        })?;
        WireResponse::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    #[test]
    fn serves_many_requests_per_connection() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        for _ in 0..10 {
            assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        }
        drop(conn);
        srv.shutdown();
    }

    #[test]
    fn malformed_payload_gets_error_but_connection_survives() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        write_frame(&mut conn, &[99, 1, 2], DEFAULT_MAX_FRAME).unwrap();
        let payload = read_frame(&mut conn, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(
            WireResponse::decode(&payload).unwrap(),
            WireResponse::Error(_)
        ));
        // Still serving on the same connection.
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    #[test]
    fn oversized_frame_drops_the_connection() {
        let opts = ServerOptions {
            max_frame: 64,
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), opts).unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // Hand-roll a header announcing far more than the cap.
        conn.write_all(&(1_000_000u32).to_be_bytes()).unwrap();
        conn.write_all(&[0u8; 16]).unwrap();
        // Server closes without replying.
        assert!(matches!(
            read_frame(&mut conn, DEFAULT_MAX_FRAME),
            Ok(None) | Err(_)
        ));
        srv.shutdown();
    }

    #[test]
    fn garbage_bytes_cost_only_their_own_connection() {
        // Regression: transport-level damage on one connection (here a
        // header announcing ~4 GiB, then junk) must be contained — the
        // worker logs and closes that connection; a fresh connection is
        // served normally.
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        bad.write_all(b"this is not a frame").unwrap();
        // The server drops the damaged connection without replying.
        assert!(matches!(
            read_frame(&mut bad, DEFAULT_MAX_FRAME),
            Ok(None) | Err(_)
        ));
        drop(bad);
        // The daemon survives: a fresh connection gets real service.
        let mut good = TcpStream::connect(addr).unwrap();
        assert_eq!(call(&mut good, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    #[test]
    fn remote_shutdown_is_acknowledged_and_stops_the_server() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        assert_eq!(
            call(&mut conn, &WireRequest::Shutdown).unwrap(),
            WireResponse::Pong
        );
        srv.join();
        assert!(srv.is_stopping());
        // Wait on the accept thread's closed-listener signal (no fixed
        // sleep): fresh connections are then refused (or reset).
        assert!(srv.wait_listener_closed(Duration::from_secs(5)));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn shutdown_does_not_wait_out_idle_connections() {
        // An idle client holds a connection open; shutdown must wake the
        // worker parked in read rather than wait for the 30s timeout.
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        let started = Instant::now();
        srv.shutdown(); // conn is still open and idle
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown blocked on an idle connection for {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn panicking_service_answers_error_and_keeps_serving() {
        /// Panics on Stats, answers Ping — exercises panic containment.
        struct Grenade;
        impl WireService for Grenade {
            fn handle(&self, req: WireRequest) -> WireResponse {
                match req {
                    WireRequest::Ping => WireResponse::Pong,
                    _ => panic!("service blew up"),
                }
            }
        }
        let opts = ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(Grenade), opts).unwrap();
        let addr = srv.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        // The panic becomes an error response on the same connection...
        match call(&mut conn, &WireRequest::Stats).unwrap() {
            WireResponse::Error(e) => assert!(e.contains("service blew up"), "got: {e}"),
            other => panic!("expected error, got {other:?}"),
        }
        // ...and neither the connection nor the worker pool is lost:
        // more panics than workers, then normal service, all succeed.
        for _ in 0..4 {
            assert!(matches!(
                call(&mut conn, &WireRequest::Stats).unwrap(),
                WireResponse::Error(_)
            ));
        }
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        let mut fresh = TcpStream::connect(addr).unwrap();
        assert_eq!(call(&mut fresh, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        srv.shutdown();
    }

    /// Sleeps on Stats (a stand-in for an expensive query), answers
    /// Ping instantly.
    struct SlowStats(Duration);
    impl WireService for SlowStats {
        fn handle(&self, req: WireRequest) -> WireResponse {
            match req {
                WireRequest::Ping => WireResponse::Pong,
                WireRequest::Stats => {
                    std::thread::sleep(self.0);
                    WireResponse::Stats("done".into())
                }
                other => WireResponse::Error(format!("unsupported: {other:?}")),
            }
        }
    }

    #[test]
    fn silent_connection_cannot_pin_a_worker() {
        // Satellite regression: a client that connects and sends nothing
        // must cost the single worker at most the read timeout.
        let opts = ServerOptions {
            workers: 1,
            read_timeout: Some(Duration::from_millis(100)),
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), opts).unwrap();
        let addr = srv.local_addr();
        let silent = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let the worker adopt it
        let started = Instant::now();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "silent connection pinned the worker for {:?}",
            started.elapsed()
        );
        drop(silent);
        srv.shutdown();
    }

    #[test]
    fn full_accept_queue_is_shed_with_busy() {
        // One worker, a queue of one: a slow request occupies the
        // worker, a second connection fills the queue, and the third is
        // answered Busy by the accept thread without any worker's help.
        let opts = ServerOptions {
            workers: 1,
            max_pending: 1,
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(SlowStats(Duration::from_millis(600))),
            opts,
        )
        .unwrap();
        let addr = srv.local_addr();
        let mut busy_conn = TcpStream::connect(addr).unwrap();
        write_frame(&mut busy_conn, &WireRequest::Stats.encode(), DEFAULT_MAX_FRAME).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // worker now inside the sleep
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // accept thread queued it
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The Busy frame arrives without the client sending anything.
        let payload = read_frame(&mut shed, DEFAULT_MAX_FRAME).unwrap().unwrap();
        match WireResponse::decode(&payload).unwrap() {
            WireResponse::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected Busy at the door, got {other:?}"),
        }
        assert!(srv.admission().snapshot().busy_rejections >= 1);
        // The slow request itself was never harmed.
        let payload = read_frame(&mut busy_conn, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(
            WireResponse::decode(&payload).unwrap(),
            WireResponse::Stats("done".into())
        );
        srv.shutdown();
    }

    #[test]
    fn blown_deadline_frees_the_worker_and_reports_it() {
        let opts = ServerOptions {
            workers: 1,
            request_deadline: Some(Duration::from_millis(100)),
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(SlowStats(Duration::from_secs(2))),
            opts,
        )
        .unwrap();
        let addr = srv.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        assert_eq!(
            call(&mut conn, &WireRequest::Stats).unwrap(),
            WireResponse::DeadlineExceeded { budget_ms: 100 }
        );
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "deadline did not release the worker: {:?}",
            started.elapsed()
        );
        // The (single) worker is free while the runaway still sleeps.
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        let snap = srv.admission().snapshot();
        assert_eq!(snap.deadline_exceeded, 1);
        srv.shutdown();
    }

    #[test]
    fn in_budget_requests_are_untouched_by_the_deadline() {
        let opts = ServerOptions {
            request_deadline: Some(Duration::from_secs(5)),
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(SlowStats(Duration::from_millis(10))),
            opts,
        )
        .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        assert_eq!(
            call(&mut conn, &WireRequest::Stats).unwrap(),
            WireResponse::Stats("done".into())
        );
        assert_eq!(srv.admission().snapshot().deadline_exceeded, 0);
        srv.shutdown();
    }

    #[test]
    fn rate_limited_peer_gets_busy_on_the_open_connection() {
        use netdir_obs::{ManualClock, MetricsRegistry};
        use netdir_server::{AdmissionConfig, RateLimit};
        // A frozen manual clock: the bucket never refills, so outcomes
        // are exact — two admitted, the rest Busy.
        let controller = Arc::new(AdmissionController::new(
            AdmissionConfig {
                rate: Some(RateLimit { per_sec: 1, burst: 2 }),
                ..AdmissionConfig::default()
            },
            Arc::new(ManualClock::new()),
            &MetricsRegistry::new(),
        ));
        let opts = ServerOptions {
            admission: Some(controller.clone()),
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), opts).unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
        // Shed requests answer Busy but the connection stays usable.
        for _ in 0..3 {
            match call(&mut conn, &WireRequest::Ping).unwrap() {
                WireResponse::Busy { retry_after_ms } => assert!(retry_after_ms >= 1000),
                other => panic!("expected Busy, got {other:?}"),
            }
        }
        let snap = controller.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.rate_limited, 3);
        assert_eq!(snap.busy_rejections, 3);
        srv.shutdown();
    }

    #[test]
    fn enumeration_cap_counts_shipped_entries() {
        use netdir_obs::{ManualClock, MetricsRegistry};
        use netdir_server::{AdmissionConfig, EnumCap};
        /// Ships five (fake) entries per request.
        struct FiveEntries;
        impl WireService for FiveEntries {
            fn handle(&self, _req: WireRequest) -> WireResponse {
                WireResponse::Entries(vec![vec![0u8; 8]; 5])
            }
        }
        let controller = Arc::new(AdmissionController::new(
            AdmissionConfig {
                enumeration: Some(EnumCap {
                    max_entries: 9,
                    window: Duration::from_secs(60),
                }),
                ..AdmissionConfig::default()
            },
            Arc::new(ManualClock::new()),
            &MetricsRegistry::new(),
        ));
        let opts = ServerOptions {
            admission: Some(controller.clone()),
            ..ServerOptions::default()
        };
        let mut srv = WireServer::bind("127.0.0.1:0", Arc::new(FiveEntries), opts).unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // 5 entries, then 10 — the second request crosses the cap only
        // after shipping, so it succeeds; the third is shed.
        for _ in 0..2 {
            assert!(matches!(
                call(&mut conn, &WireRequest::Ping).unwrap(),
                WireResponse::Entries(_)
            ));
        }
        assert!(matches!(
            call(&mut conn, &WireRequest::Ping).unwrap(),
            WireResponse::Busy { .. }
        ));
        assert_eq!(controller.snapshot().enum_capped, 1);
        srv.shutdown();
    }

    #[test]
    fn shutdown_drains_the_inflight_request() {
        // Graceful drain: a request being processed when shutdown is
        // requested still gets its full response.
        let mut srv = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(SlowStats(Duration::from_millis(300))),
            ServerOptions::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        write_frame(&mut conn, &WireRequest::Stats.encode(), DEFAULT_MAX_FRAME).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // request is now executing
        srv.shutdown(); // blocks until every thread exits
        let payload = read_frame(&mut conn, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(
            WireResponse::decode(&payload).unwrap(),
            WireResponse::Stats("done".into())
        );
    }

    #[test]
    fn concurrent_connections_are_served_in_parallel() {
        let mut srv =
            WireServer::bind("127.0.0.1:0", Arc::new(PingOnly), ServerOptions::default())
                .unwrap();
        let addr = srv.local_addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    for _ in 0..20 {
                        assert_eq!(call(&mut conn, &WireRequest::Ping).unwrap(), WireResponse::Pong);
                    }
                });
            }
        });
        srv.shutdown();
    }
}
