//! Length-prefixed framing.
//!
//! Every message on a netdir connection is one *frame*: a 4-byte
//! big-endian payload length followed by the payload. Frames make TCP's
//! byte stream a message stream; the payload encoding is [`crate::codec`]'s
//! business.
//!
//! Both directions enforce a maximum frame size so a malformed or
//! hostile peer cannot make the other side allocate unboundedly: readers
//! reject the frame before allocating, writers refuse to emit one the
//! peer would reject.

use std::io::{self, Read, Write};

/// Default maximum payload size (16 MiB), comfortably above any response
/// the experiment harness produces.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes a payload occupies on the wire, header included.
pub fn frame_len(payload_len: usize) -> u64 {
    4 + payload_len as u64
}

/// Write one frame. Fails with `InvalidInput` if the payload exceeds
/// `max_frame` (nothing is written in that case).
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> io::Result<()> {
    if payload.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "refusing to send {}-byte frame (max {max_frame})",
                payload.len()
            ),
        ));
    }
    let header = (payload.len() as u32).to_be_bytes();
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload.
///
/// * `Ok(None)` — the peer closed the connection cleanly *between*
///   frames (normal end of a session).
/// * `Err(UnexpectedEof)` — the stream ended mid-frame (truncation).
/// * `Err(InvalidData)` — the header announces more than `max_frame`
///   bytes; nothing is allocated for such a frame.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    // Read the first header byte by hand so clean EOF at a frame
    // boundary is distinguishable from truncation inside one.
    let mut got = 0;
    while got == 0 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds max {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, &[0xff; 300], DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![0xff; 300]
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(2); // half a header
        let err = read_frame(&mut Cursor::new(buf), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(7); // header + 3 of 11 payload bytes
        let err = read_frame(&mut Cursor::new(buf), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        // Reader side: a header claiming 1 GiB against a 1 KiB cap.
        let mut buf = (1u32 << 30).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Writer side refuses symmetric overage.
        let mut out = Vec::new();
        let err = write_frame(&mut out, &[0u8; 2048], 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing may be written for a rejected frame");
    }

    #[test]
    fn max_frame_boundary_is_exact() {
        let max = 1024usize;
        // Exactly at the cap: accepted by both directions.
        let payload = vec![7u8; max];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, max).unwrap();
        assert_eq!(
            read_frame(&mut Cursor::new(&buf), max).unwrap().unwrap(),
            payload
        );
        // One under: accepted.
        let payload = vec![7u8; max - 1];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, max).unwrap();
        assert_eq!(
            read_frame(&mut Cursor::new(&buf), max).unwrap().unwrap(),
            payload
        );
        // One over, writer side: refused before any byte is written.
        let mut out = Vec::new();
        let err = write_frame(&mut out, &vec![7u8; max + 1], max).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
        // One over, reader side: a hand-rolled header announcing
        // max+1 bytes is rejected before allocating the payload.
        let mut buf = ((max as u32) + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(&vec![7u8; max + 1]);
        let err = read_frame(&mut Cursor::new(buf), max).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn header_is_big_endian() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7; 5], DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        assert_eq!(frame_len(5), buf.len() as u64);
    }
}
