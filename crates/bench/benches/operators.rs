//! Criterion microbenchmarks over the evaluation operators.
//!
//! Wall-clock companions to the I/O experiments: boolean merges (E15),
//! the six stack operators (E4), aggregate selection (E5/E6), the
//! embedded-reference joins (E7), and atomic evaluation through the
//! indices. Run with `cargo bench --workspace`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdir_bench::setup;
use netdir_index::IndexedDirectory;
use netdir_model::{AttrName, Dn, Entry};
use netdir_pager::{PagedList, Pager};
use netdir_query::agg::CompiledAggFilter;
use netdir_query::agg_simple::simple_agg_select;
use netdir_query::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
use netdir_query::boolean::{merge, BoolOp};
use netdir_query::er_join::er_select;
use netdir_query::hs_stack::{hs_select, HsOp};
use netdir_query::RefOp;
use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::{ref_graph, synth_forest, RefGraphParams, SynthParams};

const N: usize = 4_000;

fn bench_boolean(c: &mut Criterion) {
    let pager = setup::pager();
    let (l1, l2) = setup::red_blue_lists(&pager, N, 1);
    let mut g = c.benchmark_group("boolean");
    for (op, name) in [(BoolOp::And, "and"), (BoolOp::Or, "or"), (BoolOp::Diff, "diff")] {
        g.bench_function(name, |b| {
            b.iter(|| merge(&pager, op, &l1, &l2).unwrap());
        });
    }
    g.finish();
}

fn bench_hs_ops(c: &mut Criterion) {
    let pager = setup::pager();
    let (l1, l2) = setup::red_blue_lists(&pager, N, 2);
    let filter = CompiledAggFilter::exists_witness();
    let mut g = c.benchmark_group("hierarchical_selection");
    for (op, name) in [
        (HsOp::Parents, "p"),
        (HsOp::Children, "c"),
        (HsOp::Ancestors, "a"),
        (HsOp::Descendants, "d"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| hs_select(&pager, op, &l1, &l2, None, &filter).unwrap());
        });
    }
    for (op, name) in [
        (HsOp::AncestorsConstrained, "ac"),
        (HsOp::DescendantsConstrained, "dc"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| hs_select(&pager, op, &l1, &l2, Some(&l1), &filter).unwrap());
        });
    }
    g.finish();
}

fn bench_hs_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("hs_descendants_scaling");
    g.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let pager = setup::pager();
        let (l1, l2) = setup::red_blue_lists(&pager, n, 3);
        let filter = CompiledAggFilter::exists_witness();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hs_select(&pager, HsOp::Descendants, &l1, &l2, None, &filter).unwrap());
        });
    }
    g.finish();
}

fn bench_agg(c: &mut Criterion) {
    let pager = setup::pager();
    let (l1, l2) = setup::red_blue_lists(&pager, N, 4);
    let mut g = c.benchmark_group("aggregate_selection");
    let simple = CompiledAggFilter::compile(
        &AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Max,
                AttrRef::Own("weight".into()),
            )),
            op: IntOp::Eq,
            rhs: AggAttribute::EntrySet(
                Aggregate::Max,
                Box::new(EntryAgg::Agg(Aggregate::Max, AttrRef::Own("weight".into()))),
            ),
        },
        false,
    )
    .unwrap();
    g.bench_function("g_max_of_max", |b| {
        b.iter(|| simple_agg_select(&pager, &l1, &simple).unwrap());
    });
    let structural = CompiledAggFilter::compile(
        &AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
            op: IntOp::Eq,
            rhs: AggAttribute::EntrySet(Aggregate::Max, Box::new(EntryAgg::CountWitnesses)),
        },
        true,
    )
    .unwrap();
    g.bench_function("d_max_count_witnesses", |b| {
        b.iter(|| hs_select(&pager, HsOp::Descendants, &l1, &l2, None, &structural).unwrap());
    });
    g.finish();
}

fn er_lists(pager: &Pager, n: usize, m: usize) -> (PagedList<Entry>, PagedList<Entry>) {
    let dir = ref_graph(
        RefGraphParams {
            sources: n,
            targets: n,
            refs_per_source: m,
        },
        5,
    );
    let src = dir
        .iter_sorted()
        .filter(|e| e.has_class(&"source".into()))
        .cloned();
    let tgt = dir
        .iter_sorted()
        .filter(|e| e.has_class(&"target".into()))
        .cloned();
    (
        PagedList::from_iter(pager, src).unwrap(),
        PagedList::from_iter(pager, tgt).unwrap(),
    )
}

fn bench_er(c: &mut Criterion) {
    let pager = setup::pager();
    let (src, tgt) = er_lists(&pager, N / 2, 2);
    let filter = CompiledAggFilter::exists_witness();
    let attr: AttrName = "ref".into();
    let mut g = c.benchmark_group("embedded_references");
    g.sample_size(20);
    g.bench_function("vd", |b| {
        b.iter(|| er_select(&pager, RefOp::ValueDn, &src, &tgt, &attr, &filter).unwrap());
    });
    g.bench_function("dv", |b| {
        b.iter(|| er_select(&pager, RefOp::DnValue, &tgt, &src, &attr, &filter).unwrap());
    });
    g.finish();
}

fn bench_atomic(c: &mut Criterion) {
    let dir = synth_forest(
        SynthParams {
            entries: N,
            max_depth: 8,
            red_fraction: 0.1,
            blue_fraction: 0.5,
        },
        6,
    );
    let pager = setup::pager();
    let idx = IndexedDirectory::build(&pager, &dir).unwrap();
    let base = Dn::parse("dc=synth").unwrap();
    let mut g = c.benchmark_group("atomic_evaluation");
    g.bench_function("eq_probe", |b| {
        b.iter(|| {
            idx.evaluate_atomic(&base, Scope::Sub, &AtomicFilter::eq("kind", "red"))
                .unwrap()
        });
    });
    g.bench_function("int_range_probe", |b| {
        b.iter(|| {
            idx.evaluate_atomic(
                &base,
                Scope::Sub,
                &AtomicFilter::int_cmp("weight", IntOp::Lt, 5),
            )
            .unwrap()
        });
    });
    g.bench_function("scope_scan", |b| {
        b.iter(|| {
            idx.evaluate_scan(&base, Scope::Sub, &AtomicFilter::eq("kind", "red"))
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_boolean,
    bench_hs_ops,
    bench_hs_scaling,
    bench_agg,
    bench_er,
    bench_atomic
);
criterion_main!(benches);
