//! The instrumented benchmark suite behind `run_experiments --smoke`.
//!
//! Runs one analyzed query per language level (L0–L3) against an
//! indexed directory, then drives a loopback TCP cluster through the
//! `QueryAnalyze` and `Stats` frames — so a single fast pass touches
//! every observability surface this workspace ships: operator traces,
//! the metrics registry, and the wire protocol's stats exposition. The
//! collected registry plus per-query trace summaries become the
//! [`BenchReport`](crate::report::BenchReport) that `BENCH_*.json`
//! persists.

use crate::load::{self, LoadConfig};
use crate::mutation;
use crate::par::{self, SweepConfig};
use crate::planner;
use crate::report::{BenchReport, QueryReport};
use crate::storage;
use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry};
use netdir_obs::{names, MetricsRegistry};
use netdir_pager::Pager;
use netdir_query::parse_query;
use netdir_server::metrics as bridge;
use netdir_server::ClusterBuilder;
use netdir_wire::WireCluster;

fn dn(s: &str) -> Dn {
    Dn::parse(s).expect("fixture DN")
}

/// The distributed-evaluation fixture: three zones under `dc=com` plus
/// a disjoint `dc=org`, a traffic profile in the `att` zone, and an SLA
/// policy in the `research` zone referencing it across the zone cut.
fn fixture() -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).expect("fixture entry");
    let plain = |s: &str| Entry::builder(dn(s)).class("thing").build().expect("entry");
    let person = |s: &str, sn: &str| {
        Entry::builder(dn(s))
            .class("thing")
            .attr("surName", sn)
            .build()
            .expect("entry")
    };
    add(plain("dc=com"));
    add(plain("dc=att, dc=com"));
    add(plain("ou=people, dc=att, dc=com"));
    add(person("uid=jag, ou=people, dc=att, dc=com", "jagadish"));
    add(plain("dc=research, dc=att, dc=com"));
    add(plain("ou=people, dc=research, dc=att, dc=com"));
    add(person("uid=jag2, ou=people, dc=research, dc=att, dc=com", "jagadish"));
    add(plain("dc=org"));
    add(plain("ou=tp, dc=att, dc=com"));
    add(
        Entry::builder(dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .expect("entry"),
    );
    add(
        Entry::builder(dn("SLAPolicyName=mail, dc=research, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLATPRef", dn("TPName=mail, ou=tp, dc=att, dc=com"))
            .build()
            .expect("entry"),
    );
    d
}

/// One query per language level, each nonempty against [`fixture`].
fn level_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "L0",
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
                (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        ),
        (
            "L1",
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
        ),
        (
            "L2",
            "(c (dc=com ? sub ? objectClass=thing) \
                (dc=com ? sub ? objectClass=thing) \
                count($2) > 1)",
        ),
        (
            "L3",
            "(vd (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                 (dc=att, dc=com ? sub ? sourcePort=25) \
                 SLATPRef)",
        ),
    ]
}

/// Run the instrumented suite with the smoke-sized degree sweep and
/// return its report (mode `"smoke"`; the caller may relabel it and
/// append experiment results).
///
/// Panics on any failure — a benchmark that cannot run its own smoke
/// suite should fail loudly, not emit a hollow report.
pub fn instrumented_suite() -> BenchReport {
    instrumented_suite_with(&par::smoke_config(), &load::smoke_config())
}

/// [`instrumented_suite`] with explicit degree-sweep and overload-sweep
/// configurations (the full run swaps in [`par::full_config`] and
/// [`load::full_config`]).
pub fn instrumented_suite_with(sweep: &SweepConfig, load_cfg: &LoadConfig) -> BenchReport {
    let registry = MetricsRegistry::new();
    bridge::register_all(&registry);
    let dir = fixture();
    let mut queries = Vec::new();

    // Local phase: one analyzed query per level on an indexed store.
    // A fresh pager per level keeps each trace's observed I/O free of
    // the previous level's buffer-pool state; deliberately small pages
    // and frame budget so the traces record real page traffic instead
    // of an all-resident pool.
    for (level, text) in level_queries() {
        let pager = Pager::new(256, 8);
        let idx = IndexedDirectory::build(&pager, &dir).expect("build index");
        let query = parse_query(text).expect("parse level query");
        pager.reset_io(); // charge the query, not the index build
        let (_, trace) = netdir_query::analyze(&idx, &pager, &query).expect("analyze");
        bridge::absorb_io(&registry, pager.io());
        bridge::record_query(&registry, trace.elapsed_nanos, trace.observed_io);
        queries.push(QueryReport::from_trace(level, &trace));
    }

    // Wire phase: the same L2 query over a loopback TCP cluster, via
    // the QueryAnalyze frame, then a Stats frame. This exercises real
    // sockets, the frame codec, and the daemon-side registry.
    let builder = ClusterBuilder::new()
        .server("root", dn("dc=com"))
        .server("att", dn("dc=att, dc=com"))
        .server("research", dn("dc=research, dc=att, dc=com"))
        .server("org", dn("dc=org"));
    let mut wire = WireCluster::launch_default(builder, &dir).expect("launch loopback cluster");
    let att = wire.server_id("att").expect("server att");
    let client = wire.client(att);
    let (entries, trace) = client
        .query_analyze("att", level_queries()[2].1)
        .expect("QueryAnalyze over TCP");
    assert_eq!(
        trace.root_entries(),
        entries.len() as u64,
        "wire trace disagrees with shipped entries"
    );
    queries.push(QueryReport::from_trace("L2/tcp", &trace));
    bridge::record_query(&registry, trace.elapsed_nanos, trace.observed_io);

    let exposition = client.stats().expect("Stats over TCP");
    for name in names::TRACKED {
        assert!(
            exposition.contains(name),
            "daemon stats exposition is missing {name}"
        );
    }
    // Fold the cluster's transport-layer ledgers into the report so
    // net/retry/breaker series carry real loopback traffic.
    bridge::sync_net(&registry, wire.net().snapshot());
    bridge::sync_retry(&registry, wire.retry_stats().snapshot());
    bridge::sync_health(&registry, wire.router().health().transitions());
    wire.shutdown();

    // Parallel phase: the degree sweep, recording worker/wave series
    // into the same registry the report flattens.
    let parallel = par::degree_sweep(sweep, &registry);

    // Write-path phase: apply a burst of mutation batches through a
    // journal and replay its WAL, so the wal/mutation/epoch series
    // carry real work.
    let mutation = mutation::smoke_suite(&registry);

    // Overload phase: the closed-loop load sweep, admission-controlled
    // daemon vs unbounded baseline, with its shedding invariants
    // asserted (a sweep that did not saturate is a broken benchmark).
    let load_rows = load::overload_sweep(load_cfg, &registry);
    load::assert_sweep_shape(&load_rows);

    // Planner phase: the chosen-vs-naive sweep over the E16 suite plus
    // the showcase cells, with the optimizer's byte-identity and
    // never-read-more contracts asserted per cell.
    let planner_rows = planner::planner_sweep(sweep, &registry);

    // Storage phase: the compression-footprint and scan-mix cells, with
    // the storage pass's byte-identity, ≥20% cold-read reduction, and
    // scan-resistance claims asserted per cell.
    let storage_rows = storage::storage_sweep(sweep, &registry);

    let mut report = BenchReport::new("smoke", &registry);
    report.queries = queries;
    report.parallel = parallel;
    report.mutation = mutation;
    report.load = load_rows;
    report.planner = planner_rows;
    report.storage = storage_rows;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_bench_json;

    #[test]
    fn smoke_suite_emits_a_valid_nonempty_report() {
        let report = instrumented_suite();
        assert_eq!(report.queries.len(), 5, "L0–L3 plus the TCP pass");
        assert!(report.queries.iter().all(|q| q.entries > 0));
        assert!(report.queries.iter().all(|q| q.spans > 0));
        let text = report.to_json();
        validate_bench_json(&text).unwrap();
        // The suite really moved pages and queries through the registry.
        let get = |name: &str| {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert!(get("netdir_queries_total") >= 5);
        // The degree sweep ran and recorded its schedule series.
        assert!(!report.parallel.is_empty());
        assert!(get("netdir_par_workers_spawned_total") > 0);
        // The fixture fits in the buffer pool, so physical reads can be
        // zero — but every operator output list allocates fresh pages.
        assert!(get("netdir_io_allocs_total") > 0);
        assert!(get("netdir_net_requests_total") > 0);
        // The write-path phase logged and replayed real batches.
        assert_eq!(report.mutation.len(), 2);
        assert!(get("netdir_mutation_batches_total") > 0);
        assert!(get("netdir_wal_fsyncs_total") > 0);
        assert!(get("netdir_wal_replay_us_count") > 0);
        // The overload sweep ran both modes at every client count and
        // its admission decisions landed in the registry.
        assert_eq!(
            report.load.len(),
            2 * crate::load::smoke_config().client_sweep.len()
        );
        assert!(get("netdir_admission_admitted_total") > 0);
        assert!(get("netdir_busy_rejections_total") > 0);
        // The planner sweep ran: every cell honored the contract, at
        // least one plan was transformed, one replayed from cache, and
        // the counters landed in the registry.
        assert!(!report.planner.is_empty());
        assert!(report.planner.iter().all(|p| p.chosen_reads <= p.naive_reads));
        assert!(report.planner.iter().any(|p| p.steps > 0));
        assert!(report.planner.iter().any(|p| p.cache_hit));
        assert!(get("netdir_planner_planned_total") >= report.planner.len() as u64);
        assert!(get("netdir_planner_cache_hits_total") > 0);
        assert!(get("netdir_planner_catalog_observations_total") > 0);
        // The storage sweep ran both cells, its claims held, and the
        // engine replay fed the pool series.
        assert_eq!(report.storage.len(), 2);
        assert!(report.storage[0].read_reduction >= 0.2);
        assert!(report.storage[1].hit_rate_engine > report.storage[1].hit_rate_baseline);
        assert!(get("netdir_pool_hits_total") > 0);
        assert!(get("netdir_pool_compressed_bytes_saved_total") > 0);
    }
}
