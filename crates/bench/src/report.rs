//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! `run_experiments` emits one JSON document per run so dashboards and
//! CI can diff benchmark output without scraping tables. The format is
//! deliberately small:
//!
//! ```json
//! {
//!   "schema_version": 6,
//!   "mode": "smoke",
//!   "experiments": [{"name": "exp_hs_linear", "status": "ok",
//!                    "wall_time_secs": 1.2}],
//!   "queries": [{"level": "L0", "query": "(- ...)", "entries": 1,
//!                "spans": 3, "predicted_io": 3.0, "observed_io": 5}],
//!   "parallel": [{"suite": "eval", "degree": 4, "wall_secs": 0.02,
//!                 "speedup": 3.1, "io_reads": 160, "io_writes": 0,
//!                 "io_allocs": 40}],
//!   "mutation": [{"phase": "apply", "batches": 10, "mutations": 237,
//!                 "wall_secs": 0.01, "wal_fsyncs": 10,
//!                 "wal_page_writes": 12}],
//!   "load": [{"mode": "admission", "clients": 16, "offered": 320,
//!             "completed": 120, "busy": 200, "deadline": 0, "errors": 0,
//!             "wall_secs": 0.4, "throughput_rps": 300.0, "p50_us": 900,
//!             "p99_us": 2400, "p999_us": 3100}],
//!   "planner": [{"label": "and-chain", "steps": 2, "cache_hit": false,
//!                "predicted_naive": 40.0, "predicted_chosen": 12.0,
//!                "naive_reads": 38, "chosen_reads": 11,
//!                "naive_wall_secs": 0.02, "chosen_wall_secs": 0.008}],
//!   "storage": [{"cell": "e16-cold", "baseline_reads": 160,
//!                "engine_reads": 110, "read_reduction": 0.31,
//!                "hit_rate_baseline": 0, "hit_rate_engine": 0,
//!                "compressed_bytes_saved": 20480}],
//!   "metrics": {"netdir_io_reads_total": 12, "...": 0}
//! }
//! ```
//!
//! `metrics` is a [`MetricsRegistry`] flattened to name → value pairs
//! and always carries every tracked name of [`netdir_obs::names`]
//! (explicit zeros included). The container has no JSON dependency, so
//! this module hand-rolls both the emitter and the tiny recursive
//! parser [`validate_bench_json`] uses — it understands exactly the
//! JSON this module writes (no unicode escapes, no exponent-free giant
//! numbers), which is all the validator needs.

use crate::load::LoadRow;
use crate::mutation::MutationRow;
use crate::par::DegreeRow;
use crate::planner::PlannerRow;
use crate::storage::StorageRow;
use netdir_obs::{names, MetricsRegistry, QueryTrace};

/// One experiment binary's outcome in a full run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Binary name (e.g. `exp_hs_linear`).
    pub name: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// Wall-clock time the binary took.
    pub wall_time_secs: f64,
}

/// One analyzed query in the instrumented suite.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Language level (`L0`–`L3`).
    pub level: String,
    /// The query text.
    pub query: String,
    /// Entries the query returned.
    pub entries: u64,
    /// Operator spans in the trace (= query-tree nodes).
    pub spans: u64,
    /// Whole-query predicted page I/O (Theorems 8.3/8.4).
    pub predicted_io: f64,
    /// Whole-query observed page I/O.
    pub observed_io: u64,
}

impl QueryReport {
    /// Summarize an `explain::analyze` trace.
    pub fn from_trace(level: &str, trace: &QueryTrace) -> QueryReport {
        QueryReport {
            level: level.to_string(),
            query: trace.query.clone(),
            entries: trace.root_entries(),
            spans: trace.spans.len() as u64,
            predicted_io: trace.predicted_io,
            observed_io: trace.observed_io,
        }
    }
}

/// A whole `BENCH_*.json` document.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Experiment binaries run (empty in smoke mode).
    pub experiments: Vec<ExperimentResult>,
    /// Instrumented per-level query reports.
    pub queries: Vec<QueryReport>,
    /// Parallel-evaluation degree-sweep rows.
    pub parallel: Vec<DegreeRow>,
    /// Write-path suite rows (apply throughput, WAL replay).
    pub mutation: Vec<MutationRow>,
    /// Closed-loop overload sweep rows (admission vs unbounded).
    pub load: Vec<LoadRow>,
    /// Cost-based planner sweep rows (chosen vs naive I/O).
    pub planner: Vec<PlannerRow>,
    /// Storage-engine sweep rows (compression footprint, scan-mix).
    pub storage: Vec<StorageRow>,
    /// Flattened metrics registry.
    pub metrics: Vec<(String, u64)>,
}

/// The only schema this writer emits (and the validator accepts).
/// Version 2 added the `parallel` degree-sweep section; version 3
/// added the `mutation` write-path section; version 4 added the `load`
/// overload-sweep section; version 5 added the `planner` chosen-vs-naive
/// section; version 6 added the `storage` compression/scan-mix section.
pub const SCHEMA_VERSION: u64 = 6;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a float so it parses back as a JSON number (never NaN/inf —
/// the cost model only produces finite values, but a report must not
/// become unparseable if that ever breaks).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl BenchReport {
    /// A report carrying the registry's current state.
    pub fn new(mode: &str, registry: &MetricsRegistry) -> BenchReport {
        BenchReport {
            mode: mode.to_string(),
            experiments: Vec::new(),
            queries: Vec::new(),
            parallel: Vec::new(),
            mutation: Vec::new(),
            load: Vec::new(),
            planner: Vec::new(),
            storage: Vec::new(),
            metrics: registry.flatten(),
        }
    }

    /// Serialize to the `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"mode\": \"{}\",\n", escape(&self.mode)));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"status\": \"{}\", \"wall_time_secs\": {}}}{comma}\n",
                escape(&e.name),
                escape(&e.status),
                num(e.wall_time_secs),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let comma = if i + 1 < self.queries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"level\": \"{}\", \"query\": \"{}\", \"entries\": {}, \
                 \"spans\": {}, \"predicted_io\": {}, \"observed_io\": {}}}{comma}\n",
                escape(&q.level),
                escape(&q.query),
                q.entries,
                q.spans,
                num(q.predicted_io),
                q.observed_io,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"parallel\": [\n");
        for (i, r) in self.parallel.iter().enumerate() {
            let comma = if i + 1 < self.parallel.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"suite\": \"{}\", \"degree\": {}, \"wall_secs\": {}, \
                 \"speedup\": {}, \"io_reads\": {}, \"io_writes\": {}, \
                 \"io_allocs\": {}}}{comma}\n",
                escape(&r.suite),
                r.degree,
                num(r.wall_secs),
                num(r.speedup),
                r.io_reads,
                r.io_writes,
                r.io_allocs,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"mutation\": [\n");
        for (i, m) in self.mutation.iter().enumerate() {
            let comma = if i + 1 < self.mutation.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"batches\": {}, \"mutations\": {}, \
                 \"wall_secs\": {}, \"wal_fsyncs\": {}, \
                 \"wal_page_writes\": {}}}{comma}\n",
                escape(&m.phase),
                m.batches,
                m.mutations,
                num(m.wall_secs),
                m.wal_fsyncs,
                m.wal_page_writes,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"load\": [\n");
        for (i, l) in self.load.iter().enumerate() {
            let comma = if i + 1 < self.load.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"clients\": {}, \"offered\": {}, \
                 \"completed\": {}, \"busy\": {}, \"deadline\": {}, \
                 \"errors\": {}, \"wall_secs\": {}, \"throughput_rps\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}{comma}\n",
                escape(&l.mode),
                l.clients,
                l.offered,
                l.completed,
                l.busy,
                l.deadline,
                l.errors,
                num(l.wall_secs),
                num(l.throughput_rps),
                l.p50_us,
                l.p99_us,
                l.p999_us,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"planner\": [\n");
        for (i, p) in self.planner.iter().enumerate() {
            let comma = if i + 1 < self.planner.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps\": {}, \"cache_hit\": {}, \
                 \"predicted_naive\": {}, \"predicted_chosen\": {}, \
                 \"naive_reads\": {}, \"chosen_reads\": {}, \
                 \"naive_wall_secs\": {}, \"chosen_wall_secs\": {}}}{comma}\n",
                escape(&p.label),
                p.steps,
                p.cache_hit,
                num(p.predicted_naive),
                num(p.predicted_chosen),
                p.naive_reads,
                p.chosen_reads,
                num(p.naive_wall_secs),
                num(p.chosen_wall_secs),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"storage\": [\n");
        for (i, s) in self.storage.iter().enumerate() {
            let comma = if i + 1 < self.storage.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"baseline_reads\": {}, \
                 \"engine_reads\": {}, \"read_reduction\": {}, \
                 \"hit_rate_baseline\": {}, \"hit_rate_engine\": {}, \
                 \"compressed_bytes_saved\": {}}}{comma}\n",
                escape(&s.cell),
                s.baseline_reads,
                s.engine_reads,
                num(s.read_reduction),
                num(s.hit_rate_baseline),
                num(s.hit_rate_engine),
                s.compressed_bytes_saved,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!("    \"{}\": {value}{comma}\n", escape(name)));
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// A parsed JSON value — just enough structure for validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str
                    // upstream, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        other => return Err(format!("bad object separator {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => return Err(format!("bad array separator {other:?}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Validate a `BENCH_*.json` document: well-formed JSON, the supported
/// schema version, the experiments/queries/metrics sections with the
/// right shapes, and **every** tracked metric name present with a
/// numeric value. Returns the first problem found.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("mode")
        .and_then(Json::as_str)
        .filter(|m| *m == "smoke" || *m == "full")
        .ok_or("mode must be \"smoke\" or \"full\"")?;
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or("missing experiments array")?;
    for e in experiments {
        e.get("name").and_then(Json::as_str).ok_or("experiment without name")?;
        e.get("status").and_then(Json::as_str).ok_or("experiment without status")?;
        e.get("wall_time_secs")
            .and_then(Json::as_num)
            .ok_or("experiment without wall_time_secs")?;
    }
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or("missing queries array")?;
    if queries.is_empty() {
        return Err("queries array is empty — the instrumented suite did not run".into());
    }
    for q in queries {
        for key in ["level", "query"] {
            q.get(key).and_then(Json::as_str).ok_or(format!("query without {key}"))?;
        }
        for key in ["entries", "spans", "predicted_io", "observed_io"] {
            q.get(key).and_then(Json::as_num).ok_or(format!("query without {key}"))?;
        }
    }
    let parallel = doc
        .get("parallel")
        .and_then(Json::as_arr)
        .ok_or("missing parallel array")?;
    for r in parallel {
        r.get("suite").and_then(Json::as_str).ok_or("parallel row without suite")?;
        for key in ["degree", "wall_secs", "speedup", "io_reads", "io_writes", "io_allocs"] {
            r.get(key)
                .and_then(Json::as_num)
                .ok_or(format!("parallel row without {key}"))?;
        }
    }
    let mutation = doc
        .get("mutation")
        .and_then(Json::as_arr)
        .ok_or("missing mutation array")?;
    for m in mutation {
        m.get("phase").and_then(Json::as_str).ok_or("mutation row without phase")?;
        for key in ["batches", "mutations", "wall_secs", "wal_fsyncs", "wal_page_writes"] {
            m.get(key)
                .and_then(Json::as_num)
                .ok_or(format!("mutation row without {key}"))?;
        }
    }
    let load = doc
        .get("load")
        .and_then(Json::as_arr)
        .ok_or("missing load array")?;
    for l in load {
        l.get("mode")
            .and_then(Json::as_str)
            .filter(|m| *m == "unbounded" || *m == "admission")
            .ok_or("load row mode must be \"unbounded\" or \"admission\"")?;
        for key in [
            "clients",
            "offered",
            "completed",
            "busy",
            "deadline",
            "errors",
            "wall_secs",
            "throughput_rps",
            "p50_us",
            "p99_us",
            "p999_us",
        ] {
            l.get(key).and_then(Json::as_num).ok_or(format!("load row without {key}"))?;
        }
    }
    let planner = doc
        .get("planner")
        .and_then(Json::as_arr)
        .ok_or("missing planner array")?;
    for p in planner {
        p.get("label").and_then(Json::as_str).ok_or("planner row without label")?;
        match p.get("cache_hit") {
            Some(Json::Bool(_)) => {}
            _ => return Err("planner row cache_hit must be a boolean".into()),
        }
        for key in [
            "steps",
            "predicted_naive",
            "predicted_chosen",
            "naive_reads",
            "chosen_reads",
            "naive_wall_secs",
            "chosen_wall_secs",
        ] {
            p.get(key).and_then(Json::as_num).ok_or(format!("planner row without {key}"))?;
        }
        // The optimizer's contract is part of the schema: a report whose
        // chosen plan read more pages than naive records a broken run.
        let naive = p.get("naive_reads").and_then(Json::as_num).unwrap_or(0.0);
        let chosen = p.get("chosen_reads").and_then(Json::as_num).unwrap_or(0.0);
        if chosen > naive {
            return Err(format!(
                "planner row {:?}: chosen_reads {chosen} exceeds naive_reads {naive}",
                p.get("label").and_then(Json::as_str).unwrap_or("?")
            ));
        }
    }
    let storage = doc
        .get("storage")
        .and_then(Json::as_arr)
        .ok_or("missing storage array")?;
    for s in storage {
        let cell = s
            .get("cell")
            .and_then(Json::as_str)
            .filter(|c| *c == "e16-cold" || *c == "scan-mix")
            .ok_or("storage row cell must be \"e16-cold\" or \"scan-mix\"")?;
        for key in [
            "baseline_reads",
            "engine_reads",
            "read_reduction",
            "hit_rate_baseline",
            "hit_rate_engine",
            "compressed_bytes_saved",
        ] {
            s.get(key).and_then(Json::as_num).ok_or(format!("storage row without {key}"))?;
        }
        // The storage pass's claims are part of the schema: a report
        // recording a compression win under 20% or a scan-mix hit-rate
        // loss records a broken engine.
        match cell {
            "e16-cold" => {
                let reduction =
                    s.get("read_reduction").and_then(Json::as_num).unwrap_or(0.0);
                if reduction < 0.2 {
                    return Err(format!(
                        "storage row e16-cold: read_reduction {reduction} is \
                         below the promised 0.2"
                    ));
                }
            }
            _ => {
                let lru = s.get("hit_rate_baseline").and_then(Json::as_num).unwrap_or(0.0);
                let two_q = s.get("hit_rate_engine").and_then(Json::as_num).unwrap_or(0.0);
                if two_q < lru {
                    return Err(format!(
                        "storage row scan-mix: hit_rate_engine {two_q} lost to \
                         hit_rate_baseline {lru}"
                    ));
                }
            }
        }
    }
    let metrics = doc.get("metrics").ok_or("missing metrics object")?;
    for name in names::TRACKED {
        // Histograms flatten to `<name>_count` / `<name>_sum`.
        let present = metrics.get(name).map(Json::as_num).or_else(|| {
            metrics.get(&format!("{name}_count")).map(Json::as_num)
        });
        match present {
            Some(Some(_)) => {}
            Some(None) => return Err(format!("metric {name} is not numeric")),
            None => return Err(format!("tracked metric {name} missing")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_server::metrics::register_all;

    fn sample_report() -> BenchReport {
        let reg = MetricsRegistry::default();
        register_all(&reg);
        reg.counter(names::QUERIES).add(2);
        reg.histogram(names::QUERY_DURATION_US).observe(17);
        let mut report = BenchReport::new("smoke", &reg);
        report.experiments.push(ExperimentResult {
            name: "exp_hs_linear".into(),
            status: "ok".into(),
            wall_time_secs: 1.25,
        });
        report.queries.push(QueryReport {
            level: "L0".into(),
            query: "(- \"a\" b)".into(), // quote must survive escaping
            entries: 1,
            spans: 3,
            predicted_io: 3.0,
            observed_io: 5,
        });
        report.parallel.push(DegreeRow {
            suite: "eval".into(),
            degree: 4,
            wall_secs: 0.02,
            speedup: 3.1,
            io_reads: 160,
            io_writes: 0,
            io_allocs: 40,
        });
        report.mutation.push(MutationRow {
            phase: "apply".into(),
            batches: 10,
            mutations: 237,
            wall_secs: 0.01,
            wal_fsyncs: 10,
            wal_page_writes: 12,
        });
        report.load.push(LoadRow {
            mode: "admission".into(),
            clients: 16,
            offered: 320,
            completed: 120,
            busy: 200,
            deadline: 0,
            errors: 0,
            wall_secs: 0.4,
            throughput_rps: 300.0,
            p50_us: 900,
            p99_us: 2_400,
            p999_us: 3_100,
        });
        report.planner.push(PlannerRow {
            label: "and-chain".into(),
            steps: 2,
            cache_hit: false,
            predicted_naive: 40.0,
            predicted_chosen: 12.0,
            naive_reads: 38,
            chosen_reads: 11,
            naive_wall_secs: 0.02,
            chosen_wall_secs: 0.008,
        });
        report.storage.push(StorageRow {
            cell: "e16-cold".into(),
            baseline_reads: 160,
            engine_reads: 110,
            read_reduction: 0.3125,
            hit_rate_baseline: 0.0,
            hit_rate_engine: 0.0,
            compressed_bytes_saved: 20_480,
        });
        report.storage.push(StorageRow {
            cell: "scan-mix".into(),
            baseline_reads: 0,
            engine_reads: 0,
            read_reduction: 0.0,
            hit_rate_baseline: 0.54,
            hit_rate_engine: 0.97,
            compressed_bytes_saved: 0,
        });
        report
    }

    #[test]
    fn emitted_reports_validate() {
        let text = sample_report().to_json();
        validate_bench_json(&text).unwrap();
    }

    #[test]
    fn parser_round_trips_escapes_and_numbers() {
        let text = sample_report().to_json();
        let doc = parse_json(&text).unwrap();
        let q = &doc.get("queries").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(q.get("query").and_then(Json::as_str), Some("(- \"a\" b)"));
        assert_eq!(q.get("predicted_io").and_then(Json::as_num), Some(3.0));
        let e = &doc.get("experiments").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(e.get("wall_time_secs").and_then(Json::as_num), Some(1.25));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        // Not JSON at all.
        assert!(validate_bench_json("not json").is_err());
        // Truncated.
        let text = sample_report().to_json();
        assert!(validate_bench_json(&text[..text.len() / 2]).is_err());
        // Wrong schema version.
        let wrong = text.replace("\"schema_version\": 6", "\"schema_version\": 99");
        assert!(validate_bench_json(&wrong).is_err());
        // A v1 document (no parallel section) no longer validates.
        let v1 = text
            .replace("\"schema_version\": 6", "\"schema_version\": 1")
            .replace("\"parallel\"", "\"parallel_gone\"");
        assert!(validate_bench_json(&v1).is_err());
        // A v2 document (no mutation section) no longer validates.
        let v2 = text
            .replace("\"schema_version\": 6", "\"schema_version\": 2")
            .replace("\"mutation\"", "\"mutation_gone\"");
        assert!(validate_bench_json(&v2).is_err());
        // A v3 document (no load section) no longer validates.
        let v3 = text
            .replace("\"schema_version\": 6", "\"schema_version\": 3")
            .replace("\"load\"", "\"load_gone\"");
        assert!(validate_bench_json(&v3).is_err());
        // A v4 document (no planner section) no longer validates.
        let v4 = text
            .replace("\"schema_version\": 6", "\"schema_version\": 4")
            .replace("\"planner\"", "\"planner_gone\"");
        assert!(validate_bench_json(&v4).is_err());
        // A v5 document (no storage section) no longer validates.
        let v5 = text
            .replace("\"schema_version\": 6", "\"schema_version\": 5")
            .replace("\"storage\"", "\"storage_gone\"");
        assert!(validate_bench_json(&v5).is_err());
        // A load row with a bogus mode is rejected.
        let bad_mode = text.replace("\"mode\": \"admission\"", "\"mode\": \"yolo\"");
        assert!(validate_bench_json(&bad_mode).is_err());
        // A planner row where the chosen plan read more than naive
        // records a broken optimizer and must not validate.
        let regressed = text.replace("\"chosen_reads\": 11", "\"chosen_reads\": 99");
        let err = validate_bench_json(&regressed).unwrap_err();
        assert!(err.contains("chosen_reads"), "{err}");
        // cache_hit must be a boolean, not a number.
        let bad_hit = text.replace("\"cache_hit\": false", "\"cache_hit\": 0");
        assert!(validate_bench_json(&bad_hit).is_err());
        // A storage row whose compression win fell under the promised
        // 20% records a broken engine and must not validate.
        let weak = text.replace("\"read_reduction\": 0.3125", "\"read_reduction\": 0.05");
        let err = validate_bench_json(&weak).unwrap_err();
        assert!(err.contains("read_reduction"), "{err}");
        // A scan-mix row where 2Q lost to LRU likewise.
        let lost = text.replace("\"hit_rate_engine\": 0.97", "\"hit_rate_engine\": 0.4");
        let err = validate_bench_json(&lost).unwrap_err();
        assert!(err.contains("hit_rate_engine"), "{err}");
        // An unknown storage cell label is rejected.
        let bad_cell = text.replace("\"cell\": \"scan-mix\"", "\"cell\": \"mystery\"");
        assert!(validate_bench_json(&bad_cell).is_err());
        // A tracked metric missing entirely.
        let gone = text.replace(names::NET_REQUESTS, "netdir_not_a_metric");
        let err = validate_bench_json(&gone).unwrap_err();
        assert!(err.contains(names::NET_REQUESTS), "{err}");
        // An empty query suite is a failed run, not a quiet success.
        let mut empty = sample_report();
        empty.queries.clear();
        assert!(validate_bench_json(&empty.to_json()).is_err());
    }

    #[test]
    fn every_tracked_metric_lands_in_the_flattened_report() {
        let text = sample_report().to_json();
        for name in names::TRACKED {
            assert!(text.contains(name), "report missing {name}");
        }
    }
}
