//! The parallel-evaluation speedup sweep (`exp_parallel`, and the
//! `"parallel"` section of `BENCH_*.json`).
//!
//! On a one-core box, intra-query parallelism pays off exactly where the
//! paper's cost model says the money is: overlapping *page fetches*. The
//! sweep therefore runs the L0–L3 suite against a [`Pager::with_latency`]
//! whose reads carry a synthetic per-page delay (a disk, in miniature),
//! and measures wall clock at increasing worker degrees. The frame
//! budget is set large enough that no evictions occur, so the page-I/O
//! ledger must come out **identical at every degree** — parallelism may
//! only reorder fetches, never add or drop one. The sweep enforces both
//! invariants (identical I/O, byte-identical entries) and reports
//! wall-clock speedup relative to degree 1.
//!
//! A second suite sweeps [`external_sort_by_par`] run formation the same
//! way. Run boundaries legitimately differ with the worker count there,
//! so only the sorted output — not the ledger — is pinned.

use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry};
use netdir_obs::MetricsRegistry;
use netdir_pager::{external_sort_by_par, ExtSortConfig, IoSnapshot, PagedList, Pager};
use netdir_query::{parse_query, Evaluator};
use netdir_server::metrics as bridge;
use std::time::{Duration, Instant};

/// One measured (suite, degree) cell of the sweep.
#[derive(Debug, Clone)]
pub struct DegreeRow {
    /// `"eval"` (L0–L3 query suite) or `"sort"` (parallel run formation).
    pub suite: String,
    /// Worker degree this row ran at.
    pub degree: usize,
    /// Wall-clock seconds for the whole suite at this degree.
    pub wall_secs: f64,
    /// `wall(degree 1) / wall(this degree)` within the same suite.
    pub speedup: f64,
    /// Pages read during the measured region.
    pub io_reads: u64,
    /// Pages written during the measured region (including final flush).
    pub io_writes: u64,
    /// Pages allocated during the measured region.
    pub io_allocs: u64,
}

/// Knobs for one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker degrees to measure, in order; the first is the baseline.
    pub degrees: Vec<usize>,
    /// Directory zones (one per leaf atom of the widest query).
    pub zones: usize,
    /// Entries per zone.
    pub per_zone: usize,
    /// Synthetic per-page read latency.
    pub read_delay: Duration,
}

/// The seconds-scale configuration behind `--smoke` and the unit test.
pub fn smoke_config() -> SweepConfig {
    SweepConfig {
        degrees: vec![1, 2, 4],
        zones: 8,
        per_zone: 12,
        read_delay: Duration::from_micros(100),
    }
}

/// The full configuration recorded in `results/BENCH_full.json`.
pub fn full_config() -> SweepConfig {
    SweepConfig {
        degrees: vec![1, 2, 4, 8],
        zones: 8,
        per_zone: 48,
        read_delay: Duration::from_micros(250),
    }
}

fn dn(s: &str) -> Dn {
    Dn::parse(s).expect("sweep DN")
}

/// A deterministic `zones`-ary forest under `dc=bench`. Zone `i`'s
/// entries alternate `kind=red`/`kind=blue`, and every third entry
/// carries a DN-valued `ref` into zone `i+1` — so boolean, hierarchy,
/// aggregate and embedded-reference operators all have real work.
pub(crate) fn bench_directory(cfg: &SweepConfig) -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).expect("sweep entry");
    add(Entry::builder(dn("dc=bench")).class("thing").build().expect("root"));
    for z in 0..cfg.zones {
        add(
            Entry::builder(dn(&format!("ou=z{z}, dc=bench")))
                .class("thing")
                .build()
                .expect("zone"),
        );
    }
    for z in 0..cfg.zones {
        for j in 0..cfg.per_zone {
            let kind = if j % 2 == 0 { "red" } else { "blue" };
            let mut b = Entry::builder(dn(&format!("n=e{j}, ou=z{z}, dc=bench")))
                .class("thing")
                .attr("kind", kind)
                .attr("weight", (j % 5) as i64)
                .attr("pad", "x".repeat(64 + (j * 7) % 64));
            if j % 3 == 0 {
                b = b.attr("ref", dn(&format!("ou=z{}, dc=bench", (z + 1) % cfg.zones)));
            }
            add(b.build().expect("leaf"));
        }
    }
    d
}

/// Binary-tree union of `atoms` — the shape that hands the scheduler a
/// ready set as wide as the atom list.
fn union(atoms: &[String]) -> String {
    match atoms {
        [one] => one.clone(),
        _ => {
            let (a, b) = atoms.split_at(atoms.len() / 2);
            format!("(| {} {})", union(a), union(b))
        }
    }
}

fn atoms(zones: std::ops::Range<usize>, filter: &str) -> Vec<String> {
    zones
        .map(|z| format!("(ou=z{z}, dc=bench ? sub ? {filter})"))
        .collect()
}

/// One query per language level, each fanning out to eight leaf atoms
/// over distinct zones (so a wave exposes eight concurrent subtrees).
pub(crate) fn suite_queries(cfg: &SweepConfig) -> Vec<(&'static str, String)> {
    let z = cfg.zones;
    let (lo, hi) = (0..z / 2, z / 2..z);
    vec![
        ("L0", union(&atoms(0..z, "kind=red"))),
        (
            "L1",
            format!(
                "(p {} {})",
                union(&atoms(lo.clone(), "objectClass=thing")),
                union(&atoms(lo.clone(), "kind=red"))
            ),
        ),
        (
            "L2",
            format!(
                "(c {} {} count($2) > 0)",
                union(&atoms(hi.clone(), "objectClass=thing")),
                union(&atoms(hi.clone(), "kind=blue"))
            ),
        ),
        (
            "L3",
            format!(
                "(vd {} {} ref)",
                union(&atoms(lo, "ref=*")),
                union(&atoms(hi, "objectClass=thing"))
            ),
        ),
    ]
}

/// A pager whose reads cost `read_delay` and whose frame budget is far
/// beyond the sweep's working set — no evictions, so the ledger is a
/// pure function of what the evaluator asked for.
pub(crate) fn sweep_pager(cfg: &SweepConfig) -> Pager {
    Pager::with_latency(512, 4096, cfg.read_delay, Duration::ZERO)
}

/// Run the L0–L3 suite at every degree of `cfg`, recording schedules
/// into `registry` and enforcing the two determinism invariants.
fn eval_sweep(cfg: &SweepConfig, registry: &MetricsRegistry) -> Vec<DegreeRow> {
    let dir = bench_directory(cfg);
    let suite = suite_queries(cfg);
    let mut rows: Vec<DegreeRow> = Vec::new();
    let mut baseline: Option<(f64, IoSnapshot, Vec<Vec<Entry>>)> = None;

    for &degree in &cfg.degrees {
        // A fresh pager + index per degree: identical construction gives
        // an identical page layout, so ledgers are comparable.
        let pager = sweep_pager(cfg);
        let idx = IndexedDirectory::build(&pager, &dir).expect("build sweep index");
        let queries: Vec<_> = suite
            .iter()
            .map(|(level, text)| (*level, parse_query(text).expect("parse sweep query")))
            .collect();
        let ev = Evaluator::new(&idx, &pager);

        pager.flush().expect("flush index");
        pager.pool().clear_cache().expect("cold cache");
        pager.reset_io();
        let mut outputs = Vec::new();
        let started = Instant::now();
        for (_, query) in &queries {
            // Every level starts cold, so each query's page fetches —
            // not just the first level's — are in the measured region.
            pager.flush().expect("flush between levels");
            pager.pool().clear_cache().expect("cold level");
            let (out, par) = ev
                .evaluate_parallel_report(query, degree)
                .expect("sweep query evaluates");
            bridge::record_par(registry, &par);
            outputs.push(out.to_vec().expect("materialize sweep output"));
        }
        pager.flush().expect("flush outputs");
        let wall = started.elapsed().as_secs_f64();
        let io = pager.io();

        match &baseline {
            None => baseline = Some((wall, io, outputs)),
            Some((_, io1, out1)) => {
                assert_eq!(
                    io, *io1,
                    "degree {degree} changed the page-I/O ledger — parallel \
                     evaluation may only reorder fetches"
                );
                assert_eq!(
                    outputs, *out1,
                    "degree {degree} changed query output bytes"
                );
            }
        }
        let wall1 = baseline.as_ref().map(|(w, _, _)| *w).expect("baseline");
        rows.push(DegreeRow {
            suite: "eval".into(),
            degree,
            wall_secs: wall,
            speedup: wall1 / wall.max(1e-9),
            io_reads: io.reads,
            io_writes: io.writes,
            io_allocs: io.allocs,
        });
    }
    rows
}

/// Sweep parallel run formation over the same entry population. Run
/// boundaries differ with the worker count, so the ledger may too; the
/// sorted output may not.
fn sort_sweep(cfg: &SweepConfig) -> Vec<DegreeRow> {
    let dir = bench_directory(cfg);
    // A deterministic shuffle: strided order breaks the sortedness of
    // `iter_sorted` so run formation has real work.
    let entries: Vec<Entry> = dir.iter_sorted().cloned().collect();
    let mut input = Vec::with_capacity(entries.len());
    for start in 0..7 {
        input.extend(entries.iter().skip(start).step_by(7).cloned());
    }
    let cmp = |a: &Entry, b: &Entry| a.dn().sort_key().cmp(b.dn().sort_key());

    let mut rows: Vec<DegreeRow> = Vec::new();
    let mut baseline: Option<(f64, Vec<Entry>)> = None;
    for &degree in &cfg.degrees {
        let pager = sweep_pager(cfg);
        let list = PagedList::from_iter(&pager, input.iter().cloned()).expect("sort input");
        pager.flush().expect("flush input");
        pager.pool().clear_cache().expect("cold sort");
        pager.reset_io();
        let started = Instant::now();
        let sorted =
            external_sort_by_par(&pager, &list, ExtSortConfig { fan_in: 8 }, degree, cmp)
                .expect("parallel sort");
        pager.flush().expect("flush runs");
        let wall = started.elapsed().as_secs_f64();
        let io = pager.io();
        let out = sorted.to_vec().expect("materialize sorted");

        match &baseline {
            None => baseline = Some((wall, out)),
            Some((_, out1)) => {
                assert_eq!(out, *out1, "degree {degree} changed the sorted output");
            }
        }
        let wall1 = baseline.as_ref().map(|(w, _)| *w).expect("baseline");
        rows.push(DegreeRow {
            suite: "sort".into(),
            degree,
            wall_secs: wall,
            speedup: wall1 / wall.max(1e-9),
            io_reads: io.reads,
            io_writes: io.writes,
            io_allocs: io.allocs,
        });
    }
    rows
}

/// Run both sweeps and return their rows (eval first, then sort).
/// Panics if any determinism invariant breaks — a speedup bought by
/// changing the answer is not a speedup.
pub fn degree_sweep(cfg: &SweepConfig, registry: &MetricsRegistry) -> Vec<DegreeRow> {
    let mut rows = eval_sweep(cfg, registry);
    rows.extend(sort_sweep(cfg));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_server::metrics::register_all;

    #[test]
    fn smoke_sweep_keeps_io_pinned_and_measures_every_degree() {
        let cfg = smoke_config();
        let registry = MetricsRegistry::default();
        register_all(&registry);
        let rows = degree_sweep(&cfg, &registry);
        assert_eq!(rows.len(), 2 * cfg.degrees.len());

        let eval: Vec<_> = rows.iter().filter(|r| r.suite == "eval").collect();
        assert_eq!(eval[0].degree, 1);
        assert!((eval[0].speedup - 1.0).abs() < 1e-9);
        for r in &eval {
            // The sweep itself asserts ledger equality; double-check the
            // reported numbers carry it too.
            assert_eq!((r.io_reads, r.io_writes, r.io_allocs),
                       (eval[0].io_reads, eval[0].io_writes, eval[0].io_allocs));
            assert!(r.io_reads > 0, "sweep measured no page fetches");
            assert!(r.wall_secs > 0.0);
        }
        // The schedule series saw real traffic.
        use netdir_obs::names;
        assert!(registry.counter(names::PAR_WORKERS_SPAWNED).get() > 0);
        assert!(registry.histogram(names::PAR_READY_WIDTH).snapshot().count > 0);
    }
}
