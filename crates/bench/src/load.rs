//! The closed-loop overload sweep (`run_experiments --smoke` `load`
//! section, and `scripts/check.sh --load-smoke`).
//!
//! N concurrent clients hammer one TCP daemon over real sockets in
//! closed loop (each client issues its next request the moment the
//! previous one resolves), with N swept past the daemon's capacity.
//! Each sweep runs twice over identical seeded data:
//!
//! * **unbounded** — the pre-admission daemon: every connection queues,
//!   nothing is shed, latency grows with the queue.
//! * **admission** — bounded accept queue + inflight cap + execution
//!   deadline: excess offered load converts to fast `Busy` rejections
//!   while *accepted* requests keep a bounded p99.
//!
//! Every request rides its own connection (the server is
//! thread-per-connection, so a held connection would pin a worker and
//! measure the client, not the daemon) and the client retry policy is
//! [`RetryPolicy::none`], so each `Busy` is counted as one shed request
//! instead of silently disappearing into retries; the client then
//! sleeps the server's `retry_after` hint before its next attempt,
//! which is what a real client's backoff does.

use crate::report::BenchReport;
use netdir_filter::{parse_atomic, Scope};
use netdir_model::Dn;
use netdir_obs::{MetricsRegistry, MonotonicClock};
use netdir_server::{AdmissionConfig, AdmissionController, ClusterBuilder, RetryPolicy};
use netdir_wire::{ClientOptions, ServerOptions, WireClient, WireCluster, WireError};
use netdir_workloads::{synth_forest, SynthParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured (mode, clients) cell of the overload sweep.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// `"unbounded"` (no shedding) or `"admission"` (bounded queue +
    /// inflight cap + deadline).
    pub mode: String,
    /// Concurrent closed-loop clients.
    pub clients: u64,
    /// Requests offered (every attempt by every client).
    pub offered: u64,
    /// Requests accepted, executed, and answered.
    pub completed: u64,
    /// Requests shed with a `Busy` frame before execution.
    pub busy: u64,
    /// Requests that blew the server-side execution deadline.
    pub deadline: u64,
    /// Any other failure (should be zero; kept visible, not swallowed).
    pub errors: u64,
    /// Wall-clock seconds for this cell.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency of *completed* requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile of completed requests, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile of completed requests, microseconds.
    pub p999_us: u64,
}

/// Knobs for one overload sweep.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Worker threads the daemon serves with.
    pub workers: usize,
    /// Accept-queue bound in admission mode (0 would mean unbounded).
    pub max_pending: usize,
    /// Inflight cap in admission mode.
    pub max_inflight: usize,
    /// Per-request execution deadline in admission mode.
    pub request_deadline: Duration,
    /// Client counts to sweep, in order; the largest should sit well
    /// past `workers` (the saturation point of a closed loop).
    pub client_sweep: Vec<usize>,
    /// Requests each client issues per cell.
    pub requests_per_client: usize,
    /// Seeded directory size.
    pub entries: usize,
}

/// The seconds-scale configuration behind `--smoke` and the unit test:
/// two workers, swept to 8× saturation. `requests_per_client` is sized
/// so the admission cells — where most offered load is shed — still
/// complete enough requests that p99 is a percentile, not the sample
/// maximum (a single cold-start outlier must not dominate the tail).
pub fn smoke_config() -> LoadConfig {
    LoadConfig {
        workers: 2,
        max_pending: 2,
        max_inflight: 2,
        request_deadline: Duration::from_secs(2),
        client_sweep: vec![1, 4, 16],
        requests_per_client: 60,
        entries: 600,
    }
}

/// The configuration recorded in `results/BENCH_full.json`.
pub fn full_config() -> LoadConfig {
    LoadConfig {
        workers: 2,
        max_pending: 2,
        max_inflight: 2,
        request_deadline: Duration::from_secs(2),
        client_sweep: vec![1, 2, 4, 8, 16, 32],
        requests_per_client: 80,
        entries: 1_200,
    }
}

/// The request every client issues: a whole-forest `sub` atomic scan,
/// answered by the daemon's own store thread. Atomic (not a full
/// `Query`) on purpose: a distributed query would ship its sub-queries
/// back to the same saturated daemon over new connections, so overload
/// would starve the query's *own* internal fetches — a self-deadlock
/// that measures the harness, not admission control.
const LOAD_FILTER: &str = "kind=red";

/// Tallies from one client thread.
#[derive(Default)]
struct ClientTally {
    latencies_us: Vec<u64>,
    busy: u64,
    deadline: u64,
    errors: u64,
    offered: u64,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    // Nearest-rank on the sorted sample.
    let rank = ((sorted_us.len() as f64) * q).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Run one (mode, clients) cell against `addr`-less fresh cluster built
/// from `opts`, returning its row.
fn run_cell(
    mode: &str,
    cfg: &LoadConfig,
    clients: usize,
    server_opts: ServerOptions,
    dir: &netdir_model::Directory,
) -> LoadRow {
    let client_opts = ClientOptions {
        timeout: Duration::from_secs(10),
        // One connection per request: the daemon is thread-per-
        // connection, so pooling would serialize the whole closed loop
        // onto `workers` sockets and hide the admission queue.
        pool_size: 0,
        retry: RetryPolicy::none(),
        ..ClientOptions::default()
    };
    let builder = ClusterBuilder::new().server("root", Dn::parse("dc=synth").unwrap());
    let mut cluster = WireCluster::launch(builder, dir, server_opts, client_opts.clone())
        .expect("launch load daemon");
    assert_eq!(cluster.orphaned(), 0, "load fixture must partition cleanly");
    let addr = cluster.addr(0);

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let client_opts = client_opts.clone();
                s.spawn(move || {
                    let client = WireClient::connect(addr, client_opts);
                    let base = Dn::parse("dc=synth").unwrap();
                    let filter = parse_atomic(LOAD_FILTER).unwrap();
                    let mut tally = ClientTally::default();
                    for _ in 0..cfg.requests_per_client {
                        tally.offered += 1;
                        let t0 = Instant::now();
                        match client.atomic_counted(&base, Scope::Sub, &filter) {
                            Ok((entries, _)) => {
                                assert!(!entries.is_empty(), "load query went empty");
                                let us = u64::try_from(t0.elapsed().as_micros())
                                    .unwrap_or(u64::MAX);
                                tally.latencies_us.push(us);
                            }
                            Err(WireError::Busy { retry_after_ms }) => {
                                tally.busy += 1;
                                // Honor the server's backoff hint (capped)
                                // before the next attempt — what a real
                                // client's RetryPolicy does. Without it a
                                // shed client spins reconnecting every
                                // ~1ms, and on small machines that busy
                                // loop preempts the daemon's own workers,
                                // polluting the accepted-latency tail
                                // with scheduler noise.
                                let pause = Duration::from_millis(
                                    u64::from(retry_after_ms).min(50),
                                );
                                std::thread::sleep(pause);
                            }
                            Err(WireError::DeadlineExceeded { .. }) => tally.deadline += 1,
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    cluster.shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut offered, mut busy, mut deadline, mut errors) = (0, 0, 0, 0);
    for t in tallies {
        latencies.extend(t.latencies_us);
        offered += t.offered;
        busy += t.busy;
        deadline += t.deadline;
        errors += t.errors;
    }
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    LoadRow {
        mode: mode.to_string(),
        clients: clients as u64,
        offered,
        completed,
        busy,
        deadline,
        errors,
        wall_secs,
        throughput_rps: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
    }
}

/// Run the whole sweep: for each client count, the unbounded baseline
/// then the admission-controlled daemon, over identical seeded data.
/// Admission/deadline accounting lands in `registry` (and therefore in
/// the report's `metrics` section).
pub fn overload_sweep(cfg: &LoadConfig, registry: &MetricsRegistry) -> Vec<LoadRow> {
    let dir = synth_forest(
        SynthParams {
            entries: cfg.entries,
            ..SynthParams::default()
        },
        0xC1_0AD, // fixed seed: both modes serve identical data
    );
    let mut rows = Vec::new();
    // Each finished cell goes straight to stderr: the sweep takes tens
    // of seconds, and when an invariant assertion fires the rows are
    // the diagnosis.
    fn note(row: &LoadRow) {
        eprintln!(
            "load: {:>9} clients={:<3} offered={:<5} completed={:<5} busy={:<5} \
             deadline={} errors={} p50={}us p99={}us",
            row.mode,
            row.clients,
            row.offered,
            row.completed,
            row.busy,
            row.deadline,
            row.errors,
            row.p50_us,
            row.p99_us
        );
    }
    for &clients in &cfg.client_sweep {
        let unbounded = ServerOptions {
            workers: cfg.workers,
            max_pending: 0,
            ..ServerOptions::default()
        };
        rows.push(run_cell("unbounded", cfg, clients, unbounded, &dir));
        note(rows.last().expect("just pushed"));

        let admission = Arc::new(AdmissionController::new(
            AdmissionConfig {
                max_inflight: cfg.max_inflight,
                // A generous hint keeps shed clients parked long enough
                // that their reconnects do not contend with the workers
                // draining accepted requests (single-core machines feel
                // this; the clients sleep exactly this long on `Busy`).
                retry_after: Duration::from_millis(20),
                ..AdmissionConfig::default()
            },
            Arc::new(MonotonicClock::new()),
            registry,
        ));
        let bounded = ServerOptions {
            workers: cfg.workers,
            max_pending: cfg.max_pending,
            request_deadline: Some(cfg.request_deadline),
            admission: Some(admission),
            ..ServerOptions::default()
        };
        rows.push(run_cell("admission", cfg, clients, bounded, &dir));
        note(rows.last().expect("just pushed"));
    }
    rows
}

/// The invariants a healthy sweep must show, asserted so a regression
/// fails the bench instead of quietly emitting sick numbers:
/// conservation (every offered request is accounted), shedding under
/// overload, and a bounded accepted-request p99 while the unbounded
/// baseline's queue delay grows.
pub fn assert_sweep_shape(rows: &[LoadRow]) {
    for row in rows {
        assert_eq!(
            row.offered,
            row.completed + row.busy + row.deadline + row.errors,
            "lost requests in {} @ {} clients",
            row.mode,
            row.clients
        );
        assert_eq!(row.errors, 0, "unexpected errors in {} @ {}", row.mode, row.clients);
        assert!(row.completed > 0, "nothing completed in {} @ {}", row.mode, row.clients);
    }
    let max_clients = rows.iter().map(|r| r.clients).max().unwrap_or(0);
    let at = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.clients == max_clients)
            .unwrap_or_else(|| panic!("missing {mode} row at {max_clients} clients"))
    };
    let (unbounded, admission) = (at("unbounded"), at("admission"));
    assert!(
        admission.busy > 0,
        "no shedding at {}x saturation — admission control is not engaging",
        max_clients
    );
    assert!(
        admission.p99_us * 2 <= unbounded.p99_us,
        "admission p99 ({}us) is not bounded vs unbounded p99 ({}us) at {} clients",
        admission.p99_us,
        unbounded.p99_us,
        max_clients
    );
}

/// Attach a sweep to `report` (helper shared by smoke and full runs).
pub fn attach(report: &mut BenchReport, rows: Vec<LoadRow>) {
    report.load = rows;
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_server::metrics::register_all;

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn overload_sweep_sheds_and_keeps_accepted_p99_bounded() {
        let registry = MetricsRegistry::default();
        register_all(&registry);
        let rows = overload_sweep(&smoke_config(), &registry);
        assert_eq!(rows.len(), 2 * smoke_config().client_sweep.len());
        assert_sweep_shape(&rows);
        // The controller recorded its decisions into the registry.
        let flat = registry.flatten();
        let get = |name: &str| {
            flat.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert!(get(netdir_obs::names::ADMISSION_ADMITTED) > 0);
        assert!(get(netdir_obs::names::BUSY_REJECTIONS) > 0);
    }
}
