//! The storage-engine sweep (`"storage"` section of `BENCH_*.json`).
//!
//! Two cells, each pinning one claim of the storage speed pass:
//!
//! - **`e16-cold`** — the E16 suite (L0–L3 over the degree-sweep
//!   forest) evaluated cold on a v1 pager and again on a v2
//!   (prefix-compressed) pager. Compression packs more records per
//!   page, so the same queries touch fewer pages: the cell asserts the
//!   answers are identical and the cold read ledger shrinks by at least
//!   20%.
//! - **`scan-mix`** — the seeded scan-vs-point-query workload from the
//!   pager's scan-resistance test, measured under the two-queue policy
//!   and under plain LRU. The cell asserts the 2Q point-query hit rate
//!   holds its pinned floor and structurally beats LRU.
//!
//! Both cells are deterministic (fixed fixtures, logical-clock
//! replacement decisions, seeded access order), so their rows are
//! trajectory-comparable across runs the same way the planner rows are.

use crate::par::{bench_directory, suite_queries, SweepConfig};
use netdir_index::IndexedDirectory;
use netdir_model::Entry;
use netdir_obs::MetricsRegistry;
use netdir_pager::{PageFormat, PagedList, Pager, PoolConfig, ReplacementPolicy};
use netdir_query::{parse_query, Evaluator};
use netdir_server::metrics as bridge;

/// One measured cell of the storage sweep.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// `"e16-cold"` or `"scan-mix"`.
    pub cell: String,
    /// Cold pages read by the baseline (v1 format / LRU policy misses).
    pub baseline_reads: u64,
    /// Cold pages read by the engine (v2 format / 2Q policy misses).
    pub engine_reads: u64,
    /// `1 - engine_reads / baseline_reads` (0 when not applicable).
    pub read_reduction: f64,
    /// Point-query hit rate under the baseline policy (scan-mix only).
    pub hit_rate_baseline: f64,
    /// Point-query hit rate under the engine policy (scan-mix only).
    pub hit_rate_engine: f64,
    /// Bytes the v2 page format saved versus v1 encoding (e16-cold only).
    pub compressed_bytes_saved: u64,
}

/// Evaluate the E16 suite cold on a pager of `format` and return the
/// materialized outputs, the total cold read count, and the bytes the
/// page format saved.
fn run_suite_cold(cfg: &SweepConfig, format: PageFormat) -> (Vec<Vec<Entry>>, u64, u64) {
    let pager = Pager::custom(
        512,
        PoolConfig {
            frames: 4096,
            policy: ReplacementPolicy::TwoQ,
        },
        format,
    );
    let dir = bench_directory(cfg);
    let idx = IndexedDirectory::build(&pager, &dir).expect("build storage index");
    let ev = Evaluator::new(&idx, &pager);
    pager.flush().expect("flush storage index");
    pager.reset_io();
    let mut outputs = Vec::new();
    for (_, text) in suite_queries(cfg) {
        // Every level starts cold so the ledger counts page footprint,
        // not buffer-pool luck.
        pager.flush().expect("flush between storage levels");
        pager.pool().clear_cache().expect("cold storage level");
        let query = parse_query(&text).expect("parse storage query");
        let out = ev
            .evaluate(&query)
            .expect("storage query evaluates")
            .to_vec()
            .expect("materialize storage output");
        outputs.push(out);
    }
    let saved = pager.pool().metrics().compressed_bytes_saved;
    (outputs, pager.io().reads, saved)
}

/// Minimal deterministic PRNG (xorshift*) — fixed seed, no std RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

const FRAMES: usize = 32;
const PAGES: u64 = 256;
const SCAN_BURST: u64 = 40; // > FRAMES: each burst can flush an LRU pool
const ROUNDS: usize = 6;
const HOT: u64 = 8;

/// Fraction of point queries that hit the buffer pool under `policy`
/// while a whole-list scan runs interleaved — the scan-resistance
/// workload, as a benchmark metric.
fn point_hit_rate(policy: ReplacementPolicy) -> f64 {
    let pager = Pager::custom(
        256,
        PoolConfig {
            frames: FRAMES,
            policy,
        },
        PageFormat::V1,
    );
    let per_page = pager.blocking_factor(8) as u64;
    let list = PagedList::from_iter(&pager, 0..PAGES * per_page).expect("scan-mix list");
    assert_eq!(list.num_pages(), PAGES);
    pager.flush().expect("flush scan-mix list");
    pager.pool().clear_cache().expect("cold scan-mix pool");

    // Warm the hot set: two touches promote a page out of probation.
    for _ in 0..2 {
        for h in 0..HOT {
            list.get(h * per_page).expect("warm hot page");
        }
    }

    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut scan_pos = HOT; // scan the cold tail, wrapping
    for _ in 0..ROUNDS {
        for _ in 0..SCAN_BURST {
            list.get(scan_pos * per_page).expect("scan page");
            scan_pos += 1;
            if scan_pos >= PAGES {
                scan_pos = HOT;
            }
        }
        for _ in 0..2 * HOT {
            let h = rng.next() % HOT;
            let before = pager.pool().metrics().hits;
            list.get(h * per_page).expect("point query");
            queries += 1;
            hits += pager.pool().metrics().hits - before;
        }
    }
    hits as f64 / queries as f64
}

/// Run both storage cells, fold the engine pool's behavior counters
/// into `registry`, and return the rows.
///
/// Panics if either claim fails — a storage pass that changed answers,
/// saved less than 20% of cold reads, or lost scan resistance is a bug,
/// not a data point.
pub fn storage_sweep(cfg: &SweepConfig, registry: &MetricsRegistry) -> Vec<StorageRow> {
    // Cell 1: cold E16 footprint, v1 vs v2 page format.
    let (v1_out, v1_reads, v1_saved) = run_suite_cold(cfg, PageFormat::V1);
    let (v2_out, v2_reads, v2_saved) = run_suite_cold(cfg, PageFormat::V2);
    assert_eq!(
        v1_out, v2_out,
        "the v2 page format changed query answers — compression must be \
         invisible above the pager"
    );
    assert_eq!(v1_saved, 0, "a v1 pager credited compression savings");
    assert!(v2_saved > 0, "a v2 pager saved no bytes over v1 encoding");
    let reduction = 1.0 - v2_reads as f64 / v1_reads.max(1) as f64;
    assert!(
        reduction >= 0.2,
        "prefix compression saved only {:.1}% of cold reads on E16 \
         ({v1_reads} v1 vs {v2_reads} v2) — the storage pass promises ≥20%",
        reduction * 100.0
    );

    // Cell 2: scan-mix point-query hit rate, 2Q vs LRU.
    let two_q = point_hit_rate(ReplacementPolicy::TwoQ);
    let lru = point_hit_rate(ReplacementPolicy::Lru);
    assert!(
        two_q >= 0.9,
        "two-queue point hit rate degraded under scan: {two_q:.3}"
    );
    assert!(
        two_q - lru >= 0.25,
        "two-queue win over LRU too small: {two_q:.3} vs {lru:.3}"
    );

    // Give the registry's pool series real traffic: replay the engine
    // configuration once and absorb its behavior counters.
    let pager = Pager::compressed(512, 64);
    let dir = bench_directory(cfg);
    let idx = IndexedDirectory::build(&pager, &dir).expect("build registry index");
    let ev = Evaluator::new(&idx, &pager);
    for (_, text) in suite_queries(cfg) {
        let query = parse_query(&text).expect("parse registry query");
        ev.evaluate(&query)
            .expect("registry query evaluates")
            .to_vec()
            .expect("materialize registry output");
    }
    bridge::absorb_pool(registry, pager.pool().metrics());

    vec![
        StorageRow {
            cell: "e16-cold".into(),
            baseline_reads: v1_reads,
            engine_reads: v2_reads,
            read_reduction: reduction,
            hit_rate_baseline: 0.0,
            hit_rate_engine: 0.0,
            compressed_bytes_saved: v2_saved,
        },
        StorageRow {
            cell: "scan-mix".into(),
            baseline_reads: 0,
            engine_reads: 0,
            read_reduction: 0.0,
            hit_rate_baseline: lru,
            hit_rate_engine: two_q,
            compressed_bytes_saved: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_sweep_enforces_both_claims_and_feeds_metrics() {
        let reg = MetricsRegistry::default();
        let rows = storage_sweep(&crate::par::smoke_config(), &reg);
        assert_eq!(rows.len(), 2);
        let cold = &rows[0];
        assert_eq!(cold.cell, "e16-cold");
        assert!(cold.read_reduction >= 0.2);
        assert!(cold.engine_reads < cold.baseline_reads);
        assert!(cold.compressed_bytes_saved > 0);
        let mix = &rows[1];
        assert_eq!(mix.cell, "scan-mix");
        assert!(mix.hit_rate_engine >= 0.9);
        assert!(mix.hit_rate_engine > mix.hit_rate_baseline);
        // The engine replay landed in the registry's pool series.
        assert!(reg.counter(netdir_obs::names::POOL_HITS).get() > 0);
        assert!(reg.counter(netdir_obs::names::POOL_COMPRESSED_BYTES_SAVED).get() > 0);
    }

    #[test]
    fn storage_sweep_is_deterministic() {
        let reg = MetricsRegistry::default();
        let a = storage_sweep(&crate::par::smoke_config(), &reg);
        let b = storage_sweep(&crate::par::smoke_config(), &reg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.baseline_reads, y.baseline_reads);
            assert_eq!(x.engine_reads, y.engine_reads);
            assert_eq!(x.hit_rate_engine.to_bits(), y.hit_rate_engine.to_bits());
            assert_eq!(x.hit_rate_baseline.to_bits(), y.hit_rate_baseline.to_bits());
        }
    }
}
