//! E13/E14 — the DEN applications against their brute-force oracles.
//!
//! Correctness rates on seeded workloads plus the size/latency profile of
//! the compiled decision queries.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_apps
//! ```

use netdir_apps::qos::{oracle_decide, PolicyEngine};
use netdir_apps::tops::{oracle_route, TopsRouter};
use netdir_bench::{cells, table};
use netdir_index::IndexedDirectory;
use netdir_model::Dn;
use netdir_pager::Pager;
use netdir_workloads::qos::QOS_BASE;
use netdir_workloads::tops::CallRequest;
use netdir_workloads::{qos_generate, tops_generate, Packet, QosParams, TopsParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("E13 — QoS policy decisions vs oracle (Example 2.1)\n");
    table::header(&[
        "policies", "queries", "agree", "matched", "avg ms", "avg I/O",
    ]);
    for policies in [50usize, 200, 800] {
        let dir = qos_generate(
            QosParams {
                policies,
                profiles: policies / 2,
                periods: 12,
                actions: 10,
                refs_per_policy: 3,
                exception_rate: 0.3,
                priority_levels: 4,
            },
            policies as u64,
        );
        let pager = Pager::new(4096, 64);
        let idx = IndexedDirectory::build(&pager, &dir).expect("index");
        let engine = PolicyEngine::new(&idx, &pager, Dn::parse(QOS_BASE).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 25;
        let mut agree = 0;
        let mut matched = 0;
        let mut total_io = 0u64;
        let start = Instant::now();
        for _ in 0..trials {
            let pkt = Packet::random(&mut rng);
            pager.reset_io();
            let got = engine.decide(&pkt).expect("decision");
            total_io += pager.io().total();
            let expect = oracle_decide(&dir, &pkt);
            let g: Vec<_> = got.policies.iter().map(|e| e.dn().to_string()).collect();
            let e: Vec<_> = expect.iter().map(|e| e.dn().to_string()).collect();
            if g == e {
                agree += 1;
            }
            if !g.is_empty() {
                matched += 1;
            }
        }
        let elapsed = start.elapsed().as_millis() as f64 / trials as f64;
        table::row(cells![
            policies,
            trials,
            format!("{agree}/{trials}"),
            matched,
            format!("{elapsed:.1}"),
            total_io / trials,
        ]);
        assert_eq!(agree, trials, "oracle disagreement!");
    }

    println!("\nE14 — TOPS call routing vs oracle (Example 2.2)\n");
    table::header(&[
        "subscribers", "calls", "agree", "reached", "avg ms", "avg I/O",
    ]);
    for subscribers in [25usize, 100, 400] {
        let params = TopsParams {
            subscribers,
            qhps_per_subscriber: 4,
            cas_per_qhp: 3,
        };
        let dir = tops_generate(params, subscribers as u64);
        let pager = Pager::new(4096, 64);
        let idx = IndexedDirectory::build(&pager, &dir).expect("index");
        let router = TopsRouter::new(&idx, &pager);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 40;
        let mut agree = 0;
        let mut reached = 0;
        let mut total_io = 0u64;
        let start = Instant::now();
        for _ in 0..trials {
            let req = CallRequest::random(&mut rng, subscribers);
            pager.reset_io();
            let got = router.route(&req).expect("routing");
            total_io += pager.io().total();
            let expect = oracle_route(&dir, &req);
            let g: Vec<_> = got.appearances.iter().map(|e| e.dn().to_string()).collect();
            let e: Vec<_> = expect.iter().map(|e| e.dn().to_string()).collect();
            if g == e {
                agree += 1;
            }
            if !g.is_empty() {
                reached += 1;
            }
        }
        let elapsed = start.elapsed().as_millis() as f64 / trials as f64;
        table::row(cells![
            subscribers,
            trials,
            format!("{agree}/{trials}"),
            reached,
            format!("{elapsed:.1}"),
            total_io / trials,
        ]);
        assert_eq!(agree, trials, "oracle disagreement!");
    }
    println!("\n   both applications agree with the prose semantics everywhere");
}
