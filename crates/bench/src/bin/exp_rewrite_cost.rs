//! E11 — Section 8.1's design argument: `{ac, dc}` can express
//! `{p, c, a, d}` (Theorem 8.2(d)) but the rewrite's whole-directory
//! third operand makes it far more expensive — which is why the language
//! keeps all six operators.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_rewrite_cost
//! ```

use netdir_bench::{cells, measure, table};
use netdir_index::IndexedDirectory;
use netdir_model::Dn;
use netdir_pager::Pager;
use netdir_query::rewrite::rewrite_via_constrained;
use netdir_query::{Evaluator, HierOp, Query};
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::{synth_forest, SynthParams};

fn main() {
    println!(
        "E11 — cost of expressing p/c via ac/dc with a whole-directory \
         third operand (Theorem 8.2(d) + §8.1)\n"
    );
    // Selective operands: small red/blue sets inside a large directory.
    for op in [HierOp::Parents, HierOp::Children, HierOp::Ancestors, HierOp::Descendants] {
        println!("operator {:?}:", op);
        table::header(&[
            "entries", "plain I/O", "rewrite I/O", "blow-up", "same answer",
        ]);
        for n in [2_000usize, 4_000, 8_000, 16_000] {
            let dir = synth_forest(
                SynthParams {
                    entries: n,
                    max_depth: 8,
                    red_fraction: 0.05, // selective operands
                    blue_fraction: 0.05,
                },
                31,
            );
            let pager = Pager::new(4096, 24);
            let idx = IndexedDirectory::build(&pager, &dir).expect("index");
            let red = Query::atomic(
                Dn::parse("dc=synth").unwrap(),
                Scope::Sub,
                AtomicFilter::eq("kind", "red"),
            );
            let blue = Query::atomic(
                Dn::parse("dc=synth").unwrap(),
                Scope::Sub,
                AtomicFilter::eq("kind", "blue"),
            );
            let plain = Query::hier(op, red.clone(), blue.clone());
            let rewritten = rewrite_via_constrained(op, red, blue);
            let run = |q: &Query| {
                let q = q.clone();
                measure(&pager, || {
                    Evaluator::new(&idx, &pager).evaluate(&q).map_err(|e| match e {
                        netdir_query::QueryError::Pager(p) => p,
                        other => panic!("unexpected: {other}"),
                    })
                })
            };
            let (a, io_plain) = run(&plain);
            let (b, io_rw) = run(&rewritten);
            let same = a.to_vec().unwrap() == b.to_vec().unwrap();
            table::row(cells![
                n,
                io_plain.total(),
                io_rw.total(),
                format!("{:.1}x", io_rw.total() as f64 / io_plain.total().max(1) as f64),
                same,
            ]);
        }
        println!();
    }
    println!(
        "the blow-up grows with directory size: the rewrite drags the \
         whole instance through the operator — ease of use AND cost \
         justify keeping the binary operators (§8.1)"
    );
}
