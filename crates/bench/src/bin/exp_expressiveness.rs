//! E10 — Theorem 8.1 made operational: what each language level buys.
//!
//! For each strict inclusion the witness query runs, and for the
//! LDAP ⊂ L0 step the Example 4.1 workaround is *measured*: the baseline
//! needs two round trips and ships a superset for client-side
//! differencing; one L0 query ships only the answer.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_expressiveness
//! ```

use netdir_bench::{cells, table};
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::Pager;
use netdir_query::{classify, parse_query};
use netdir_server::ClusterBuilder;
use netdir_filter::{parse_composite, Scope};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn build_directory(people: usize) -> Directory {
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).unwrap();
    for s in ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com"] {
        add(Entry::builder(dn(s)).class("dcObject").build().unwrap());
    }
    for (ou, parent) in [
        ("people", "dc=att, dc=com"),
        ("people", "dc=research, dc=att, dc=com"),
    ] {
        add(Entry::builder(dn(&format!("ou={ou}, {parent}")))
            .class("organizationalUnit")
            .build()
            .unwrap());
    }
    for i in 0..people {
        let parent = if i % 3 == 0 {
            "ou=people, dc=research, dc=att, dc=com"
        } else {
            "ou=people, dc=att, dc=com"
        };
        add(Entry::builder(dn(&format!("uid=u{i:04}, {parent}")))
            .class("inetOrgPerson")
            .attr("surName", if i % 2 == 0 { "jagadish" } else { "srivastava" })
            .build()
            .unwrap());
    }
    d
}

fn main() {
    println!("E10 — Theorem 8.1: LDAP ⊂ L0 ⊂ L1 ⊂ L2 ⊂ L3\n");

    println!("the witness queries and their classification:");
    table::header(&["level", "nodes", "construct"]);
    for (lang, q, why) in netdir_query::lang::witnesses() {
        assert_eq!(classify(&q), lang);
        table::row(cells![lang, q.num_nodes(), why]);
    }

    println!("\nExample 4.1 measured: LDAP workaround vs one L0 query");
    table::header(&[
        "people", "ldap trips", "ldap entries", "l0 trips", "l0 entries", "answer",
    ]);
    for people in [300usize, 1_000, 3_000] {
        let dir = build_directory(people);
        let cluster = ClusterBuilder::new()
            .server("att", dn("dc=att, dc=com"))
            .server("research", dn("dc=research, dc=att, dc=com"))
            .build(&dir);

        // LDAP baseline: the application (client) runs two searches
        // against the servers and differences them itself.
        let filter = parse_composite("(surName=jagadish)").unwrap();
        let att = cluster
            .node(cluster.server_id("att").unwrap())
            .ldap(&dn("dc=att, dc=com"), Scope::Sub, &filter)
            .unwrap();
        let research = cluster
            .node(cluster.server_id("research").unwrap())
            .ldap(&dn("dc=research, dc=att, dc=com"), Scope::Sub, &filter)
            .unwrap();
        let ldap_shipped = att.len() + research.len();
        let answer: Vec<&Entry> = att
            .iter()
            .filter(|e| research.iter().all(|r| r.dn() != e.dn()))
            .collect();

        // One L0 query posed at the att server: research's sub-result
        // ships once; the difference runs server-side.
        let q = parse_query(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
        let pager = Pager::new(4096, 48);
        cluster.net().reset();
        let l0 = cluster.query_from("att", &pager, &q).unwrap();
        let net = cluster.net().snapshot();
        assert_eq!(l0.len(), answer.len());

        table::row(cells![
            people,
            2,
            ldap_shipped,
            net.requests,
            net.entries_shipped,
            l0.len(),
        ]);
    }
    println!(
        "\n   the baseline ships the full superset to the client every \
         time; L0 ships one operand once and answers at the server \
         (Example 4.1, §4.2)"
    );
}
