//! E5/E6 — Theorems 6.1 and 6.2: aggregate selection stays linear.
//!
//! * Simple `g` selection: at most two scans of the input (Theorem 6.1).
//! * Structural aggregate selection (`count($2)`, `min($2.a)`,
//!   `count($2)=max(count($2))` — Figure 6): linear like the plain
//!   operators (Theorem 6.2).
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_agg
//! ```

use netdir_bench::{cells, measure, ratio_trend, setup, table};
use netdir_filter::atomic::IntOp;
use netdir_query::agg::CompiledAggFilter;
use netdir_query::agg_simple::simple_agg_select;
use netdir_query::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
use netdir_query::hs_stack::{hs_select, HsOp};

fn main() {
    let sizes = [2_000usize, 4_000, 8_000, 16_000, 32_000];

    println!("E5 — Theorem 6.1: simple aggregate selection in ≤ 2 scans\n");
    let filters: Vec<(&str, AggSelFilter)> = vec![
        (
            "count(weight) > 0 (single scan)",
            AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::Agg(
                    Aggregate::Count,
                    AttrRef::Own("weight".into()),
                )),
                op: IntOp::Gt,
                rhs: AggAttribute::Const(0),
            },
        ),
        (
            "max(weight) = max(max(weight)) (two scans)",
            AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::Agg(
                    Aggregate::Max,
                    AttrRef::Own("weight".into()),
                )),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(
                    Aggregate::Max,
                    Box::new(EntryAgg::Agg(Aggregate::Max, AttrRef::Own("weight".into()))),
                ),
            },
        ),
    ];
    for (label, f) in &filters {
        println!("filter: {label}");
        table::header(&["entries", "in pages", "I/O", "I/O / pages", "selected"]);
        let compiled = CompiledAggFilter::compile(f, false).expect("compiles");
        for n in sizes {
            let pager = setup::pager();
            let (l1, _) = setup::red_blue_lists(&pager, n, 11);
            let (out, io) = measure(&pager, || simple_agg_select(&pager, &l1, &compiled));
            table::row(cells![
                n,
                l1.num_pages(),
                io.total(),
                format!("{:.2}", io.total() as f64 / l1.num_pages() as f64),
                out.len(),
            ]);
        }
        println!();
    }

    println!("E6 — Theorem 6.2: structural aggregate selection stays linear\n");
    let structural: Vec<(&str, AggSelFilter)> = vec![
        ("count($2) > 2", AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
            op: IntOp::Gt,
            rhs: AggAttribute::Const(2),
        }),
        ("min($2.weight) < 10", AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Min,
                AttrRef::Of2("weight".into()),
            )),
            op: IntOp::Lt,
            rhs: AggAttribute::Const(10),
        }),
        ("count($2) = max(count($2))  [Figure 6]", AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
            op: IntOp::Eq,
            rhs: AggAttribute::EntrySet(Aggregate::Max, Box::new(EntryAgg::CountWitnesses)),
        }),
    ];
    for (label, f) in &structural {
        println!("(d L1 L2 {label}):");
        table::header(&["entries", "in pages", "I/O", "I/O / pages", "selected"]);
        let compiled = CompiledAggFilter::compile(f, true).expect("compiles");
        let mut points = Vec::new();
        for n in sizes {
            let pager = setup::pager();
            let (l1, l2) = setup::red_blue_lists(&pager, n, 13);
            let in_pages = l1.num_pages() + l2.num_pages();
            let (out, io) = measure(&pager, || {
                hs_select(&pager, HsOp::Descendants, &l1, &l2, None, &compiled)
            });
            points.push((in_pages as f64, io.total() as f64));
            table::row(cells![
                n,
                in_pages,
                io.total(),
                format!("{:.2}", io.total() as f64 / in_pages as f64),
                out.len(),
            ]);
        }
        println!(
            "   I/O ≈ {:.2} · pages — flat ratio ⇒ linear (Theorem 6.2)\n",
            ratio_trend(&points)
        );
    }
}
