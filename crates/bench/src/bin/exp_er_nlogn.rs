//! E7 — Theorem 7.1: the embedded-reference operators cost
//! `O(|L1|/B + (|L2|·m/B) · log(|L2|·m/B))` — N log N shape, sensitive to
//! `m` (values per attribute); the naive strawman is quadratic.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_er_nlogn
//! ```

use netdir_bench::{baseline, cells, measure, setup, table};
use netdir_model::Entry;
use netdir_pager::PagedList;
use netdir_query::agg::CompiledAggFilter;
use netdir_query::er_join::er_select;
use netdir_query::RefOp;
use netdir_workloads::{ref_graph, RefGraphParams};

fn lists(
    pager: &netdir_pager::Pager,
    n: usize,
    m: usize,
    seed: u64,
) -> (PagedList<Entry>, PagedList<Entry>) {
    let dir = ref_graph(
        RefGraphParams {
            sources: n,
            targets: n,
            refs_per_source: m,
        },
        seed,
    );
    let sources = dir
        .iter_sorted()
        .filter(|e| e.has_class(&"source".into()))
        .cloned();
    let targets = dir
        .iter_sorted()
        .filter(|e| e.has_class(&"target".into()))
        .cloned();
    (
        PagedList::from_iter(pager, sources).expect("sources"),
        PagedList::from_iter(pager, targets).expect("targets"),
    )
}

fn main() {
    let filter = CompiledAggFilter::exists_witness();
    let attr: netdir_model::AttrName = "ref".into();

    println!("E7 — Theorem 7.1: vd/dv scale as N log N; sweep over N (m=2)\n");
    for (op, sym, flip) in [(RefOp::ValueDn, "vd", false), (RefOp::DnValue, "dv", true)] {
        println!("operator ({sym}):");
        table::header(&[
            "entries", "in pages", "I/O", "I/O / pages", "naive I/O", "naive/fast",
        ]);
        for n in [1_000usize, 2_000, 4_000, 8_000, 16_000] {
            let pager = setup::pager();
            let (src, tgt) = lists(&pager, n, 2, 17);
            let (l1, l2) = if flip { (&tgt, &src) } else { (&src, &tgt) };
            let in_pages = l1.num_pages() + l2.num_pages();
            let (out, io) = measure(&pager, || er_select(&pager, op, l1, l2, &attr, &filter));
            let naive = if n <= 2_000 {
                let (_, nio) =
                    measure(&pager, || baseline::paged_naive_er(&pager, op, l1, l2, &attr));
                Some(nio.total())
            } else {
                None
            };
            table::row(cells![
                n,
                in_pages,
                io.total(),
                format!("{:.2}", io.total() as f64 / in_pages as f64),
                naive.map_or("—".into(), |x| x.to_string()),
                naive.map_or("—".into(), |x| format!("{:.1}x", x as f64 / io.total() as f64)),
            ]);
            let _ = out;
        }
        println!(
            "   (the I/O-per-page ratio grows slowly with N — the log \
             factor of the external sort)\n"
        );
    }

    println!("sensitivity to m = values per attribute (N = 8000, vd):\n");
    table::header(&["m", "pair pages", "I/O", "I/O / m=1"]);
    let mut base = None;
    for m in [1usize, 2, 4, 8, 16] {
        let pager = setup::pager();
        let (src, tgt) = lists(&pager, 8_000, m, 19);
        let (_, io) = measure(&pager, || {
            er_select(&pager, RefOp::ValueDn, &src, &tgt, &attr, &filter)
        });
        let b = *base.get_or_insert(io.total());
        table::row(cells![
            m,
            src.num_pages(),
            io.total(),
            format!("{:.2}x", io.total() as f64 / b as f64),
        ]);
    }
    println!(
        "\n   cost grows with m (the pair list LP has |L1|·m records — \
         Theorem 7.1's m term)"
    );
}
