//! Run every experiment binary in sequence — regenerates everything
//! recorded in EXPERIMENTS.md — and emit a machine-readable
//! `BENCH_*.json` report (schema in `netdir_bench::report`).
//!
//! ```sh
//! # Full run: all ten experiment binaries + the instrumented suite,
//! # report written to results/BENCH_full.json.
//! cargo run --release -p netdir-bench --bin run_experiments
//!
//! # Smoke run: instrumented suite only (seconds, used by
//! # `scripts/check.sh --bench-smoke`).
//! cargo run --release -p netdir-bench --bin run_experiments -- \
//!     --smoke --json target/BENCH_smoke.json
//!
//! # Validate an existing report and exit.
//! cargo run --release -p netdir-bench --bin run_experiments -- \
//!     --validate results/BENCH_full.json
//! ```

use netdir_bench::report::{validate_bench_json, ExperimentResult};
use netdir_bench::{load, par, smoke};
use std::process::{exit, Command};
use std::time::Instant;

const EXPERIMENTS: [&str; 10] = [
    "exp_hs_linear",
    "exp_agg",
    "exp_er_nlogn",
    "exp_query_tree",
    "exp_rewrite_cost",
    "exp_expressiveness",
    "exp_distributed",
    "exp_apps",
    "exp_ablation",
    "exp_parallel",
];

fn usage() -> ! {
    eprintln!(
        "usage: run_experiments [--smoke] [--json PATH]\n\
         \x20      run_experiments --validate PATH"
    );
    exit(2)
}

/// Run one experiment binary, preferring a sibling binary (already
/// built alongside this one) and falling back to cargo so a bare
/// `cargo run --bin run_experiments` works too.
fn run_experiment(name: &str) -> ExperimentResult {
    println!("\n════════════════════ {name} ════════════════════\n");
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join(name)))
        .filter(|p| p.exists());
    let started = Instant::now();
    let status = match sibling {
        Some(path) => Command::new(path).status(),
        None => Command::new("cargo")
            .args(["run", "--release", "-q", "-p", "netdir-bench", "--bin", name])
            .status(),
    }
    .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(status.success(), "{name} failed");
    ExperimentResult {
        name: name.to_string(),
        status: "ok".to_string(),
        wall_time_secs: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut smoke_only = false;
    let mut json_path: Option<String> = None;
    let mut validate_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("run_experiments: {flag} needs a value");
                exit(2)
            })
        };
        match arg.as_str() {
            "--smoke" => smoke_only = true,
            "--json" => json_path = Some(value("--json")),
            "--validate" => validate_path = Some(value("--validate")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("run_experiments: unknown argument {other:?}");
                usage()
            }
        }
    }

    if let Some(path) = validate_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("run_experiments: cannot read {path}: {e}");
            exit(1)
        });
        match validate_bench_json(&text) {
            Ok(()) => println!("{path}: valid BENCH report"),
            Err(e) => {
                eprintln!("run_experiments: {path}: {e}");
                exit(1)
            }
        }
        return;
    }

    let results: Vec<ExperimentResult> = if smoke_only {
        Vec::new()
    } else {
        EXPERIMENTS.iter().map(|name| run_experiment(name)).collect()
    };

    println!("\n════════════════════ instrumented suite ════════════════════\n");
    // Full runs record the full-sized degree sweep (degrees 1/2/4/8);
    // smoke keeps the seconds-scale one.
    let sweep = if smoke_only { par::smoke_config() } else { par::full_config() };
    let load_cfg = if smoke_only { load::smoke_config() } else { load::full_config() };
    let mut report = smoke::instrumented_suite_with(&sweep, &load_cfg);
    report.mode = if smoke_only { "smoke" } else { "full" }.to_string();
    report.experiments = results;
    for q in &report.queries {
        println!(
            "{:>7}  entries={} spans={} predicted_io={:.1} observed_io={}",
            q.level, q.entries, q.spans, q.predicted_io, q.observed_io
        );
    }
    for r in &report.parallel {
        println!(
            "{:>7}  degree={} wall={:.4}s speedup={:.2}x reads={} writes={} allocs={}",
            r.suite, r.degree, r.wall_secs, r.speedup, r.io_reads, r.io_writes, r.io_allocs
        );
    }
    for m in &report.mutation {
        println!(
            "{:>7}  batches={} mutations={} wall={:.4}s wal_fsyncs={} wal_page_writes={}",
            m.phase, m.batches, m.mutations, m.wall_secs, m.wal_fsyncs, m.wal_page_writes
        );
    }
    for l in &report.load {
        println!(
            "{:>9}  clients={:<3} offered={:<4} completed={:<4} busy={:<4} deadline={} \
             rps={:.0} p50={}us p99={}us p999={}us",
            l.mode,
            l.clients,
            l.offered,
            l.completed,
            l.busy,
            l.deadline,
            l.throughput_rps,
            l.p50_us,
            l.p99_us,
            l.p999_us
        );
    }
    for p in &report.planner {
        println!(
            "{:>12}  steps={} cache_hit={} reads naive={} chosen={} \
             predicted naive={:.1} chosen={:.1} wall naive={:.4}s chosen={:.4}s",
            p.label,
            p.steps,
            p.cache_hit,
            p.naive_reads,
            p.chosen_reads,
            p.predicted_naive,
            p.predicted_chosen,
            p.naive_wall_secs,
            p.chosen_wall_secs
        );
    }
    for s in &report.storage {
        println!(
            "{:>9}  baseline_reads={} engine_reads={} reduction={:.1}% \
             hit_rate lru={:.3} two_q={:.3} bytes_saved={}",
            s.cell,
            s.baseline_reads,
            s.engine_reads,
            s.read_reduction * 100.0,
            s.hit_rate_baseline,
            s.hit_rate_engine,
            s.compressed_bytes_saved
        );
    }

    let text = report.to_json();
    validate_bench_json(&text).expect("self-check: emitted report must validate");
    let path = json_path.unwrap_or_else(|| {
        let dir = if smoke_only { "target" } else { "results" };
        format!("{dir}/BENCH_{}.json", report.mode)
    });
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}
