//! Run every experiment binary in sequence — regenerates everything
//! recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin run_experiments
//! ```

use std::process::Command;

fn main() {
    let experiments = [
        "exp_hs_linear",
        "exp_agg",
        "exp_er_nlogn",
        "exp_query_tree",
        "exp_rewrite_cost",
        "exp_expressiveness",
        "exp_distributed",
        "exp_apps",
        "exp_ablation",
    ];
    for name in experiments {
        println!("\n════════════════════ {name} ════════════════════\n");
        // Prefer a sibling binary (already built alongside this one);
        // fall back to cargo so a bare `cargo run --bin run_experiments`
        // works too.
        let sibling = std::env::current_exe()
            .ok()
            .and_then(|exe| exe.parent().map(|d| d.join(name)))
            .filter(|p| p.exists());
        let status = match sibling {
            Some(path) => Command::new(path).status(),
            None => Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "netdir-bench", "--bin", name])
                .status(),
        }
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
}
