//! Ablations — measuring the design choices DESIGN.md calls out:
//!
//! 1. **Index probe vs. scope scan** for atomic queries (the §4.1
//!    efficient-atomic-query assumption): selective filters should win
//!    big through the indices; broad filters shouldn't lose much.
//! 2. **Evaluator memoization** on self-referential compositions (the
//!    QoS decision query), on vs. off.
//! 3. **Chain boundary-merging** in the pending-output buffers: block
//!    counts with and without many tiny concatenations.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_ablation
//! ```

use netdir_apps::PolicyEngine;
use netdir_bench::{cells, measure, table};
use netdir_index::IndexedDirectory;
use netdir_model::Dn;
use netdir_pager::Pager;
use netdir_query::Evaluator;
use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::qos::QOS_BASE;
use netdir_workloads::{qos_generate, synth_forest, Packet, QosParams, SynthParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("A1 — atomic evaluation: index probe vs scope scan\n");
    let dir = synth_forest(
        SynthParams {
            entries: 16_000,
            max_depth: 8,
            red_fraction: 0.02, // selective
            blue_fraction: 0.6, // broad
        },
        51,
    );
    let pager = Pager::new(4096, 48);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    let base = Dn::parse("dc=synth").unwrap();
    table::header(&["filter", "hits", "probe I/O", "scan I/O", "scan/probe"]);
    for (label, filter) in [
        ("kind=red (2%)", AtomicFilter::eq("kind", "red")),
        ("kind=blue (60%)", AtomicFilter::eq("kind", "blue")),
        ("weight<3 (3%)", AtomicFilter::int_cmp("weight", IntOp::Lt, 3)),
        ("weight<90 (90%)", AtomicFilter::int_cmp("weight", IntOp::Lt, 90)),
    ] {
        let (out, probe_io) =
            measure(&pager, || idx.evaluate_atomic(&base, Scope::Sub, &filter));
        let (_, scan_io) = measure(&pager, || idx.evaluate_scan(&base, Scope::Sub, &filter));
        table::row(cells![
            label,
            out.len(),
            probe_io.total(),
            scan_io.total(),
            format!("{:.1}x", scan_io.total() as f64 / probe_io.total().max(1) as f64),
        ]);
    }
    println!(
        "   (selective filters: the B+-tree/trie probe reads only the \
         hit pages; broad filters approach scan cost, as expected)\n"
    );

    println!("A2 — evaluator memoization on the QoS decision query\n");
    table::header(&["policies", "memo ms", "plain ms", "speedup", "memo I/O", "plain I/O"]);
    for policies in [50usize, 200] {
        let dir = qos_generate(
            QosParams {
                policies,
                profiles: policies / 2,
                ..QosParams::default()
            },
            7,
        );
        let pager = Pager::new(4096, 64);
        let idx = IndexedDirectory::build(&pager, &dir).expect("index");
        let engine = PolicyEngine::new(&idx, &pager, Dn::parse(QOS_BASE).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let pkt = Packet::random(&mut rng);
        let q = engine.decision_query(&pkt);

        let run = |memo: bool| {
            let ev = if memo {
                Evaluator::new(&idx, &pager).with_memo()
            } else {
                Evaluator::new(&idx, &pager)
            };
            let t = Instant::now();
            let (_, io) = measure(&pager, || {
                ev.evaluate(&q).map_err(|e| match e {
                    netdir_query::QueryError::Pager(p) => p,
                    other => panic!("unexpected: {other}"),
                })
            });
            (t.elapsed().as_secs_f64() * 1000.0, io.total())
        };
        let (memo_ms, memo_io) = run(true);
        let (plain_ms, plain_io) = run(false);
        table::row(cells![
            policies,
            format!("{memo_ms:.1}"),
            format!("{plain_ms:.1}"),
            format!("{:.1}x", plain_ms / memo_ms.max(0.01)),
            memo_io,
            plain_io,
        ]);
    }
    println!(
        "   (the decision query repeats its `top` subtree three times; \
         common-sub-expression caching removes the re-evaluation)\n"
    );

    println!("A3 — chain boundary-merging keeps pending buffers dense\n");
    table::header(&["splices", "blocks (merge)", "blocks ideal"]);
    for n in [500u64, 2_000, 8_000] {
        let pager = Pager::new(4096, 16);
        let mut arena: netdir_pager::ChainArena<u64> =
            netdir_pager::ChainArena::new(&pager);
        let mut acc = netdir_pager::Chain::empty();
        for i in 0..n {
            let single = arena.push(netdir_pager::Chain::empty(), &i).unwrap();
            acc = arena.concat(acc, single).unwrap();
        }
        let ideal = (n as usize * 12) / pager.payload_size() + 1;
        table::row(cells![n, arena.num_blocks(), ideal]);
        assert_eq!(arena.to_vec(acc).unwrap().len(), n as usize);
    }
    println!(
        "   (without merging, every splice would leave a one-record \
         block — N blocks instead of N/B; the merge rule is what keeps \
         the c/d/dc operators' output phase linear)"
    );
}
