//! E12 — Section 8.3: distributed evaluation. How much does delegation
//! ship over the network, as zones multiply?
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_distributed
//! cargo run --release -p netdir-bench --bin exp_distributed -- --wire
//! cargo run --release -p netdir-bench --bin exp_distributed -- --faults
//! ```
//!
//! By default zones are in-process store threads and shipped bytes are
//! the encoded-entry payloads the channel transport would frame. With
//! `--wire`, every zone is a real TCP daemon on loopback and the
//! shipped-byte column counts actual response frames (header included)
//! read off the sockets. With `--faults`, the transport is wrapped in a
//! seeded fault injector and the sweep reports how often queries
//! succeed, degrade, or fail as the drop rate climbs — under strict and
//! partial consistency.

use netdir_bench::{cells, table};
use netdir_model::{Directory, Dn};
use netdir_pager::Pager;
use netdir_query::{parse_query, Query};
use netdir_server::{
    BreakerConfig, ChannelTransport, ClusterBuilder, ConsistencyMode, FaultConfig,
    FaultTransport, NetSnapshot, RetryPolicy, Router, ServerNode,
};
use netdir_wire::WireCluster;
use netdir_workloads::{dns_tree, synth_forest, SynthParams};

fn zone_roots(dir: &Directory, depth: usize, count: usize) -> Vec<Dn> {
    dir.iter_sorted()
        .filter(|e| e.dn().depth() == depth)
        .take(count)
        .map(|e| e.dn().clone())
        .collect()
}

/// Evaluate `q` as posed to `root` on a cluster built from `builder`,
/// over channels or over loopback TCP. Returns (servers, net, answers).
fn run_once(
    builder: ClusterBuilder,
    dir: &Directory,
    pager: &Pager,
    q: &Query,
    wire: bool,
) -> (usize, NetSnapshot, usize) {
    if wire {
        let cluster = WireCluster::launch_default(builder, dir).expect("launch daemons");
        cluster.net().reset();
        let hits = cluster.query_from("root", pager, q).expect("query");
        (
            cluster.num_servers(),
            cluster.net().snapshot(),
            hits.len(),
        )
    } else {
        let cluster = builder.build(dir);
        cluster.net().reset();
        let hits = cluster.query_from("root", pager, q).expect("query");
        (
            cluster.num_servers(),
            cluster.net().snapshot(),
            hits.len(),
        )
    }
}

/// `--faults`: the same synthetic forest, but the transport misbehaves.
/// Sweep injected drop rates under strict and partial consistency and
/// report, per cell, how the retry/degradation machinery spent its
/// budget. A fixed seed makes the whole table reproducible.
fn run_faults() {
    println!(
        "E12f — fault-tolerant evaluation: success vs. injected drop rate\n\
         (8 zones, 3 immediate retry attempts per zone, seeded injector)\n"
    );
    let dir = synth_forest(
        SynthParams {
            entries: 4_000,
            max_depth: 8,
            red_fraction: 0.3,
            blue_fraction: 0.3,
        },
        41,
    );
    let q = parse_query("(c (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue))")
        .unwrap();
    let trials = 40u32;
    table::header(&[
        "drop rate", "mode", "ok", "partial", "failed", "retries", "gave up", "dropped",
    ]);
    for &drop in &[0.0, 0.05, 0.15, 0.3] {
        for mode in [ConsistencyMode::Strict, ConsistencyMode::Partial] {
            // Fresh cluster per cell so counters and breakers start cold.
            let mut builder =
                ClusterBuilder::new().server("root", Dn::parse("dc=synth").unwrap());
            for (i, z) in zone_roots(&dir, 2, 7).into_iter().enumerate() {
                builder = builder.server(format!("z{i}"), z);
            }
            let parts = builder.into_parts(&dir);
            let nodes: Vec<ServerNode> = parts
                .configs
                .into_iter()
                .zip(parts.partitions)
                .map(|(cfg, entries)| ServerNode::spawn(cfg, entries))
                .collect();
            let channel = ChannelTransport::new(nodes.iter().map(|n| n.sender()).collect());
            let fault = FaultTransport::new(
                Box::new(channel),
                FaultConfig::seeded(97).with_drop_rate(drop),
            );
            let fault_stats = fault.stats();
            let router = Router::new(parts.delegation, Box::new(fault))
                .with_retry(RetryPolicy::immediate(3))
                .with_breaker(BreakerConfig {
                    // Weather, not outage: keep probing every zone.
                    failure_threshold: 1_000,
                    cooldown: std::time::Duration::from_secs(600),
                });
            let pager = Pager::new(4096, 48);
            let (mut ok, mut degraded, mut failed) = (0u32, 0u32, 0u32);
            for _ in 0..trials {
                match router.query_with(0, &pager, &q, mode) {
                    Ok(out) if out.is_complete() => ok += 1,
                    Ok(_) => degraded += 1,
                    Err(_) => failed += 1,
                }
            }
            let retry = router.retry_stats().snapshot();
            table::row(cells![
                format!("{drop:.2}"),
                match mode {
                    ConsistencyMode::Strict => "strict",
                    ConsistencyMode::Partial => "partial",
                },
                ok,
                degraded,
                failed,
                retry.retries,
                retry.gave_up,
                fault_stats.snapshot().dropped,
            ]);
        }
    }
    println!(
        "\n   strict mode converts exhausted retries into failed queries; \
         partial mode converts them into degraded (subset) answers. The \
         seeded injector makes every cell reproducible."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--faults") {
        run_faults();
        return;
    }
    let wire = args.iter().any(|a| a == "--wire");
    println!(
        "E12 — distributed evaluation: shipping vs. number of zones\n\
         transport: {}\n",
        if wire {
            "TCP loopback daemons (real frame bytes)"
        } else {
            "in-process channels (encoded-entry bytes); rerun with --wire for sockets"
        }
    );

    let dir = synth_forest(
        SynthParams {
            entries: 4_000,
            max_depth: 8,
            red_fraction: 0.3,
            blue_fraction: 0.3,
        },
        41,
    );
    let queries = [
        ("atomic sub", "(dc=synth ? sub ? kind=red)"),
        (
            "L1 children",
            "(c (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue))",
        ),
        (
            "L2 agg",
            "(g (dc=synth ? sub ? kind=red) max(weight) = max(max(weight)))",
        ),
    ];

    for (label, text) in queries {
        println!("query: {label}  —  {text}");
        table::header(&[
            "zones", "requests", "entries", "KB shipped", "answers",
        ]);
        let q = parse_query(text).unwrap();
        for zones in [1usize, 2, 4, 8, 16] {
            let mut builder = ClusterBuilder::new().server("root", Dn::parse("dc=synth").unwrap());
            for (i, z) in zone_roots(&dir, 2, zones - 1).into_iter().enumerate() {
                builder = builder.server(format!("z{i}"), z);
            }
            let pager = Pager::new(4096, 48);
            let (servers, net, answers) = run_once(builder, &dir, &pager, &q, wire);
            table::row(cells![
                servers,
                net.requests,
                net.entries_shipped,
                format!("{:.1}", net.bytes_shipped as f64 / 1024.0),
                answers,
            ]);
        }
        println!();
    }

    if wire {
        println!(
            "delegation-depth sweep runs in-process (a depth-4 cut means \
             hundreds of daemons):"
        );
    }
    println!("delegation-depth sweep on a uniform dc-tree (fanout 4):");
    table::header(&["cut depth", "zones", "requests", "entries shipped"]);
    let dir = dns_tree(5, 4);
    let q = parse_query("(dc=com ? sub ? level=5)").unwrap();
    // Zone roots at DN depth 2/3/4 — one level below dc=com and deeper.
    for depth in [2usize, 3, 4] {
        let mut builder = ClusterBuilder::new().server("root", Dn::parse("dc=com").unwrap());
        for (i, z) in zone_roots(&dir, depth, usize::MAX).into_iter().enumerate() {
            builder = builder.server(format!("z{i}"), z);
        }
        let cluster = builder.build(&dir);
        let pager = Pager::new(4096, 48);
        cluster.net().reset();
        let hits = cluster.query_from("root", &pager, &q).expect("query");
        let net = cluster.net().snapshot();
        table::row(cells![
            depth,
            cluster.num_servers(),
            net.requests,
            net.entries_shipped,
        ]);
        assert_eq!(hits.len(), 4usize.pow(5));
    }
    println!(
        "\n   answers are identical at every partitioning (verified by \
         the distributed integration tests); the table shows the network \
         price of finer delegation"
    );
}
