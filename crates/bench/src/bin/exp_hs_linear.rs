//! E4 — Theorem 5.1: the stack algorithms' I/O is linear in the operand
//! pages; the naive strawman is quadratic; report the crossover.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_hs_linear
//! ```

use netdir_bench::{baseline, cells, measure, ratio_trend, setup, table};
use netdir_query::agg::CompiledAggFilter;
use netdir_query::hs_stack::{hs_select, HsOp};

fn main() {
    println!("E4 — Theorem 5.1: linear I/O of ComputeHSPC/HSAD/HSADc\n");
    let ops = [
        (HsOp::Parents, "p"),
        (HsOp::Children, "c"),
        (HsOp::Ancestors, "a"),
        (HsOp::Descendants, "d"),
        (HsOp::AncestorsConstrained, "ac"),
        (HsOp::DescendantsConstrained, "dc"),
    ];
    let sizes = [1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000];
    let naive_cap = 4_000;
    let filter = CompiledAggFilter::exists_witness();

    for (op, sym) in ops {
        println!("operator ({sym}):");
        table::header(&[
            "entries", "in pages", "stack I/O", "I/O per pg", "naive I/O", "naive/stack",
        ]);
        let mut points = Vec::new();
        for n in sizes {
            let pager = setup::pager();
            let (l1, l2) = setup::red_blue_lists(&pager, n, 7);
            let l3 = if op.is_constrained() {
                // Blockers: reuse the red list (self-blocking shape of
                // Example 5.3).
                Some(l1.clone())
            } else {
                None
            };
            let in_pages = l1.num_pages() + l2.num_pages() + l3.as_ref().map_or(0, |l| l.num_pages());
            let (out, io) = measure(&pager, || {
                hs_select(&pager, op, &l1, &l2, l3.as_ref(), &filter)
            });
            let per_page = io.total() as f64 / in_pages as f64;
            points.push((in_pages as f64, io.total() as f64));

            let naive_io = if n <= naive_cap && !op.is_constrained() {
                let (_, nio) = measure(&pager, || baseline::paged_naive_hs(&pager, op, &l1, &l2));
                Some(nio.total())
            } else {
                None
            };
            table::row(cells![
                n,
                in_pages,
                io.total(),
                format!("{per_page:.2}"),
                naive_io.map_or("—".into(), |x| x.to_string()),
                naive_io.map_or("—".into(), |x| format!("{:.1}x", x as f64 / io.total() as f64)),
            ]);
            let _ = out;
        }
        let slope = ratio_trend(&points);
        let first_ratio = points[0].1 / points[0].0;
        println!(
            "   I/O ≈ {slope:.2} · pages (first-point ratio {first_ratio:.2}) — \
             flat ratio ⇒ linear, as Theorem 5.1 claims\n"
        );
    }
}
