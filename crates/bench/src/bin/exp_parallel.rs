//! E16 — parallel bottom-up evaluation: wall-clock speedup of the
//! L0–L3 suite at worker degrees 1/2/4/8 over a latency-bearing pager,
//! with the page-I/O ledger pinned identical at every degree. Also
//! sweeps parallel run formation in the external sort.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_parallel
//! ```

use netdir_bench::par::{degree_sweep, full_config};
use netdir_bench::{cells, table};
use netdir_obs::MetricsRegistry;
use netdir_server::metrics::register_all;

fn main() {
    let cfg = full_config();
    println!(
        "E16 — parallel evaluation speedup ({} zones x {} entries, {:?} read latency)\n",
        cfg.zones, cfg.per_zone, cfg.read_delay
    );
    let registry = MetricsRegistry::default();
    register_all(&registry);
    let rows = degree_sweep(&cfg, &registry);

    for suite in ["eval", "sort"] {
        println!("suite ({suite}):");
        table::header(&["degree", "wall ms", "speedup", "reads", "writes", "allocs"]);
        for r in rows.iter().filter(|r| r.suite == suite) {
            table::row(cells![
                r.degree,
                format!("{:.2}", r.wall_secs * 1e3),
                format!("{:.2}x", r.speedup),
                r.io_reads,
                r.io_writes,
                r.io_allocs
            ]);
        }
        println!();
    }

    let d4 = rows
        .iter()
        .find(|r| r.suite == "eval" && r.degree == 4)
        .expect("degree-4 eval row");
    println!(
        "eval suite at degree 4: {:.2}x over degree 1 (I/O identical across degrees)",
        d4.speedup
    );
    assert!(
        d4.speedup > 1.5,
        "degree 4 must beat degree 1 by >1.5x, measured {:.2}x",
        d4.speedup
    );
}
