//! E8/E9 — Theorems 8.3 and 8.4: whole-query evaluation.
//!
//! * I/O grows linearly with query-tree size |Q| and with |L| (the
//!   cumulative atomic outputs), for L2 trees (Theorem 8.3).
//! * Evaluation succeeds under a small **constant** frame budget, and
//!   spending more memory does not change the asymptotics (the buffer
//!   sweep).
//! * L3 trees pick up the N log N factor (Theorem 8.4), tracked by the
//!   [`netdir_query::cost`] model.
//!
//! ```sh
//! cargo run --release -p netdir-bench --bin exp_query_tree
//! ```

use netdir_bench::{cells, measure, table};
use netdir_index::IndexedDirectory;
use netdir_model::Dn;
use netdir_pager::Pager;
use netdir_query::cost::{predicted_io, CostInputs};
use netdir_query::{Evaluator, HierOp, Query, RefOp};
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::{ref_graph, synth_forest, RefGraphParams, SynthParams};

fn atom(filter: AtomicFilter) -> Query {
    Query::atomic(Dn::parse("dc=synth").unwrap(), Scope::Sub, filter)
}

/// A chain of alternating hierarchy operators of the given node count.
fn l2_chain(ops: usize) -> Query {
    let mut q = atom(AtomicFilter::eq("kind", "red"));
    for i in 0..ops {
        let other = atom(AtomicFilter::eq("kind", if i % 2 == 0 { "blue" } else { "red" }));
        let op = match i % 4 {
            0 => HierOp::Children,
            1 => HierOp::Ancestors,
            2 => HierOp::Parents,
            _ => HierOp::Descendants,
        };
        // Alternate which side the chain feeds so both operands vary.
        q = Query::hier(op, other, q);
    }
    q
}

fn main() {
    println!("E8 — Theorem 8.3: I/O ∝ |Q| · |L|/B with constant memory\n");

    println!("sweep |Q| (operator-chain length), fixed 16k-entry forest:");
    table::header(&["|Q| nodes", "I/O", "I/O per node", "predicted"]);
    let dir = synth_forest(
        SynthParams {
            entries: 16_000,
            max_depth: 10,
            red_fraction: 0.5,
            blue_fraction: 0.5,
        },
        23,
    );
    let pager = Pager::new(4096, 24);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    for ops in [1usize, 2, 4, 8, 16] {
        let q = l2_chain(ops);
        let (out, io) = measure(&pager, || {
            Evaluator::new(&idx, &pager).evaluate(&q).map_err(|e| match e {
                netdir_query::QueryError::Pager(p) => p,
                other => panic!("unexpected: {other}"),
            })
        });
        let atomic_pages: u64 = 2 * (dir.len() as u64 / 2 / 30); // rough |L|/B
        let pred = predicted_io(&q, CostInputs {
            atomic_pages,
            max_values_per_attr: 1,
        });
        table::row(cells![
            q.num_nodes(),
            io.total(),
            format!("{:.1}", io.total() as f64 / q.num_nodes() as f64),
            format!("{:.0}·c", pred / atomic_pages as f64),
        ]);
        let _ = out;
    }

    println!("\nsweep buffer frames (constant-memory claim), |Q|=9 chain, 8k forest:");
    table::header(&["frames", "I/O", "completed"]);
    let small = synth_forest(
        SynthParams {
            entries: 8_000,
            max_depth: 10,
            red_fraction: 0.5,
            blue_fraction: 0.5,
        },
        23,
    );
    for frames in [12usize, 16, 24, 48, 96, 512] {
        let pager = Pager::new(4096, frames);
        let idx = IndexedDirectory::build(&pager, &small).expect("index");
        let q = l2_chain(4);
        let (_, io) = measure(&pager, || {
            Evaluator::new(&idx, &pager).evaluate(&q).map_err(|e| match e {
                netdir_query::QueryError::Pager(p) => p,
                other => panic!("unexpected: {other}"),
            })
        });
        table::row(cells![frames, io.total(), "yes"]);
    }
    println!(
        "   (every budget ≥ 8 frames completes; extra memory only \
         trims re-reads — the algorithms run in constant memory)"
    );

    println!("\nE9 — Theorem 8.4: an L3 node adds the sort's log factor\n");
    table::header(&["entries", "L2 tree I/O", "L3 tree I/O", "L3/L2"]);
    for n in [2_000usize, 4_000, 8_000, 16_000] {
        let dir = ref_graph(
            RefGraphParams {
                sources: n / 2,
                targets: n / 2,
                refs_per_source: 2,
            },
            29,
        );
        let pager = Pager::new(4096, 24);
        let idx = IndexedDirectory::build(&pager, &dir).expect("index");
        let src = Query::atomic(
            Dn::parse("ou=src, dc=synth").unwrap(),
            Scope::Sub,
            AtomicFilter::eq("objectClass", "source"),
        );
        let tgt = Query::atomic(
            Dn::parse("ou=tgt, dc=synth").unwrap(),
            Scope::Sub,
            AtomicFilter::eq("objectClass", "target"),
        );
        // Same tree shape; L2 uses a hierarchy op, L3 a reference op.
        let l2q = Query::hier(HierOp::Descendants, src.clone(), tgt.clone());
        let l3q = Query::embed_ref(RefOp::ValueDn, src, tgt, "ref");
        let ev = |q: &Query| {
            let q = q.clone();
            let (_, io) = measure(&pager, || {
                Evaluator::new(&idx, &pager).evaluate(&q).map_err(|e| match e {
                    netdir_query::QueryError::Pager(p) => p,
                    other => panic!("unexpected: {other}"),
                })
            });
            io.total()
        };
        let a = ev(&l2q);
        let b = ev(&l3q);
        table::row(cells![n, a, b, format!("{:.2}x", b as f64 / a as f64)]);
    }
    println!("\n   (the L3/L2 ratio grows with N — Theorem 8.4's log factor)");
}
