//! The cost-based planner sweep (the `"planner"` section of
//! `BENCH_*.json`, schema v5).
//!
//! Runs the E16 L0–L3 suite plus three planner-showcase queries over the
//! same latency-bearing pager as the degree sweep, twice per cell:
//! naive (the query as written) and planned (what [`Planner::plan`]
//! chose after a training pass fed the stats catalog through an
//! [`ObservingSource`]). The sweep *enforces* the optimizer's contract
//! on every cell — byte-identical output, chosen cold-cache reads never
//! above naive — and reports both ledgers and wall clocks so the report
//! shows where the cost model found money and where it correctly left
//! the query alone. A repeated-shape cell demonstrates the plan cache.

use crate::par::{bench_directory, suite_queries, SweepConfig};
use netdir_index::IndexedDirectory;
use netdir_model::Entry;
use netdir_obs::MetricsRegistry;
use netdir_pager::Pager;
use netdir_query::planner::ObservingSource;
use netdir_query::{parse_query, Evaluator, Planner, Query};
use netdir_server::metrics as bridge;
use std::time::{Duration, Instant};

/// The degree sweep's pager carries a frame budget far beyond its
/// working set, so its ledger is a pure function of what the evaluator
/// asked for. The planner sweep wants the opposite: a *small* budget,
/// so oversized intermediate lists (the ruinous rewrite's
/// whole-directory scans) are evicted and cost real re-reads — the
/// currency the cost model prices.
fn planner_pager(cfg: &SweepConfig) -> Pager {
    Pager::with_latency(512, 48, cfg.read_delay, Duration::ZERO)
}

/// One (query, naive-vs-chosen) cell of the planner sweep.
#[derive(Debug, Clone)]
pub struct PlannerRow {
    /// Cell label (`L0`–`L3` from the E16 suite, or a showcase name).
    pub label: String,
    /// Rewrite steps the chosen plan applied (0 = identity plan).
    pub steps: u64,
    /// Whether this plan replayed from the shape-keyed cache.
    pub cache_hit: bool,
    /// Predicted page I/O of the query as written (Theorems 8.3/8.4).
    pub predicted_naive: f64,
    /// Predicted page I/O of the chosen plan.
    pub predicted_chosen: f64,
    /// Cold-cache pages read by the naive query.
    pub naive_reads: u64,
    /// Cold-cache pages read by the chosen plan.
    pub chosen_reads: u64,
    /// Wall-clock seconds for the naive query (latency-bearing pager).
    pub naive_wall_secs: f64,
    /// Wall-clock seconds for the chosen plan.
    pub chosen_wall_secs: f64,
}

/// The showcase cells: queries the E16 suite does not cover, each
/// exercising one planner family. `repeat-shape` shares `and-chain`'s
/// normalized shape (only the filter constant differs), so planning it
/// second must hit the plan cache.
fn showcase_queries() -> Vec<(&'static str, String)> {
    let and_chain = |weight: u64| {
        format!(
            "(& (& (dc=bench ? sub ? objectClass=thing) (dc=bench ? sub ? pad=*)) \
                (ou=z0, dc=bench ? sub ? weight={weight}))"
        )
    };
    let whole = "(null-dn ? sub ? objectClass=*)";
    vec![
        // A 3-atom boolean chain: two whole-tree scans and one selective
        // zone atom. Reordering + base tightening both apply.
        ("and-chain", and_chain(0)),
        // Same shape, different constant: the cache-hit cell.
        ("repeat-shape", and_chain(1)),
        // The paper's Theorem 8.2(d) form with the ruinous (- X X)
        // whole-directory operand — the planner must repair it.
        (
            "legacy-ac",
            format!(
                "(ac (ou=z0, dc=bench ? sub ? kind=red) \
                     (dc=bench ? sub ? objectClass=thing) (- {whole} {whole}))"
            ),
        ),
    ]
}

/// Evaluate `q` cold and return (entries, pages read, wall seconds).
fn run_cold(pager: &Pager, idx: &IndexedDirectory, q: &Query) -> (Vec<Entry>, u64, f64) {
    pager.flush().expect("flush before planner cell");
    pager.pool().clear_cache().expect("cold planner cell");
    pager.reset_io();
    let started = Instant::now();
    let out = Evaluator::new(idx, pager)
        .evaluate(q)
        .expect("planner cell evaluates")
        .to_vec()
        .expect("materialize planner cell");
    let wall = started.elapsed().as_secs_f64();
    (out, pager.io().reads, wall)
}

/// Run the planner sweep over the E16 suite plus the showcase cells and
/// sync the planner's counters into `registry`.
///
/// Panics if any cell violates the optimizer's contract — an optimizer
/// that changes answers or reads more pages is a bug, not a data point.
pub fn planner_sweep(cfg: &SweepConfig, registry: &MetricsRegistry) -> Vec<PlannerRow> {
    let dir = bench_directory(cfg);
    let pager = planner_pager(cfg);
    let idx = IndexedDirectory::build(&pager, &dir).expect("build planner index");
    let planner = Planner::new();

    let mut cells: Vec<(String, Query)> = suite_queries(cfg)
        .into_iter()
        .map(|(level, text)| (level.to_string(), parse_query(&text).expect("parse suite")))
        .collect();
    for (label, text) in showcase_queries() {
        cells.push((label.to_string(), parse_query(&text).expect("parse showcase")));
    }

    // Training pass: one naive evaluation per cell through an observing
    // source, so the catalog holds this workload's real list sizes
    // before any plan is chosen.
    let observing = ObservingSource::new(&idx, planner.catalog());
    let trainer = Evaluator::new(&observing, &pager);
    for (_, q) in &cells {
        trainer.evaluate(q).expect("planner training pass");
    }

    let mut rows = Vec::with_capacity(cells.len());
    for (label, q) in &cells {
        let planned = planner.plan(q);
        let (naive_out, naive_reads, naive_wall) = run_cold(&pager, &idx, q);
        let (chosen_out, chosen_reads, chosen_wall) = run_cold(&pager, &idx, &planned.query);
        assert_eq!(
            naive_out, chosen_out,
            "{label}: chosen plan changed the answer"
        );
        assert!(
            chosen_reads <= naive_reads,
            "{label}: chosen plan read more pages ({chosen_reads} > {naive_reads})"
        );
        rows.push(PlannerRow {
            label: label.clone(),
            steps: planned.steps.len() as u64,
            cache_hit: planned.cache_hit,
            predicted_naive: planned.predicted_naive,
            predicted_chosen: planned.predicted_chosen,
            naive_reads,
            chosen_reads,
            naive_wall_secs: naive_wall,
            chosen_wall_secs: chosen_wall,
        });
    }

    let by_label = |l: &str| {
        rows.iter()
            .find(|r| r.label == l)
            .unwrap_or_else(|| panic!("planner sweep missing cell {l}"))
    };
    assert!(
        by_label("and-chain").steps > 0,
        "planner left the showcase chain untouched"
    );
    assert!(
        by_label("repeat-shape").cache_hit,
        "repeated shape missed the plan cache"
    );
    assert!(
        by_label("legacy-ac").chosen_reads < by_label("legacy-ac").naive_reads,
        "repairing the (- X X) operand saved no pages"
    );

    bridge::sync_planner(registry, planner.snapshot());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::smoke_config;
    use netdir_obs::names;
    use netdir_server::metrics::register_all;

    #[test]
    fn planner_sweep_enforces_its_contract_and_feeds_metrics() {
        let registry = MetricsRegistry::default();
        register_all(&registry);
        let rows = planner_sweep(&smoke_config(), &registry);
        // E16's four levels plus the three showcase cells.
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.chosen_reads <= r.naive_reads, "{}", r.label);
            assert!(r.predicted_chosen <= r.predicted_naive + 1e-9, "{}", r.label);
        }
        assert!(rows.iter().any(|r| r.steps > 0));
        assert!(rows.iter().any(|r| r.cache_hit));
        assert_eq!(
            registry.counter(names::PLANNER_PLANNED).get(),
            rows.len() as u64
        );
        assert!(registry.counter(names::PLANNER_CACHE_HITS).get() >= 1);
        assert!(registry.counter(names::PLANNER_CATALOG_OBSERVATIONS).get() > 0);
        assert!(registry.gauge(names::PLANNER_CATALOG_SHAPES).get() > 0);
    }
}
