//! The write-path benchmark: apply throughput and WAL replay.
//!
//! Two phases over a [`JournalStore`] seeded with a synthetic forest:
//!
//! * **apply** — a burst of mutation batches (adds, then modifies, then
//!   deletes) against the live store, measuring wall-clock and the WAL
//!   durability work (fsyncs, page writes) the burst cost.
//! * **replay** — reopen the store from the raw WAL image and measure
//!   crash recovery: the same batches re-applied from the log, plus a
//!   verification that the recovered entry count matches the live one.
//!
//! The rows land in `BENCH_*.json` (schema v3's `mutation` section) and
//! the store's counters are synced into the shared registry so the
//! tracked `netdir_wal_*` / `netdir_mutation*` series carry real work.

use netdir_journal::{JournalStore, Mutation, MutationBatch};
use netdir_model::{Directory, Dn, Entry, Value};
use netdir_obs::MetricsRegistry;
use netdir_pager::Pager;

/// One measured phase of the mutation suite.
#[derive(Debug, Clone)]
pub struct MutationRow {
    /// `"apply"` or `"replay"`.
    pub phase: String,
    /// Batches the phase pushed through the journal.
    pub batches: u64,
    /// Individual mutations in those batches.
    pub mutations: u64,
    /// Wall-clock seconds for the phase.
    pub wall_secs: f64,
    /// WAL durability barriers the phase performed.
    pub wal_fsyncs: u64,
    /// Pages written through the WAL device.
    pub wal_page_writes: u64,
}

fn dn(s: &str) -> Dn {
    Dn::parse(s).expect("bench DN")
}

fn seed_directory() -> Directory {
    let mut d = Directory::new();
    for s in ["dc=com", "dc=att, dc=com", "ou=people, dc=att, dc=com"] {
        d.insert(Entry::builder(dn(s)).class("container").build().expect("seed"))
            .expect("seed insert");
    }
    d
}

fn person(i: usize) -> Entry {
    Entry::builder(dn(&format!("uid=w{i:04}, ou=people, dc=att, dc=com")))
        .class("person")
        .attr("surName", format!("writer{i:04}"))
        .attr("priority", (i % 17) as i64)
        .build()
        .expect("bench entry")
}

/// Run the write-path suite: `batches` batches of `batch_size` adds,
/// then one modify batch and one delete batch over a slice of them,
/// then a full replay from the WAL image. Counters sync into
/// `registry`; the two phase rows return for the report.
pub fn mutation_suite(
    batches: usize,
    batch_size: usize,
    registry: &MetricsRegistry,
) -> Vec<MutationRow> {
    let pager = Pager::new(4096, 64);
    let store = JournalStore::create(&pager, seed_directory()).expect("create journal");

    // Apply phase: adds in batches, then a modify wave, then deletes.
    let started = std::time::Instant::now();
    for b in 0..batches {
        let batch = MutationBatch::from_mutations(
            (b * batch_size..(b + 1) * batch_size)
                .map(|i| Mutation::Add(person(i)))
                .collect(),
        );
        store.apply(&batch).expect("apply add batch");
    }
    let modify = MutationBatch::from_mutations(
        (0..batch_size)
            .map(|i| Mutation::Modify {
                dn: person(i).dn().clone(),
                add: vec![("note".into(), Value::Str("benched".into()))],
                remove: vec![],
                remove_attrs: vec![],
            })
            .collect(),
    );
    store.apply(&modify).expect("apply modify batch");
    let delete = MutationBatch::from_mutations(
        (0..batch_size / 2)
            .map(|i| Mutation::Delete(person(i).dn().clone()))
            .collect(),
    );
    store.apply(&delete).expect("apply delete batch");
    let apply_secs = started.elapsed().as_secs_f64();

    let stats = store.stats();
    let apply_row = MutationRow {
        phase: "apply".into(),
        batches: stats.batches_applied,
        mutations: stats.mutations_applied,
        wall_secs: apply_secs,
        wal_fsyncs: stats.wal_fsyncs,
        wal_page_writes: stats.wal_page_writes,
    };

    // Replay phase: crash recovery from the raw WAL image over the same
    // seed, on a fresh pager.
    let bytes = store.wal_bytes().expect("wal image");
    let started = std::time::Instant::now();
    let pager2 = Pager::new(4096, 64);
    let (recovered, report) = JournalStore::open_from_wal_bytes(
        &pager2,
        seed_directory(),
        &bytes,
        pager.page_size(),
    )
    .expect("replay journal");
    let replay_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        recovered.len(),
        store.len(),
        "replay lost or invented entries"
    );
    let rstats = recovered.stats();
    let replay_row = MutationRow {
        phase: "replay".into(),
        batches: report.batches as u64,
        mutations: report.mutations as u64,
        wall_secs: replay_secs,
        wal_fsyncs: rstats.wal_fsyncs,
        wal_page_writes: rstats.wal_page_writes,
    };

    // The recovered store contributes its replay histogram sample;
    // the live store syncs last so its cumulative counters win (replay
    // deliberately resets "applied" counts to avoid double-counting).
    recovered.sync_metrics(registry);
    store.sync_metrics(registry);

    vec![apply_row, replay_row]
}

/// Smoke-sized suite: enough batches to split pages and span WAL pages,
/// small enough for CI.
pub fn smoke_suite(registry: &MetricsRegistry) -> Vec<MutationRow> {
    mutation_suite(8, 25, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_obs::names;

    #[test]
    fn suite_produces_consistent_rows_and_metrics() {
        let reg = MetricsRegistry::new();
        let rows = smoke_suite(&reg);
        assert_eq!(rows.len(), 2);
        let apply = &rows[0];
        let replay = &rows[1];
        assert_eq!(apply.phase, "apply");
        assert_eq!(replay.phase, "replay");
        // 8 add batches + 1 modify + 1 delete, all durably logged...
        assert_eq!(apply.batches, 10);
        assert_eq!(apply.mutations, 8 * 25 + 25 + 12);
        assert!(apply.wal_fsyncs >= apply.batches);
        // ...and replay recovers every one of them.
        assert_eq!(replay.batches, apply.batches);
        assert_eq!(replay.mutations, apply.mutations);
        let flat: std::collections::BTreeMap<String, u64> =
            reg.flatten().into_iter().collect();
        assert_eq!(flat[names::MUTATION_BATCHES], 10);
        assert!(flat[names::WAL_FSYNCS] >= 10);
        assert!(flat[&format!("{}_count", names::WAL_REPLAY_US)] >= 1);
    }
}
