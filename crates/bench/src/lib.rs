//! # netdir-bench — the experiment harness
//!
//! One binary per experiment of DESIGN.md §4 (E4–E13); each prints the
//! table recorded in `EXPERIMENTS.md`. Shared machinery lives here:
//!
//! * [`table`] — fixed-width table printing.
//! * [`setup`] — sorted paged operand lists from the workload generators.
//! * [`baseline`] — *paged* naive operators: the quadratic strawman of
//!   Section 5.3 measured in the same currency (page I/Os) as the real
//!   algorithms, by re-scanning `L2` once per `L1` entry.
//! * [`measure`] — cold-cache I/O measurement around a closure.
//! * [`report`] — machine-readable `BENCH_*.json` emission/validation.
//! * [`par`] — the parallel-evaluation degree sweep (speedup vs I/O).
//! * [`mutation`] — the write-path suite (apply throughput, WAL replay).
//! * [`load`] — the closed-loop overload sweep (admission vs unbounded).
//! * [`planner`] — the cost-based planner sweep (chosen vs naive I/O).
//! * [`smoke`] — the instrumented observability suite behind
//!   `run_experiments --smoke`.

use netdir_model::Entry;
use netdir_pager::{IoSnapshot, ListWriter, PagedList, Pager, PagerResult};

pub mod load;
pub mod mutation;
pub mod par;
pub mod planner;
pub mod report;
pub mod smoke;
pub mod storage;

/// Fixed-width table printing for experiment output.
pub mod table {
    /// Print a header row followed by a rule.
    pub fn header(cols: &[&str]) {
        let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
        println!("{}", line.join(" "));
        println!("{}", "-".repeat(15 * cols.len()));
    }

    /// Print one data row.
    pub fn row(cells: &[String]) {
        let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
        println!("{}", line.join(" "));
    }

    /// Shorthand for building rows.
    #[macro_export]
    macro_rules! cells {
        ($($x:expr),* $(,)?) => {
            &[$(format!("{}", $x)),*]
        };
    }
}

/// Experiment setup helpers.
pub mod setup {
    use super::*;
    use netdir_workloads::{synth_forest, SynthParams};

    /// Build the standard two operand lists (`kind=red` → L1,
    /// `kind=blue` → L2) of a synthetic forest with `n` entries.
    pub fn red_blue_lists(
        pager: &Pager,
        n: usize,
        seed: u64,
    ) -> (PagedList<Entry>, PagedList<Entry>) {
        let dir = synth_forest(
            SynthParams {
                entries: n,
                max_depth: 10,
                red_fraction: 0.5,
                blue_fraction: 0.5,
            },
            seed,
        );
        let red = dir
            .iter_sorted()
            .filter(|e| e.values(&"kind".into()).any(|v| v.as_str() == Some("red")))
            .cloned();
        let blue = dir
            .iter_sorted()
            .filter(|e| e.values(&"kind".into()).any(|v| v.as_str() == Some("blue")))
            .cloned();
        (
            PagedList::from_iter(pager, red).expect("write L1"),
            PagedList::from_iter(pager, blue).expect("write L2"),
        )
    }

    /// Standard experiment pager: 4 KiB pages, a deliberately small
    /// frame budget so that "constant memory" is enforced, not assumed.
    pub fn pager() -> Pager {
        Pager::new(4096, 24)
    }
}

/// Paged quadratic baselines (the strawman of Section 5.3).
pub mod baseline {
    use super::*;
    use netdir_query::agg::CompiledAggFilter;
    use netdir_query::hs_stack::HsOp;
    use netdir_query::naive;

    /// Hierarchical selection by re-scanning `L2` for every `L1` entry —
    /// `O(|L1| · |L2| / B)` page I/Os.
    pub fn paged_naive_hs(
        pager: &Pager,
        op: HsOp,
        l1: &PagedList<Entry>,
        l2: &PagedList<Entry>,
    ) -> PagerResult<PagedList<Entry>> {
        let filter = CompiledAggFilter::exists_witness();
        let mut out = ListWriter::new(pager);
        for r1 in l1.iter() {
            let r1 = r1?;
            let mut hit = false;
            for r2 in l2.iter() {
                let r2 = r2?;
                let selected = naive::naive_hs_select(
                    op,
                    std::slice::from_ref(&r1),
                    std::slice::from_ref(&r2),
                    &[],
                    &filter,
                );
                if !selected.is_empty() {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.push(&r1)?;
            }
        }
        out.finish()
    }

    /// Embedded-reference selection by re-scanning `L2` per `L1` entry.
    pub fn paged_naive_er(
        pager: &Pager,
        op: netdir_query::RefOp,
        l1: &PagedList<Entry>,
        l2: &PagedList<Entry>,
        attr: &netdir_model::AttrName,
    ) -> PagerResult<PagedList<Entry>> {
        let filter = CompiledAggFilter::exists_witness();
        let mut out = ListWriter::new(pager);
        for r1 in l1.iter() {
            let r1 = r1?;
            let mut hit = false;
            for r2 in l2.iter() {
                let r2 = r2?;
                let selected = naive::naive_er_select(
                    op,
                    std::slice::from_ref(&r1),
                    std::slice::from_ref(&r2),
                    attr,
                    &filter,
                );
                if !selected.is_empty() {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.push(&r1)?;
            }
        }
        out.finish()
    }
}

/// Run `f` against a cold cache and return its I/O cost (including the
/// flush of whatever it wrote).
pub fn measure<T>(pager: &Pager, f: impl FnOnce() -> PagerResult<T>) -> (T, IoSnapshot) {
    pager.flush().expect("flush before measurement");
    pager.pool().clear_cache().expect("cold cache");
    pager.reset_io();
    let out = f().expect("measured operation");
    pager.flush().expect("flush after measurement");
    (out, pager.io())
}

/// Least-squares slope of y against x — used to report how measured I/O
/// scales with input size (≈ constant ratio for linear algorithms).
pub fn ratio_trend(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_query::agg::CompiledAggFilter;
    use netdir_query::hs_stack::{hs_select, HsOp};

    #[test]
    fn paged_naive_agrees_with_stack_algorithm() {
        let pager = setup::pager();
        let (l1, l2) = setup::red_blue_lists(&pager, 120, 3);
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            let fast = hs_select(
                &pager,
                op,
                &l1,
                &l2,
                None,
                &CompiledAggFilter::exists_witness(),
            )
            .unwrap()
            .to_vec()
            .unwrap();
            let slow = baseline::paged_naive_hs(&pager, op, &l1, &l2)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(fast, slow, "{op:?}");
        }
    }

    #[test]
    fn measure_reports_cold_costs() {
        let pager = setup::pager();
        let (l1, _) = setup::red_blue_lists(&pager, 200, 4);
        let (n, io) = measure(&pager, || {
            let mut count = 0u64;
            for e in l1.iter() {
                e?;
                count += 1;
            }
            Ok(count)
        });
        assert_eq!(n, l1.len());
        assert_eq!(io.reads, l1.num_pages());
    }

    #[test]
    fn trend_of_linear_data_is_flat_ratio() {
        let slope = ratio_trend(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
        assert!((slope - 2.0).abs() < 1e-9);
    }
}
