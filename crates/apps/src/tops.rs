//! TOPS call routing (Example 2.2).
//!
//! "The response to such a query is the set of call appearances where the
//! subscriber can be reached, corresponding to the highest priority
//! policy (QHP) that matches the given information."
//!
//! The decision compiles to a query over the subscriber's personal
//! subtree:
//!
//! ```text
//! Q   = QHPs under the subscriber matching time/day            (L0)
//! Q*  = (g Q min(priority) = min(min(priority)))               (L2)
//! CAs = (p call-appearances Q*)                                (L1)
//! ```
//!
//! The matching uses the heterogeneity of Section 3.5: a QHP may pin a
//! time window (`startTime`/`endTime`), a day-of-week set, both, or
//! neither; absent constraints are unconstrained.

use netdir_index::IndexedDirectory;
use netdir_model::{Dn, Entry};
use netdir_pager::Pager;
use netdir_query::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
use netdir_query::{Evaluator, HierOp, Query, QueryResult};
use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::tops::{qhp_matches, subscriber_dn, CallRequest};

/// The router: an indexed TOPS directory plus scratch space.
pub struct TopsRouter<'a> {
    idx: &'a IndexedDirectory,
    pager: Pager,
}

/// The outcome of a routing decision.
#[derive(Debug, Clone)]
pub struct RoutingDecision {
    /// The winning (highest-priority matching) QHPs.
    pub qhps: Vec<Entry>,
    /// Their call appearances, sorted by ascending `priority` value —
    /// the order in which the caller should try them.
    pub appearances: Vec<Entry>,
    /// The query that produced `appearances`.
    pub query: Query,
}

impl<'a> TopsRouter<'a> {
    /// Router over an indexed directory holding TOPS data.
    pub fn new(idx: &'a IndexedDirectory, pager: &Pager) -> Self {
        TopsRouter {
            idx,
            pager: pager.clone(),
        }
    }

    fn under(&self, base: &Dn, scope: Scope, filter: AtomicFilter) -> Query {
        Query::atomic(base.clone(), scope, filter)
    }

    /// The matching-QHPs sub-query for `req`.
    pub fn matching_qhps_query(&self, req: &CallRequest) -> Query {
        let sub = subscriber_dn(&req.callee);
        let qhps = self.under(&sub, Scope::Sub, AtomicFilter::eq("objectClass", "QHP"));
        // Time: either the window covers `time` or the QHP has no window.
        let in_window = Query::and(
            self.under(
                &sub,
                Scope::Sub,
                AtomicFilter::int_cmp("startTime", IntOp::Le, req.time),
            ),
            self.under(
                &sub,
                Scope::Sub,
                AtomicFilter::int_cmp("endTime", IntOp::Ge, req.time),
            ),
        );
        let no_window = Query::diff(
            qhps.clone(),
            self.under(&sub, Scope::Sub, AtomicFilter::present("startTime")),
        );
        let time_ok = Query::or(in_window, no_window);
        // Day: either listed or unconstrained.
        let day_ok = Query::or(
            self.under(
                &sub,
                Scope::Sub,
                AtomicFilter::int_cmp("daysOfWeek", IntOp::Eq, req.day_of_week),
            ),
            Query::diff(
                qhps.clone(),
                self.under(&sub, Scope::Sub, AtomicFilter::present("daysOfWeek")),
            ),
        );
        Query::and(Query::and(qhps, time_ok), day_ok)
    }

    /// The full appearance query: winning QHPs' call appearances.
    pub fn decision_query(&self, req: &CallRequest) -> Query {
        let sub = subscriber_dn(&req.callee);
        let prio = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("priority".into()));
        let best = Query::agg_select(
            self.matching_qhps_query(req),
            AggSelFilter {
                lhs: AggAttribute::Entry(prio.clone()),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(Aggregate::Min, Box::new(prio)),
            },
        );
        Query::hier(
            HierOp::Parents,
            self.under(
                &sub,
                Scope::Sub,
                AtomicFilter::eq("objectClass", "callAppearance"),
            ),
            best,
        )
    }

    /// Route a call: the appearances of the highest-priority matching QHP.
    pub fn route(&self, req: &CallRequest) -> QueryResult<RoutingDecision> {
        // `best` appears both standalone and inside the appearance query.
        let ev = Evaluator::new(self.idx, &self.pager).with_memo();
        let best_q = {
            let prio = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("priority".into()));
            Query::agg_select(
                self.matching_qhps_query(req),
                AggSelFilter {
                    lhs: AggAttribute::Entry(prio.clone()),
                    op: IntOp::Eq,
                    rhs: AggAttribute::EntrySet(Aggregate::Min, Box::new(prio)),
                },
            )
        };
        let qhps = ev.evaluate(&best_q)?.to_vec()?;
        let query = self.decision_query(req);
        let mut appearances = ev.evaluate(&query)?.to_vec()?;
        appearances.sort_by_key(|ca| ca.first_int(&"priority".into()).unwrap_or(i64::MAX));
        Ok(RoutingDecision {
            qhps,
            appearances,
            query,
        })
    }
}

/// Brute-force oracle for [`TopsRouter::route`] (E14): appearances of the
/// minimum-priority matching QHPs, sorted by appearance priority.
pub fn oracle_route(dir: &netdir_model::Directory, req: &CallRequest) -> Vec<Entry> {
    let sub = subscriber_dn(&req.callee);
    let qhps: Vec<&Entry> = dir
        .subtree(&sub)
        .filter(|e| e.has_class(&"QHP".into()))
        .filter(|e| qhp_matches(e, req))
        .collect();
    let Some(best) = qhps
        .iter()
        .filter_map(|q| q.first_int(&"priority".into()))
        .min()
    else {
        return Vec::new();
    };
    let mut cas: Vec<Entry> = qhps
        .iter()
        .filter(|q| q.first_int(&"priority".into()) == Some(best))
        .flat_map(|q| {
            dir.children_of(q.dn())
                .filter(|e| e.has_class(&"callAppearance".into()))
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();
    cas.sort_by_key(|ca| ca.first_int(&"priority".into()).unwrap_or(i64::MAX));
    cas
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_workloads::tops::{ca_dn, qhp_dn, tops_fig11, tops_generate, TopsParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(dir: &netdir_model::Directory) -> (IndexedDirectory, Pager) {
        let pager = Pager::new(2048, 32);
        let idx = IndexedDirectory::build(&pager, dir).unwrap();
        (idx, pager)
    }

    #[test]
    fn figure_11_routing() {
        let dir = tops_fig11();
        let (idx, pager) = setup(&dir);
        let router = TopsRouter::new(&idx, &pager);

        // Saturday noon: the weekend QHP (priority 1) wins over working
        // hours (priority 2, also matching at noon); voicemail answers.
        let saturday = CallRequest {
            callee: "jag".into(),
            time: 1200,
            day_of_week: 6,
        };
        let d = router.route(&saturday).unwrap();
        assert_eq!(d.qhps.len(), 1);
        assert_eq!(d.qhps[0].dn(), &qhp_dn("jag", "weekend"));
        assert_eq!(d.appearances.len(), 1);
        assert_eq!(
            d.appearances[0].dn(),
            &ca_dn("jag", "weekend", "9735550000")
        );

        // Tuesday 10:00: working hours wins; office phone first, then
        // secretary (appearance priority order).
        let tuesday = CallRequest {
            callee: "jag".into(),
            time: 1000,
            day_of_week: 2,
        };
        let d = router.route(&tuesday).unwrap();
        assert_eq!(d.qhps[0].dn(), &qhp_dn("jag", "workinghours"));
        let numbers: Vec<_> = d
            .appearances
            .iter()
            .map(|ca| ca.first_str(&"CANumber".into()).unwrap().to_string())
            .collect();
        assert_eq!(numbers, vec!["9733608750", "9733608751"]);

        // Tuesday 23:00: nothing matches.
        let night = CallRequest {
            callee: "jag".into(),
            time: 2300,
            day_of_week: 2,
        };
        let d = router.route(&night).unwrap();
        assert!(d.qhps.is_empty());
        assert!(d.appearances.is_empty());
    }

    #[test]
    fn router_agrees_with_oracle_on_generated_population() {
        let params = TopsParams {
            subscribers: 20,
            qhps_per_subscriber: 4,
            cas_per_qhp: 3,
        };
        let dir = tops_generate(params, 5);
        let (idx, pager) = setup(&dir);
        let router = TopsRouter::new(&idx, &pager);
        let mut rng = StdRng::seed_from_u64(17);
        let mut nonempty = 0;
        for _ in 0..50 {
            let req = CallRequest::random(&mut rng, params.subscribers);
            let got = router.route(&req).unwrap();
            let expect = oracle_route(&dir, &req);
            let g: Vec<String> = got
                .appearances
                .iter()
                .map(|e| e.dn().to_string())
                .collect();
            let e: Vec<String> = expect.iter().map(|e| e.dn().to_string()).collect();
            assert_eq!(g, e, "request {req:?}");
            if !g.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty > 0, "workload never matched — test is vacuous");
    }

    #[test]
    fn unknown_callee_routes_nowhere() {
        let dir = tops_fig11();
        let (idx, pager) = setup(&dir);
        let router = TopsRouter::new(&idx, &pager);
        let req = CallRequest {
            callee: "ghost".into(),
            time: 1200,
            day_of_week: 3,
        };
        let d = router.route(&req).unwrap();
        assert!(d.appearances.is_empty());
    }

    #[test]
    fn decision_query_is_l2() {
        let dir = tops_fig11();
        let (idx, pager) = setup(&dir);
        let router = TopsRouter::new(&idx, &pager);
        let req = CallRequest {
            callee: "jag".into(),
            time: 1200,
            day_of_week: 6,
        };
        let q = router.decision_query(&req);
        assert_eq!(netdir_query::classify(&q), netdir_query::Language::L2);
        // Semantics-preserving round-trip (see the QoS twin test).
        let reparsed = netdir_query::parse_query(&q.to_string()).unwrap();
        let ev = Evaluator::new(&idx, &pager);
        let a = ev.evaluate(&q).unwrap().to_vec().unwrap();
        let b = ev.evaluate(&reparsed).unwrap().to_vec().unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
