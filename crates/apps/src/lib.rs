//! # netdir-apps — the DEN applications of Section 2
//!
//! The paper's motivation is that DEN applications need queries LDAP
//! cannot express. This crate *is* those applications, built on the
//! query languages:
//!
//! * [`qos`] — the policy decision engine of Example 2.1: given a packet
//!   and the current time, find the actions of the matching policies such
//!   that no higher-priority policy applies and no same-priority
//!   exception applies. Composed from L2/L3 operators (`vd`, `dv`, `g`
//!   with `min = min(min(...))`).
//! * [`tops`] — the call-routing decision of Example 2.2: the call
//!   appearances of the highest-priority query handling profile matching
//!   the caller's request. Composed from hierarchical selection and
//!   aggregate selection over the subscriber's personal subtree.
//!
//! Both modules ship a brute-force oracle used by the correctness
//! experiments (E13/E14) to validate the query-composed implementations
//! on randomized workloads.

pub mod qos;
pub mod tops;

pub use qos::{PolicyDecision, PolicyEngine};
pub use tops::{RoutingDecision, TopsRouter};
