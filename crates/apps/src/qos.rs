//! The QoS policy decision engine (Example 2.1).
//!
//! An enforcement entity (router, firewall, proxy) presents a packet's
//! attributes and the current time; the directory must answer with the
//! actions of the policies that match, such that
//!
//! 1. no **higher-priority** matching policy exists, and
//! 2. the policy has no **exception of the same priority** that also
//!    matches (Section 2.1's two conflict-resolution mechanisms).
//!
//! The whole decision compiles to one L3 query composition:
//!
//! ```text
//! P  = matching traffic profiles        (L0: unions of equality filters)
//! V  = matching validity periods        (L0: int comparisons + diff)
//! M  = (& (vd policies P SLATPRef)
//!         (| (vd policies V SLAPVPRef) policies-without-periods))
//! M* = (g M min(SLARulePriority) = min(min(SLARulePriority)))
//! W  = (- M* (vd M* M* SLAExceptionRef))    ; same-priority exceptions
//! A  = (dv actions W SLADSActRef)
//! ```
//!
//! The same-priority subtlety dissolves inside the algebra: after the
//! `g` selection every entry of `M*` carries the minimum priority, so an
//! exception "of the same priority that applies" is precisely an
//! exception *inside `M*`* — condition 2 becomes a self-`vd`.

use netdir_index::IndexedDirectory;
use netdir_model::{Dn, Entry};
use netdir_pager::Pager;
use netdir_query::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
use netdir_query::{Evaluator, HierOp, Query, QueryResult, RefOp};
use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_workloads::qos::{period_matches, profile_matches, Packet};

/// The engine: an indexed policy directory plus scratch space.
pub struct PolicyEngine<'a> {
    idx: &'a IndexedDirectory,
    pager: Pager,
    base: Dn,
}

/// The outcome of a policy decision.
#[derive(Debug, Clone)]
pub struct PolicyDecision {
    /// The winning policies (matching, top-priority, unexcepted).
    pub policies: Vec<Entry>,
    /// The actions they reference — what the enforcement entity applies.
    pub actions: Vec<Entry>,
    /// The query that produced `actions` (for display/EXPLAIN).
    pub query: Query,
}

impl<'a> PolicyEngine<'a> {
    /// Engine over an indexed directory whose policies live under `base`
    /// (e.g. [`netdir_workloads::qos::QOS_BASE`]).
    pub fn new(idx: &'a IndexedDirectory, pager: &Pager, base: Dn) -> Self {
        PolicyEngine {
            idx,
            pager: pager.clone(),
            base,
        }
    }

    fn atom(&self, filter: AtomicFilter) -> Query {
        Query::atomic(self.base.clone(), Scope::Sub, filter)
    }

    fn class(&self, c: &str) -> Query {
        self.atom(AtomicFilter::eq("objectClass", c))
    }

    /// The L0 sub-query selecting traffic profiles matching `packet`.
    ///
    /// Address patterns in the data are dotted quads with `*` suffix
    /// segments, so the profiles matching an address are those whose
    /// pattern equals one of the 5 generalizations of the packet address.
    /// Port constraints: either the profile pins the packet's port or it
    /// has no port attribute.
    pub fn matching_profiles_query(&self, packet: &Packet) -> Query {
        let octets: Vec<&str> = packet.source_address.split('.').collect();
        let mut addr_q: Option<Query> = None;
        for stars in 0..=octets.len() {
            let pattern: Vec<String> = octets
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    if i >= octets.len() - stars {
                        "*".to_string()
                    } else {
                        (*o).to_string()
                    }
                })
                .collect();
            let q = self.atom(AtomicFilter::Eq(
                "SourceAddress".into(),
                pattern.join("."),
            ));
            addr_q = Some(match addr_q {
                None => q,
                Some(acc) => Query::or(acc, q),
            });
        }
        let addr_q = Query::and(self.class("trafficProfile"), addr_q.expect("≥1 pattern"));
        let port_ok = Query::or(
            self.atom(AtomicFilter::int_cmp(
                "SourcePort",
                IntOp::Eq,
                packet.source_port,
            )),
            Query::diff(
                self.class("trafficProfile"),
                self.atom(AtomicFilter::present("SourcePort")),
            ),
        );
        Query::and(addr_q, port_ok)
    }

    /// The L0 sub-query selecting validity periods covering `packet`'s
    /// time and day.
    pub fn matching_periods_query(&self, packet: &Packet) -> Query {
        let in_window = Query::and(
            self.atom(AtomicFilter::int_cmp(
                "PVStartTime",
                IntOp::Le,
                packet.time,
            )),
            self.atom(AtomicFilter::int_cmp("PVEndTime", IntOp::Ge, packet.time)),
        );
        let day_ok = Query::or(
            self.atom(AtomicFilter::int_cmp(
                "PVDayOfWeek",
                IntOp::Eq,
                packet.day_of_week,
            )),
            Query::diff(
                self.class("policyValidityPeriod"),
                self.atom(AtomicFilter::present("PVDayOfWeek")),
            ),
        );
        Query::and(
            Query::and(self.class("policyValidityPeriod"), in_window),
            day_ok,
        )
    }

    /// The full decision query for `packet` (see module docs).
    pub fn decision_query(&self, packet: &Packet) -> Query {
        let policies = self.class("SLAPolicyRules");
        let profile_hit = Query::embed_ref(
            RefOp::ValueDn,
            policies.clone(),
            self.matching_profiles_query(packet),
            "SLATPRef",
        );
        let period_hit = Query::or(
            Query::embed_ref(
                RefOp::ValueDn,
                policies.clone(),
                self.matching_periods_query(packet),
                "SLAPVPRef",
            ),
            Query::diff(
                policies.clone(),
                self.atom(AtomicFilter::present("SLAPVPRef")),
            ),
        );
        let matching = Query::and(profile_hit, period_hit);
        let prio = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("SLARulePriority".into()));
        let top = Query::agg_select(
            matching,
            AggSelFilter {
                lhs: AggAttribute::Entry(prio.clone()),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(Aggregate::Min, Box::new(prio)),
            },
        );
        // Same-priority exceptions are exactly exceptions inside `top`.
        Query::diff(
            top.clone(),
            Query::embed_ref(RefOp::ValueDn, top.clone(), top, "SLAExceptionRef"),
        )
    }

    /// Decide `packet`: winning policies and their actions.
    pub fn decide(&self, packet: &Packet) -> QueryResult<PolicyDecision> {
        let winners_q = self.decision_query(packet);
        let actions_q = Query::embed_ref(
            RefOp::DnValue,
            self.class("SLADSAction"),
            winners_q.clone(),
            "SLADSActRef",
        );
        // The composition repeats sub-queries (`top` three times, winners
        // inside the action query) — evaluate with memoization.
        let ev = Evaluator::new(self.idx, &self.pager).with_memo();
        let policies = ev.evaluate(&winners_q)?.to_vec()?;
        let actions = ev.evaluate(&actions_q)?.to_vec()?;
        Ok(PolicyDecision {
            policies,
            actions,
            query: actions_q,
        })
    }

    /// Which subscribers… no: which *policies* govern the packet via the
    /// L1 route — the enforcement entities ask per Example 5.2-style
    /// queries too; exposed for the examples.
    pub fn policies_query(&self) -> Query {
        Query::hier(
            HierOp::Ancestors,
            self.class("SLAPolicyRules"),
            self.atom(AtomicFilter::eq("ou", "networkPolicies")),
        )
    }
}

/// Brute-force oracle for [`PolicyEngine::decide`], straight from the
/// prose of Example 2.1 — used by E13 and the integration tests.
pub fn oracle_decide(dir: &netdir_model::Directory, packet: &Packet) -> Vec<Entry> {
    let policies: Vec<&Entry> = dir
        .iter_sorted()
        .filter(|e| e.has_class(&"SLAPolicyRules".into()))
        .collect();
    let matches = |p: &Entry| -> bool {
        let profile_hit = p.values(&"SLATPRef".into()).any(|v| {
            v.as_dn()
                .and_then(|d| dir.lookup(d))
                .is_some_and(|tp| profile_matches(tp, packet))
        });
        if !profile_hit {
            return false;
        }
        let has_periods = p.has_attr(&"SLAPVPRef".into());
        let period_hit = !has_periods
            || p.values(&"SLAPVPRef".into()).any(|v| {
                v.as_dn()
                    .and_then(|d| dir.lookup(d))
                    .is_some_and(|pv| period_matches(pv, packet))
            });
        period_hit
    };
    let matching: Vec<&Entry> = policies.into_iter().filter(|p| matches(p)).collect();
    let Some(best) = matching
        .iter()
        .filter_map(|p| p.first_int(&"SLARulePriority".into()))
        .min()
    else {
        return Vec::new();
    };
    let top: Vec<&Entry> = matching
        .iter()
        .filter(|p| p.first_int(&"SLARulePriority".into()) == Some(best))
        .copied()
        .collect();
    top.iter()
        .filter(|p| {
            // No same-priority exception that also applies.
            !p.values(&"SLAExceptionRef".into()).any(|v| {
                v.as_dn()
                    .is_some_and(|ex| top.iter().any(|t| t.dn() == ex))
            })
        })
        .map(|p| (*p).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_workloads::qos::{action_dn, policy_dn, qos_fig12, qos_generate, QosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_over(
        dir: &netdir_model::Directory,
    ) -> (IndexedDirectory, Pager) {
        let pager = Pager::new(2048, 32);
        let idx = IndexedDirectory::build(&pager, dir).unwrap();
        (idx, pager)
    }

    fn base() -> Dn {
        Dn::parse(netdir_workloads::qos::QOS_BASE).unwrap()
    }

    #[test]
    fn figure_12_weekend_data_packet_is_denied_unless_mail() {
        let dir = qos_fig12();
        let (idx, pager) = engine_over(&dir);
        let engine = PolicyEngine::new(&idx, &pager, base());

        // A Saturday data packet from 204.178.16.5 → dso applies (deny).
        let pkt = Packet {
            source_address: "204.178.16.5".into(),
            source_port: 80,
            time: 19980606120000,
            day_of_week: 6,
        };
        let d = engine.decide(&pkt).unwrap();
        assert_eq!(d.policies.len(), 1);
        assert_eq!(d.policies[0].dn(), &policy_dn("dso"));
        assert_eq!(d.actions.len(), 1);
        assert_eq!(d.actions[0].dn(), &action_dn("denyAll"));

        // The same packet on port 25 also matches the mail exception
        // (same priority), so dso is suppressed and mail's action wins.
        let mail_pkt = Packet {
            source_port: 25,
            ..pkt.clone()
        };
        let d = engine.decide(&mail_pkt).unwrap();
        let names: Vec<_> = d.policies.iter().map(|p| p.dn().to_string()).collect();
        assert_eq!(names, vec![policy_dn("mail").to_string()]);
        assert_eq!(d.actions[0].dn(), &action_dn("allowMail"));

        // A weekday packet matches no validity period → no decision.
        let weekday = Packet {
            day_of_week: 3,
            time: 19980603120000,
            ..pkt
        };
        let d = engine.decide(&weekday).unwrap();
        assert!(d.policies.is_empty());
        assert!(d.actions.is_empty());
    }

    #[test]
    fn engine_agrees_with_oracle_on_generated_workload() {
        let dir = qos_generate(
            QosParams {
                policies: 60,
                profiles: 25,
                periods: 10,
                actions: 8,
                refs_per_policy: 3,
                exception_rate: 0.4,
                priority_levels: 3,
            },
            11,
        );
        let (idx, pager) = engine_over(&dir);
        let engine = PolicyEngine::new(&idx, &pager, base());
        let mut rng = StdRng::seed_from_u64(99);
        let mut nonempty = 0;
        for _ in 0..40 {
            let pkt = Packet::random(&mut rng);
            let got = engine.decide(&pkt).unwrap();
            let expect = oracle_decide(&dir, &pkt);
            let g: Vec<String> = got.policies.iter().map(|e| e.dn().to_string()).collect();
            let e: Vec<String> = expect.iter().map(|e| e.dn().to_string()).collect();
            assert_eq!(g, e, "packet {pkt:?}");
            if !g.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty > 0, "workload never matched — test is vacuous");
    }

    #[test]
    fn decision_query_is_l3() {
        let dir = qos_fig12();
        let (idx, pager) = engine_over(&dir);
        let engine = PolicyEngine::new(&idx, &pager, base());
        let pkt = Packet {
            source_address: "204.178.16.5".into(),
            source_port: 80,
            time: 19980606120000,
            day_of_week: 6,
        };
        let q = engine.decision_query(&pkt);
        assert_eq!(netdir_query::classify(&q), netdir_query::Language::L3);
        // Round-trip through the parser is *semantics*-preserving (an
        // `IntCmp =` node reparses as canonical equality — same matches).
        let printed = q.to_string();
        let reparsed = netdir_query::parse_query(&printed).unwrap();
        let ev = Evaluator::new(&idx, &pager);
        let a = ev.evaluate(&q).unwrap().to_vec().unwrap();
        let b = ev.evaluate(&reparsed).unwrap().to_vec().unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
