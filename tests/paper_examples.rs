//! Every worked example from the paper, end to end on the figure data.

use netdir::apps::{PolicyEngine, TopsRouter};
use netdir::index::IndexedDirectory;
use netdir::model::{Directory, Dn, Entry};
use netdir::pager::Pager;
use netdir::query::run_query;
use netdir::workloads::qos::{action_dn, policy_dn, QOS_BASE};
use netdir::workloads::tops::{ca_dn, qhp_dn};
use netdir::workloads::{dns_fig1, qos_fig12, tops_fig11, Packet};
use netdir::workloads::tops::CallRequest;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn indexed(dir: &Directory) -> (IndexedDirectory, Pager) {
    let pager = Pager::new(2048, 32);
    let idx = IndexedDirectory::build(&pager, dir).unwrap();
    (idx, pager)
}

/// Figure 1 plus people in two subtrees — the Example 4.1/5.1 setting.
fn att_directory() -> Directory {
    let mut d = dns_fig1();
    let mut add = |e: Entry| d.insert(e).unwrap();
    for (ou, parent) in [
        ("people", "dc=att, dc=com"),
        ("people", "dc=research, dc=att, dc=com"),
    ] {
        add(Entry::builder(dn(&format!("ou={ou}, {parent}")))
            .class("organizationalUnit")
            .build()
            .unwrap());
    }
    for (uid, parent, sn) in [
        ("jag", "ou=people, dc=att, dc=com", "jagadish"),
        ("jag2", "ou=people, dc=research, dc=att, dc=com", "jagadish"),
        ("divesh", "ou=people, dc=att, dc=com", "srivastava"),
    ] {
        add(Entry::builder(dn(&format!("uid={uid}, {parent}")))
            .class("inetOrgPerson")
            .attr("surName", sn)
            .build()
            .unwrap());
    }
    d
}

#[test]
fn example_4_1_different_base_entries() {
    let (idx, pager) = indexed(&att_directory());
    let hits = run_query(
        &idx,
        &pager,
        "(- (dc=att, dc=com ? sub ? surName=jagadish) \
           (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
    )
    .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].dn(), &dn("uid=jag, ou=people, dc=att, dc=com"));
}

#[test]
fn example_5_1_children_operator() {
    let (idx, pager) = indexed(&att_directory());
    let hits = run_query(
        &idx,
        &pager,
        "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
            (dc=att, dc=com ? sub ? surName=jagadish))",
    )
    .unwrap();
    let dns: Vec<String> = hits.iter().map(|e| e.dn().to_string()).collect();
    assert_eq!(
        dns,
        vec![
            "ou=people, dc=research, dc=att, dc=com",
            "ou=people, dc=att, dc=com"
        ]
    );
}

#[test]
fn example_5_2_ancestors_operator() {
    // Traffic profiles used by network policies: profiles under an
    // ou=networkPolicies ancestor (vs. stray profiles elsewhere).
    let mut d = att_directory();
    d.insert(
        Entry::builder(dn("ou=networkPolicies, dc=research, dc=att, dc=com"))
            .class("organizationalUnit")
            .build()
            .unwrap(),
    )
    .unwrap();
    for (name, parent) in [
        ("used", "ou=networkPolicies, dc=research, dc=att, dc=com"),
        ("stray", "ou=people, dc=att, dc=com"),
    ] {
        d.insert(
            Entry::builder(dn(&format!("TPName={name}, {parent}")))
                .class("trafficProfile")
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    let (idx, pager) = indexed(&d);
    let hits = run_query(
        &idx,
        &pager,
        "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile) \
            (dc=att, dc=com ? sub ? ou=networkPolicies))",
    )
    .unwrap();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].dn().to_string().starts_with("TPName=used"));
}

#[test]
fn example_6_1_simple_aggregate_selection() {
    let (idx, pager) = indexed(&qos_fig12());
    let hits = run_query(
        &idx,
        &pager,
        "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
            count(SLAPVPRef) > 1)",
    )
    .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].dn(), &policy_dn("dso"));
}

#[test]
fn example_6_2_structural_aggregate_selection() {
    // Subscribers with more than N QHPs; figure data has 2 for jag.
    let (idx, pager) = indexed(&tops_fig11());
    let more_than_1 = run_query(
        &idx,
        &pager,
        "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber) \
            (dc=att, dc=com ? sub ? objectClass=QHP) \
            count($2) > 1)",
    )
    .unwrap();
    assert_eq!(more_than_1.len(), 1);
    let more_than_10 = run_query(
        &idx,
        &pager,
        "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber) \
            (dc=att, dc=com ? sub ? objectClass=QHP) \
            count($2) > 10)",
    )
    .unwrap();
    assert!(more_than_10.is_empty());
}

#[test]
fn example_7_1_embedded_references_full_composition() {
    // The Section 7 composite: the action of the highest-priority policy
    // governing SMTP traffic.
    let (idx, pager) = indexed(&qos_fig12());
    let hits = run_query(
        &idx,
        &pager,
        &format!(
            "(dv ({QOS_BASE} ? sub ? objectClass=SLADSAction) \
                 (g (vd ({QOS_BASE} ? sub ? objectClass=SLAPolicyRules) \
                        (& ({QOS_BASE} ? sub ? SourcePort=25) \
                           ({QOS_BASE} ? sub ? objectClass=trafficProfile)) \
                        SLATPRef) \
                    min(SLARulePriority) = min(min(SLARulePriority))) \
                 SLADSActRef)"
        ),
    )
    .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].dn(), &action_dn("allowMail"));
}

#[test]
fn example_2_1_policy_decision() {
    let dir = qos_fig12();
    let (idx, pager) = indexed(&dir);
    let engine = PolicyEngine::new(&idx, &pager, dn(QOS_BASE));
    let pkt = Packet {
        source_address: "204.178.16.5".into(),
        source_port: 80,
        time: 19980606120000,
        day_of_week: 6,
    };
    let d = engine.decide(&pkt).unwrap();
    assert_eq!(d.actions.len(), 1);
    assert_eq!(d.actions[0].dn(), &action_dn("denyAll"));
    // Agreement with the prose oracle.
    let oracle = netdir::apps::qos::oracle_decide(&dir, &pkt);
    assert_eq!(
        d.policies.iter().map(|e| e.dn()).collect::<Vec<_>>(),
        oracle.iter().map(|e| e.dn()).collect::<Vec<_>>()
    );
}

#[test]
fn example_2_2_call_routing() {
    let dir = tops_fig11();
    let (idx, pager) = indexed(&dir);
    let router = TopsRouter::new(&idx, &pager);
    let d = router
        .route(&CallRequest {
            callee: "jag".into(),
            time: 900,
            day_of_week: 4,
        })
        .unwrap();
    assert_eq!(d.qhps[0].dn(), &qhp_dn("jag", "workinghours"));
    assert_eq!(
        d.appearances[0].dn(),
        &ca_dn("jag", "workinghours", "9733608750")
    );
}

#[test]
fn figure_fragments_validate_and_print() {
    // Smoke: the three figures build, are non-trivial, display cleanly.
    for (dir, min_len) in [(dns_fig1(), 4), (qos_fig12(), 13), (tops_fig11(), 10)] {
        assert!(dir.len() >= min_len);
        for e in dir.iter_sorted() {
            let rendered = e.to_string();
            assert!(rendered.starts_with("dn: "));
            e.check_rdn_in_values().unwrap();
        }
    }
}
