//! Section 8.3 integration: distributed evaluation equals single-server
//! evaluation on every language level, across partitionings.

use netdir::model::{Directory, Dn};
use netdir::pager::Pager;
use netdir::query::parse_query;
use netdir::server::ClusterBuilder;
use netdir::workloads::qos::QOS_BASE;
use netdir::workloads::{qos_fig12, synth_forest, tops_fig11, SynthParams};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn compare_one(
    dir: &Directory,
    build: impl Fn() -> ClusterBuilder,
    home: &str,
    queries: &[String],
) {
    let single = ClusterBuilder::new().server("all", Dn::root()).build(dir);
    let multi = build().build(dir);
    assert_eq!(multi.orphaned(), 0, "partitioning dropped entries");
    for text in queries {
        let q = parse_query(text).unwrap();
        let pager = Pager::new(2048, 32);
        let a = single.query_from("all", &pager, &q).unwrap();
        let b = multi.query_from(home, &pager, &q).unwrap();
        let keys = |v: &[netdir::model::Entry]| -> Vec<String> {
            v.iter().map(|e| e.dn().to_string()).collect()
        };
        assert_eq!(keys(&a), keys(&b), "query {text} differs from single-server");
    }
}

#[test]
fn qos_directory_across_two_partitionings() {
    let dir = qos_fig12();
    let queries = vec![
        format!("({QOS_BASE} ? sub ? objectClass=SLAPolicyRules)"),
        format!(
            "(g ({QOS_BASE} ? sub ? objectClass=SLAPolicyRules) count(SLAPVPRef) > 1)"
        ),
        format!(
            "(vd ({QOS_BASE} ? sub ? objectClass=SLAPolicyRules) \
                 ({QOS_BASE} ? sub ? SourcePort=25) SLATPRef)"
        ),
        format!(
            "(c ({QOS_BASE} ? one ? objectClass=organizationalUnit) \
                ({QOS_BASE} ? sub ? objectClass=trafficProfile))"
        ),
    ];
    // Partition by entry kind (each OU its own server).
    compare_one(
        &dir,
        || {
            ClusterBuilder::new()
                .server("top", dn("dc=com"))
                .server("rules", dn(&format!("ou=SLAPolicyRules, {QOS_BASE}")))
                .server("profiles", dn(&format!("ou=trafficProfile, {QOS_BASE}")))
                .server("periods", dn(&format!("ou=policyValidityPeriod, {QOS_BASE}")))
                .server("actions", dn(&format!("ou=SLADSAction, {QOS_BASE}")))
        },
        "rules",
        &queries,
    );
    // Coarser split.
    compare_one(
        &dir,
        || {
            ClusterBuilder::new()
                .server("com", dn("dc=com"))
                .server("policies", dn(QOS_BASE))
        },
        "com",
        &queries,
    );
}

#[test]
fn tops_directory_split_by_subscriber() {
    let dir = tops_fig11();
    let base = "ou=userProfiles, dc=research, dc=att, dc=com";
    let queries = vec![
        format!("({base} ? sub ? objectClass=QHP)"),
        format!(
            "(c ({base} ? sub ? objectClass=TOPSSubscriber) \
                ({base} ? sub ? objectClass=QHP) count($2) > 1)"
        ),
        format!(
            "(p ({base} ? sub ? objectClass=callAppearance) \
                ({base} ? sub ? priority=1))"
        ),
    ];
    compare_one(
        &dir,
        || {
            ClusterBuilder::new()
                .server("top", dn("dc=com"))
                .server("jag", dn(&format!("uid=jag, {base}")))
        },
        "top",
        &queries,
    );
}

#[test]
fn synthetic_forest_random_zone_cuts() {
    let dir = synth_forest(
        SynthParams {
            entries: 300,
            max_depth: 5,
            red_fraction: 0.4,
            blue_fraction: 0.4,
        },
        21,
    );
    // Pick a couple of real subtrees as zones.
    let zones: Vec<Dn> = dir
        .iter_sorted()
        .filter(|e| e.dn().depth() == 2)
        .take(3)
        .map(|e| e.dn().clone())
        .collect();
    assert!(!zones.is_empty());
    let queries = vec![
        "(dc=synth ? sub ? kind=red)".to_string(),
        "(c (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue))".to_string(),
        "(a (dc=synth ? sub ? kind=blue) (dc=synth ? sub ? kind=red))".to_string(),
        "(g (dc=synth ? sub ? kind=red) max(weight) = max(max(weight)))".to_string(),
    ];
    compare_one(
        &dir,
        || {
            let mut b = ClusterBuilder::new().server("root", dn("dc=synth"));
            for (i, z) in zones.iter().enumerate() {
                b = b.server(format!("zone{i}"), z.clone());
            }
            b
        },
        "root",
        &queries,
    );
}
