//! Theorems 8.1 and 8.2 exercised: the language hierarchy's witnesses run
//! and behave as the separation arguments say; the `ac`/`dc` rewrites of
//! Theorem 8.2(d) compute the same answers as the plain operators (on
//! instances where every ancestor is present — see `rewrite.rs` docs).

use netdir::index::IndexedDirectory;
use netdir::model::{Directory, Dn, Entry};
use netdir::pager::Pager;
use netdir::query::ast::HierOp;
use netdir::query::rewrite::{rewrite_tree, rewrite_via_constrained};
use netdir::query::{classify, Evaluator, Language, Query};
use netdir::filter::{AtomicFilter, Scope};
use netdir::workloads::{synth_forest, SynthParams};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn indexed(dir: &Directory) -> (IndexedDirectory, Pager) {
    let pager = Pager::new(2048, 32);
    let idx = IndexedDirectory::build(&pager, dir).unwrap();
    (idx, pager)
}

#[test]
fn witnesses_run_and_classify() {
    // Build a directory where each witness query returns something.
    let mut d = Directory::new();
    let mut add = |e: Entry| d.insert(e).unwrap();
    for s in ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com"] {
        add(Entry::builder(dn(s)).class("dcObject").build().unwrap());
    }
    add(Entry::builder(dn("ou=u, dc=att, dc=com"))
        .class("organizationalUnit")
        .build()
        .unwrap());
    add(Entry::builder(dn("uid=jag, ou=u, dc=att, dc=com"))
        .class("inetOrgPerson")
        .attr("surName", "jagadish")
        .build()
        .unwrap());
    add(Entry::builder(dn("uid=sub, ou=u, dc=att, dc=com"))
        .class("TOPSSubscriber")
        .build()
        .unwrap());
    for q in 0..12 {
        add(Entry::builder(dn(&format!("QHPName=q{q}, uid=sub, ou=u, dc=att, dc=com")))
            .class("QHP")
            .build()
            .unwrap());
    }
    add(Entry::builder(dn("TPName=t, ou=u, dc=att, dc=com"))
        .class("trafficProfile")
        .build()
        .unwrap());
    add(Entry::builder(dn("SLAPolicyName=p, ou=u, dc=att, dc=com"))
        .class("SLAPolicyRules")
        .attr("SLATPRef", dn("TPName=t, ou=u, dc=att, dc=com"))
        .build()
        .unwrap());

    let (idx, pager) = indexed(&d);
    let ev = Evaluator::new(&idx, &pager);
    for (lang, query, why) in netdir::query::lang::witnesses() {
        assert_eq!(classify(&query), lang, "{why}");
        let out = ev.evaluate(&query).unwrap();
        assert!(
            !out.is_empty(),
            "witness for {lang} returned nothing ({why}): {query}"
        );
    }
}

#[test]
fn languages_strictly_ordered() {
    assert!(Language::Ldap < Language::L0);
    assert!(Language::L0 < Language::L1);
    assert!(Language::L1 < Language::L2);
    assert!(Language::L2 < Language::L3);
}

#[test]
fn theorem_8_2d_rewrites_agree_on_complete_forest() {
    // synth_forest attaches children to existing parents, so every
    // ancestor is present — the regime where the rewrite is exact.
    let dir = synth_forest(
        SynthParams {
            entries: 400,
            max_depth: 6,
            red_fraction: 0.4,
            blue_fraction: 0.4,
        },
        3,
    );
    let (idx, pager) = indexed(&dir);
    let ev = Evaluator::new(&idx, &pager);
    let red = Query::atomic(dn("dc=synth"), Scope::Sub, AtomicFilter::eq("kind", "red"));
    let blue = Query::atomic(dn("dc=synth"), Scope::Sub, AtomicFilter::eq("kind", "blue"));
    for op in [
        HierOp::Parents,
        HierOp::Children,
        HierOp::Ancestors,
        HierOp::Descendants,
    ] {
        let plain = Query::hier(op, red.clone(), blue.clone());
        let rewritten = rewrite_via_constrained(op, red.clone(), blue.clone());
        let a = ev.evaluate(&plain).unwrap().to_vec().unwrap();
        let b = ev.evaluate(&rewritten).unwrap().to_vec().unwrap();
        let keys = |v: &[Entry]| -> Vec<String> {
            v.iter().map(|e| e.dn().to_string()).collect()
        };
        assert_eq!(keys(&a), keys(&b), "{op:?} rewrite disagrees");
        assert!(!a.is_empty() || op == HierOp::Parents, "{op:?} vacuous");
    }
}

#[test]
fn rewrite_tree_preserves_semantics_but_grows_cost() {
    let dir = synth_forest(SynthParams::default(), 5);
    let (idx, pager) = indexed(&dir);
    let ev = Evaluator::new(&idx, &pager);
    let red = Query::atomic(dn("dc=synth"), Scope::Sub, AtomicFilter::eq("kind", "red"));
    let blue = Query::atomic(dn("dc=synth"), Scope::Sub, AtomicFilter::eq("kind", "blue"));
    let q = Query::hier(HierOp::Parents, red, blue);
    let rw = rewrite_tree(&q);

    pager.reset_io();
    let a = ev.evaluate(&q).unwrap().to_vec().unwrap();
    let plain_io = pager.io().total();
    pager.reset_io();
    let b = ev.evaluate(&rw).unwrap().to_vec().unwrap();
    let rewrite_io = pager.io().total();

    assert_eq!(a, b);
    // §8.1: the rewrite's third operand is the whole directory → its
    // evaluation must be strictly more expensive.
    assert!(
        rewrite_io > plain_io,
        "rewrite I/O {rewrite_io} not above plain {plain_io}"
    );
}

#[test]
fn ldap_cannot_mix_bases_but_l0_can() {
    // The operational content of LDAP ⊂ L0: the one-base-one-scope
    // baseline returns a superset that the application must post-process;
    // the L0 difference query answers directly.
    let mut d = Directory::new();
    for s in ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com"] {
        d.insert(Entry::builder(dn(s)).class("dcObject").build().unwrap())
            .unwrap();
    }
    for (uid, parent) in [
        ("a", "dc=att, dc=com"),
        ("b", "dc=research, dc=att, dc=com"),
    ] {
        d.insert(
            Entry::builder(dn(&format!("uid={uid}, {parent}")))
                .class("person")
                .attr("surName", "jagadish")
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    let (idx, pager) = indexed(&d);
    // Baseline: any single base covering uid=a also covers uid=b.
    let ldap = netdir::filter::LdapQuery::new(
        dn("dc=att, dc=com"),
        Scope::Sub,
        netdir::filter::CompositeFilter::atomic(AtomicFilter::eq("surName", "jagadish")),
    );
    let baseline = idx.evaluate_ldap(&ldap).unwrap();
    assert_eq!(baseline.len(), 2, "baseline over-returns");
    // L0 answers exactly.
    let exact = netdir::query::run_query(
        &idx,
        &pager,
        "(- (dc=att, dc=com ? sub ? surName=jagadish) \
           (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
    )
    .unwrap();
    assert_eq!(exact.len(), 1);
}
