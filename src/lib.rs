//! # netdir — Querying Network Directories
//!
//! A from-scratch Rust implementation of the data model, query languages
//! (L0–L3), and I/O-efficient external-memory evaluation algorithms of
//!
//! > H. V. Jagadish, L. V. S. Lakshmanan, T. Milo, D. Srivastava, D. Vista.
//! > *Querying Network Directories*. SIGMOD 1999.
//!
//! This crate is a facade: it re-exports the public API of every workspace
//! crate under stable module names. See `README.md` for a tour and
//! `DESIGN.md` for the system inventory.
//!
//! ```
//! use netdir::model::{Dn, Directory};
//! let dn = Dn::parse("dc=att, dc=com").unwrap();
//! assert_eq!(dn.depth(), 2);
//! ```

/// Observability: metrics registry, injectable clocks, query traces.
pub use netdir_obs as obs;

/// External-memory substrate: pages, buffer pool, I/O ledger, lists,
/// stacks, external sort.
pub use netdir_pager as pager;

/// The directory data model: DNs, schemas, entries, the directory forest.
pub use netdir_model as model;

/// Atomic filters and the baseline LDAP query language.
pub use netdir_filter as filter;

/// Indices backing efficient atomic-query evaluation.
pub use netdir_index as index;

/// The query languages L0–L3 and their evaluation engine.
pub use netdir_query as query;

/// Directory servers, delegation, and distributed evaluation.
pub use netdir_server as server;

/// TCP wire protocol: framed codec, the `netdird` daemon machinery,
/// the `WireClient` library, and the socket transport.
pub use netdir_wire as wire;

/// Seeded workload generators (Figures 1, 11, 12 and scalable variants).
pub use netdir_workloads as workloads;

/// The two DEN applications: QoS policy decisions and TOPS call routing.
pub use netdir_apps as apps;
