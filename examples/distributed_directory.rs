//! Distributed evaluation across delegated servers (Section 8.3).
//!
//! ```sh
//! cargo run --example distributed_directory
//! ```
//!
//! Splits one namespace across four servers DNS-style, then runs the same
//! queries from different home servers, printing what each evaluation
//! shipped over the simulated network — including the Example 4.1
//! comparison against the LDAP baseline (two round-trips plus client-side
//! difference).

use netdir::filter::{parse_composite, Scope};
use netdir::model::{Directory, Dn, Entry};
use netdir::pager::Pager;
use netdir::query::parse_query;
use netdir::server::ClusterBuilder;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn build_directory() -> Directory {
    let mut d = Directory::new();
    let mut add = |s: &str, sn: Option<&str>| {
        let mut b = Entry::builder(dn(s)).class("thing");
        if let Some(sn) = sn {
            b = b.attr("surName", sn).class("person");
        }
        d.insert(b.build().unwrap()).unwrap();
    };
    add("dc=com", None);
    add("dc=att, dc=com", None);
    add("ou=people, dc=att, dc=com", None);
    add("dc=research, dc=att, dc=com", None);
    add("ou=people, dc=research, dc=att, dc=com", None);
    add("dc=org", None);
    for i in 0..12 {
        let (parent, sn) = if i % 3 == 0 {
            ("ou=people, dc=research, dc=att, dc=com", "jagadish")
        } else if i % 3 == 1 {
            ("ou=people, dc=att, dc=com", "jagadish")
        } else {
            ("ou=people, dc=att, dc=com", "srivastava")
        };
        add(&format!("uid=u{i}, {parent}"), Some(sn));
    }
    d
}

fn main() {
    let dir = build_directory();
    let cluster = ClusterBuilder::new()
        .server("root", dn("dc=com"))
        .server("att", dn("dc=att, dc=com"))
        .server("research", dn("dc=research, dc=att, dc=com"))
        .server("org", dn("dc=org"))
        .build(&dir);
    println!("cluster: {} servers, {} entries total", cluster.num_servers(), dir.len());
    for (ctx, id) in cluster.delegation().contexts() {
        println!(
            "   server {:<9} owns {:<35} ({} entries)",
            cluster.node(id).config.name,
            ctx.to_string(),
            cluster.node(id).num_entries
        );
    }

    let q41 = parse_query(
        "(- (dc=att, dc=com ? sub ? surName=jagadish) \
           (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
    )
    .unwrap();

    println!("\n── Example 4.1 posed to each server ──");
    for home in ["att", "research", "org"] {
        let pager = Pager::new(2048, 32);
        cluster.net().reset();
        let hits = cluster.query_from(home, &pager, &q41).expect("query");
        println!(
            "from {:<9}: {} answers, network: {}",
            home,
            hits.len(),
            cluster.net().snapshot()
        );
    }

    println!("\n── the LDAP workaround for Example 4.1 ──");
    // The baseline language has one base and one scope, so the
    // application must pose two queries and difference them itself.
    let filter = parse_composite("(surName=jagadish)").unwrap();
    cluster.net().reset();
    let att_all = cluster
        .node(cluster.server_id("att").unwrap())
        .ldap(&dn("dc=att, dc=com"), Scope::Sub, &filter)
        .unwrap();
    let research_all = cluster
        .node(cluster.server_id("research").unwrap())
        .ldap(&dn("dc=research, dc=att, dc=com"), Scope::Sub, &filter)
        .unwrap();
    let client_side: Vec<_> = att_all
        .iter()
        .filter(|e| research_all.iter().all(|r| r.dn() != e.dn()))
        .collect();
    println!(
        "two LDAP searches returned {} + {} entries; client-side diff → {}",
        att_all.len(),
        research_all.len(),
        client_side.len()
    );
    println!(
        "(the L0 query shipped only what the operators needed and \
         computed the difference at the server)"
    );

    println!("\n── an L1 query crossing zone cuts ──");
    let q = parse_query(
        "(c (dc=com ? sub ? objectClass=thing) \
            (null-dn ? sub ? surName=jagadish))",
    )
    .unwrap();
    let pager = Pager::new(2048, 32);
    cluster.net().reset();
    let hits = cluster.query_from("root", &pager, &q).expect("query");
    println!("entries with a jagadish child: {}", hits.len());
    for e in &hits {
        println!("   {}", e.dn());
    }
    println!("network: {}", cluster.net().snapshot());
}
