//! A tiny query shell over a generated directory.
//!
//! ```sh
//! echo '(dc=synth ? sub ? kind=red)' | cargo run --example query_shell
//! cargo run --example query_shell          # runs a scripted demo
//! ```
//!
//! Reads one query per line from stdin (if piped) and evaluates it
//! against a 2 000-entry synthetic forest, printing language level,
//! answers, and I/O. With no piped input it runs a scripted set.

use netdir::index::IndexedDirectory;
use netdir::pager::Pager;
use netdir::query::{classify, parse_query, Evaluator};
use netdir::workloads::{synth_forest, SynthParams};
use std::io::{BufRead, IsTerminal};

fn main() {
    let dir = synth_forest(
        SynthParams {
            entries: 2000,
            max_depth: 6,
            red_fraction: 0.3,
            blue_fraction: 0.3,
        },
        1,
    );
    let pager = Pager::new(4096, 64);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    println!(
        "loaded {} entries under dc=synth (attributes: kind ∈ {{red, blue}}, weight 0..100)",
        dir.len()
    );

    let scripted = [
        "(dc=synth ? one ? objectClass=node)".to_string(),
        "(& (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue))".to_string(),
        "(c (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue))".to_string(),
        "(g (dc=synth ? sub ? kind=red) max(weight) = max(max(weight)))".to_string(),
        "(d (dc=synth ? sub ? kind=red) (dc=synth ? sub ? kind=blue) count($2) > 5)"
            .to_string(),
    ];

    let stdin = std::io::stdin();
    let lines: Vec<String> = if stdin.is_terminal() {
        println!("(no piped input — running the scripted demo)\n");
        scripted.to_vec()
    } else {
        stdin.lock().lines().map_while(Result::ok).collect()
    };

    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        println!("query> {line}");
        let query = match parse_query(line) {
            Ok(q) => q,
            Err(e) => {
                println!("   parse error: {e}\n");
                continue;
            }
        };
        println!("   language: {}", classify(&query));
        pager.reset_io();
        match Evaluator::new(&idx, &pager).evaluate(&query) {
            Ok(result) => {
                let hits = result.to_vec().expect("materialize");
                println!("   {} entries, I/O: {}", hits.len(), pager.io());
                for e in hits.iter().take(5) {
                    println!("      {}", e.dn());
                }
                if hits.len() > 5 {
                    println!("      … {} more", hits.len() - 5);
                }
            }
            Err(e) => println!("   evaluation error: {e}"),
        }
        println!();
    }
}
