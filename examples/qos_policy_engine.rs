//! The QoS policy decision engine of Example 2.1, end to end.
//!
//! ```sh
//! cargo run --example qos_policy_engine
//! ```
//!
//! Loads the Figure 12 policy directory plus a generated repository,
//! then plays enforcement entity: packets arrive, the engine compiles
//! each into one L3 query (profile match → validity match → top priority
//! → exception suppression → action dereference) and prints the decision.

use netdir::apps::PolicyEngine;
use netdir::index::IndexedDirectory;
use netdir::model::Dn;
use netdir::pager::Pager;
use netdir::query::classify;
use netdir::workloads::qos::QOS_BASE;
use netdir::workloads::{qos_fig12, qos_generate, Packet, QosParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn describe(decision: &netdir::apps::PolicyDecision) {
    if decision.policies.is_empty() {
        println!("   → no policy applies (default handling)");
        return;
    }
    for p in &decision.policies {
        println!(
            "   → policy  {} (priority {})",
            p.dn().rdn().unwrap(),
            p.first_int(&"SLARulePriority".into()).unwrap_or(-1)
        );
    }
    for a in &decision.actions {
        println!(
            "   → action  {}: {} (peak rate {})",
            a.dn().rdn().unwrap(),
            a.first_str(&"DSPermission".into()).unwrap_or("?"),
            a.first_int(&"DSInProfilePeakRate".into()).unwrap_or(-1),
        );
    }
}

fn main() {
    println!("═══ Figure 12 fragment ═══");
    let dir = qos_fig12();
    let pager = Pager::new(2048, 32);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    let engine = PolicyEngine::new(&idx, &pager, Dn::parse(QOS_BASE).unwrap());

    let scenarios = [
        (
            "Saturday data packet from 204.178.16.5 (the dso profile)",
            Packet {
                source_address: "204.178.16.5".into(),
                source_port: 80,
                time: 19980606120000,
                day_of_week: 6,
            },
        ),
        (
            "Same packet but SMTP (port 25) — the mail exception fires",
            Packet {
                source_address: "204.178.16.5".into(),
                source_port: 25,
                time: 19980606120000,
                day_of_week: 6,
            },
        ),
        (
            "Wednesday packet — outside every validity period",
            Packet {
                source_address: "204.178.16.5".into(),
                source_port: 80,
                time: 19980603120000,
                day_of_week: 3,
            },
        ),
    ];
    for (what, pkt) in &scenarios {
        println!("\npacket: {what}");
        let d = engine.decide(pkt).expect("decision");
        describe(&d);
    }

    // Show the compiled query once, for flavour.
    let q = engine.decision_query(&scenarios[0].1);
    println!(
        "\nthe decision compiles to one {} query of {} nodes",
        classify(&q),
        q.num_nodes()
    );

    println!("\n═══ Generated repository (200 policies) ═══");
    let dir = qos_generate(
        QosParams {
            policies: 200,
            profiles: 60,
            periods: 16,
            actions: 10,
            ..QosParams::default()
        },
        2026,
    );
    let pager = Pager::new(4096, 64);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    let engine = PolicyEngine::new(&idx, &pager, Dn::parse(QOS_BASE).unwrap());
    let mut rng = StdRng::seed_from_u64(7);
    let mut decided = 0;
    for i in 0..10 {
        let pkt = Packet::random(&mut rng);
        println!(
            "\npacket {i}: {} port {} day {}",
            pkt.source_address, pkt.source_port, pkt.day_of_week
        );
        let d = engine.decide(&pkt).expect("decision");
        describe(&d);
        if !d.policies.is_empty() {
            decided += 1;
        }
    }
    println!("\n{decided}/10 packets matched some policy");
}
