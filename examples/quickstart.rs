//! Quickstart: build a directory, run queries from every language level.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Reproduces the paper's running examples on a small AT&T-style
//! directory: Example 4.1 (L0 set difference across base DNs),
//! Example 5.1 (children), Example 5.3 (path-constrained descendants),
//! Example 6.1 (simple aggregate selection), and an L3 reference join —
//! printing each query, its language level, its answer, and the I/O it
//! cost.

use netdir::index::IndexedDirectory;
use netdir::model::{Directory, Dn, Entry};
use netdir::query::{classify, parse_query, Evaluator};
use netdir::workloads::dns_fig1;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// Extend the Figure 1 fragment with people, OUs, profiles and policies
/// so every example has data to chew on.
fn build_directory() -> Directory {
    let mut d = dns_fig1();
    let mut add = |e: Entry| d.insert(e).unwrap();

    for (ou, parent) in [
        ("people", "dc=att, dc=com"),
        ("people", "dc=research, dc=att, dc=com"),
        ("networkPolicies", "dc=research, dc=att, dc=com"),
    ] {
        add(Entry::builder(dn(&format!("ou={ou}, {parent}")))
            .class("organizationalUnit")
            .build()
            .unwrap());
    }
    for (uid, parent, sn) in [
        ("jag", "ou=people, dc=att, dc=com", "jagadish"),
        ("jag2", "ou=people, dc=research, dc=att, dc=com", "jagadish"),
        ("divesh", "ou=people, dc=att, dc=com", "srivastava"),
        ("tova", "ou=people, dc=research, dc=att, dc=com", "milo"),
    ] {
        add(Entry::builder(dn(&format!("uid={uid}, {parent}")))
            .class("inetOrgPerson")
            .attr("surName", sn)
            .build()
            .unwrap());
    }
    add(Entry::builder(dn(
        "TPName=smtp, ou=networkPolicies, dc=research, dc=att, dc=com",
    ))
    .class("trafficProfile")
    .attr("sourcePort", 25i64)
    .build()
    .unwrap());
    add(Entry::builder(dn(
        "SLAPolicyName=mail, ou=networkPolicies, dc=research, dc=att, dc=com",
    ))
    .class("SLAPolicyRules")
    .attr("SLARulePriority", 1i64)
    .attr_values("SLAPVPRef", [dn("PVPName=wk, ou=networkPolicies, dc=research, dc=att, dc=com"), dn("PVPName=tg, ou=networkPolicies, dc=research, dc=att, dc=com")])
    .attr(
        "SLATPRef",
        dn("TPName=smtp, ou=networkPolicies, dc=research, dc=att, dc=com"),
    )
    .build()
    .unwrap());
    d
}

fn main() {
    let dir = build_directory();
    println!("directory: {} entries\n", dir.len());

    let pager = netdir::pager::Pager::new(1024, 16);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index build");

    let examples: &[(&str, &str)] = &[
        (
            "Example 4.1 — jagadish in AT&T but not Research (needs L0's \
             per-operand base DNs; a single LDAP query cannot say this)",
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        ),
        (
            "Example 5.1 — organizational units directly containing a \
             jagadish entry",
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        ),
        (
            "Example 5.3 — subnets with SMTP traffic profiles and no \
             intervening subnet",
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (& (dc=att, dc=com ? sub ? sourcePort=25) \
                    (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        ),
        (
            "Example 6.1 — policy rules with more than one validity period",
            "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                count(SLAPVPRef) > 1)",
        ),
        (
            "L3 — policies referencing an SMTP traffic profile",
            "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                 (dc=att, dc=com ? sub ? sourcePort=25) \
                 SLATPRef)",
        ),
    ];

    for (title, text) in examples {
        let query = parse_query(text).expect("paper example parses");
        println!("── {title}");
        println!("   query   : {query}");
        println!("   language: {}", classify(&query));
        pager.reset_io();
        let (result, _) = Evaluator::new(&idx, &pager)
            .evaluate_traced(&query)
            .expect("evaluation");
        let hits = result.to_vec().expect("materialize");
        println!("   answer  : {} entries", hits.len());
        for e in &hits {
            println!("             {}", e.dn());
        }
        println!("   I/O     : {}\n", pager.io());
    }
}
