//! Interchange and introspection: round-trip a directory through LDIF,
//! then EXPLAIN a query plan — statically and with measured per-node
//! costs.
//!
//! ```sh
//! cargo run --example ldif_and_explain
//! ```

use netdir::index::IndexedDirectory;
use netdir::model::ldif::{directory_from_ldif, directory_to_ldif};
use netdir::pager::Pager;
use netdir::query::explain::{explain, explain_traced};
use netdir::query::parse_query;
use netdir::workloads::{qos_fig12, qos_schema, validate_directory};

fn main() {
    // 1. Export Figure 12 as typed LDIF.
    let dir = qos_fig12();
    let text = directory_to_ldif(&dir);
    println!("── Figure 12 as LDIF ({} bytes) ──", text.len());
    for line in text.lines().take(14) {
        println!("{line}");
    }
    println!("… ({} entries total)\n", dir.len());

    // 2. Re-import and verify nothing was lost, including schema validity.
    let back = directory_from_ldif(&text).expect("LDIF parses back");
    assert_eq!(back.len(), dir.len());
    validate_directory(&back, &qos_schema()).expect("round-trip conforms to the SLA schema");
    println!("re-imported {} entries; SLA schema validation passed\n", back.len());

    // 3. EXPLAIN the Section 7 composite query.
    let q = parse_query(&format!(
        "(dv ({base} ? sub ? objectClass=SLADSAction) \
             (g (vd ({base} ? sub ? objectClass=SLAPolicyRules) \
                    (& ({base} ? sub ? SourcePort=25) \
                       ({base} ? sub ? objectClass=trafficProfile)) \
                    SLATPRef) \
                min(SLARulePriority) = min(min(SLARulePriority))) \
             SLADSActRef)",
        base = "ou=networkPolicies, dc=research, dc=att, dc=com"
    ))
    .expect("the paper's Example 7.1 composite parses");

    println!("── static plan ──");
    print!("{}", explain(&q));

    // 4. Run it with per-node measurement.
    let pager = Pager::new(2048, 32);
    let idx = IndexedDirectory::build(&pager, &back).expect("index");
    let (result, annotated) = explain_traced(&idx, &pager, &q).expect("evaluation");
    println!("\n── measured plan ──");
    print!("{annotated}");
    println!("\nanswer:");
    for e in result.to_vec().expect("materialize") {
        println!("  {}", e.dn());
    }
}
