//! TOPS dial-by-name call routing (Example 2.2), end to end.
//!
//! ```sh
//! cargo run --example tops_call_routing
//! ```
//!
//! Loads the Figure 11 subscriber data and routes calls at different
//! times: the highest-priority matching query handling profile wins and
//! its call appearances come back in trial order.

use netdir::apps::TopsRouter;
use netdir::index::IndexedDirectory;
use netdir::pager::Pager;
use netdir::workloads::tops::CallRequest;
use netdir::workloads::{tops_fig11, tops_generate, TopsParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn show(router: &TopsRouter, req: &CallRequest, what: &str) {
    println!("\ncall {what}: uid={} at {:04} on day {}", req.callee, req.time, req.day_of_week);
    let d = router.route(req).expect("routing");
    if d.qhps.is_empty() {
        println!("   → unreachable (no QHP matches)");
        return;
    }
    for q in &d.qhps {
        println!(
            "   → QHP {} (priority {})",
            q.dn().rdn().unwrap(),
            q.first_int(&"priority".into()).unwrap_or(-1)
        );
    }
    for ca in &d.appearances {
        println!(
            "   → try {} ({}, timeout {}s)",
            ca.first_str(&"CANumber".into()).unwrap_or("?"),
            ca.first_str(&"CAType".into()).unwrap_or("?"),
            ca.first_int(&"timeOut".into()).unwrap_or(-1),
        );
    }
}

fn main() {
    println!("═══ Figure 11: subscriber jag ═══");
    let dir = tops_fig11();
    let pager = Pager::new(2048, 32);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    let router = TopsRouter::new(&idx, &pager);

    show(
        &router,
        &CallRequest { callee: "jag".into(), time: 1000, day_of_week: 2 },
        "Tuesday 10:00 (working hours)",
    );
    show(
        &router,
        &CallRequest { callee: "jag".into(), time: 1200, day_of_week: 6 },
        "Saturday noon (weekend QHP wins by priority)",
    );
    show(
        &router,
        &CallRequest { callee: "jag".into(), time: 2300, day_of_week: 2 },
        "Tuesday 23:00 (nothing matches)",
    );

    println!("\n═══ Generated population ═══");
    let params = TopsParams { subscribers: 50, qhps_per_subscriber: 4, cas_per_qhp: 3 };
    let dir = tops_generate(params, 99);
    println!("{} entries for {} subscribers", dir.len(), params.subscribers);
    let pager = Pager::new(4096, 64);
    let idx = IndexedDirectory::build(&pager, &dir).expect("index");
    let router = TopsRouter::new(&idx, &pager);
    let mut rng = StdRng::seed_from_u64(4);
    let mut reached = 0;
    for i in 0..8 {
        let req = CallRequest::random(&mut rng, params.subscribers);
        show(&router, &req, &format!("#{i}"));
        if !router.route(&req).unwrap().appearances.is_empty() {
            reached += 1;
        }
    }
    println!("\n{reached}/8 calls reached a terminal");
}
