#!/bin/sh
# Full pre-merge gate: release build, the whole test suite, and clippy
# with warnings promoted to errors. Run from anywhere in the repo.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings

echo "check.sh: all green"
