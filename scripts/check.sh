#!/bin/sh
# Full pre-merge gate: release build, the whole test suite, and clippy
# (all targets, warnings promoted to errors). Run from anywhere in the
# repo.
#
#   scripts/check.sh                the gate
#   scripts/check.sh --chaos        gate + the seeded fault-injection
#                                   suites run explicitly (they are part
#                                   of `cargo test` too; this names them
#                                   for a loud, separate verdict)
#   scripts/check.sh --bench-smoke  gate + the instrumented benchmark
#                                   smoke suite: emits target/
#                                   BENCH_smoke.json and validates its
#                                   schema and tracked-metric coverage
#   scripts/check.sh --par-smoke    gate + the parallel-evaluation
#                                   guards run explicitly: determinism
#                                   property tests, the buffer-pool
#                                   concurrency hammer, and a degree
#                                   sweep landing in target/
#                                   BENCH_smoke.json (schema validated)
#   scripts/check.sh --wal-smoke    gate + the write-path guards run
#                                   explicitly: the crash-recovery
#                                   torture suite (WAL truncated at
#                                   every byte), the snapshot-isolation
#                                   property suite, and the journal
#                                   unit tests
#   scripts/check.sh --load-smoke   gate + the overload guards run
#                                   explicitly: the daemon's admission/
#                                   deadline tests, the overload chaos
#                                   determinism suite, and the closed-
#                                   loop load sweep landing in target/
#                                   BENCH_smoke.json (schema validated,
#                                   shedding invariants asserted)
set -eu
cd "$(dirname "$0")/.."

chaos=0
bench_smoke=0
par_smoke=0
wal_smoke=0
load_smoke=0
for arg in "$@"; do
  case "$arg" in
    --chaos) chaos=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --par-smoke) par_smoke=1 ;;
    --wal-smoke) wal_smoke=1 ;;
    --load-smoke) load_smoke=1 ;;
    *) echo "check.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

if [ "$chaos" = 1 ]; then
  echo "check.sh: running seeded fault-injection suites"
  cargo test -q -p netdir-server fault
  cargo test -q -p netdir-server retry
  cargo test -q -p netdir-server health
  cargo test -q -p netdir-wire --test chaos
fi

if [ "$bench_smoke" = 1 ]; then
  echo "check.sh: running instrumented benchmark smoke suite"
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$par_smoke" = 1 ]; then
  echo "check.sh: running parallel-evaluation guards"
  cargo test -q -p netdir-query --test parallel_prop
  cargo test -q -p netdir-pager --test concurrent_pool
  cargo test -q -p netdir-pager par
  cargo test -q -p netdir-bench smoke_sweep
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$wal_smoke" = 1 ]; then
  echo "check.sh: running write-path guards"
  cargo test -q -p netdir-journal
  cargo test -q -p netdir-journal --test recovery_torture
  cargo test -q -p netdir-journal --test snapshot_prop
  cargo test -q -p netdir-bench mutation
fi

if [ "$load_smoke" = 1 ]; then
  echo "check.sh: running overload guards"
  cargo test -q -p netdir-server admission
  cargo test -q -p netdir-wire --lib
  cargo test -q -p netdir-wire --test chaos admission_under_chaos
  cargo test -q --release -p netdir-bench --lib load
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

echo "check.sh: all green"
