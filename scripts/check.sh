#!/bin/sh
# Full pre-merge gate: release build, the whole test suite, clippy
# (all targets, warnings promoted to errors), and ndlint (the workspace
# invariant linter — see DESIGN.md §11). Run from anywhere in the repo.
#
#   scripts/check.sh                the gate
#   scripts/check.sh --chaos        gate + the seeded fault-injection
#                                   suites run explicitly (they are part
#                                   of `cargo test` too; this names them
#                                   for a loud, separate verdict)
#   scripts/check.sh --bench-smoke  gate + the instrumented benchmark
#                                   smoke suite: emits target/
#                                   BENCH_smoke.json and validates its
#                                   schema and tracked-metric coverage
#   scripts/check.sh --par-smoke    gate + the parallel-evaluation
#                                   guards run explicitly: determinism
#                                   property tests, the buffer-pool
#                                   concurrency hammer, and a degree
#                                   sweep landing in target/
#                                   BENCH_smoke.json (schema validated)
#   scripts/check.sh --wal-smoke    gate + the write-path guards run
#                                   explicitly: the crash-recovery
#                                   torture suite (WAL truncated at
#                                   every byte), the snapshot-isolation
#                                   property suite, and the journal
#                                   unit tests
#   scripts/check.sh --load-smoke   gate + the overload guards run
#                                   explicitly: the daemon's admission/
#                                   deadline tests, the overload chaos
#                                   determinism suite, and the closed-
#                                   loop load sweep landing in target/
#                                   BENCH_smoke.json (schema validated,
#                                   shedding invariants asserted)
#   scripts/check.sh --planner-smoke  gate + the cost-based planner
#                                   guards run explicitly: the planner
#                                   unit tests, the randomized
#                                   byte-identity/ledger property suite,
#                                   and the chosen-vs-naive sweep landing
#                                   in target/BENCH_smoke.json (schema
#                                   validated, planner section included)
#   scripts/check.sh --storage-smoke  gate + the storage-engine guards
#                                   run explicitly: the buffer-pool unit
#                                   tests (two-queue policy, the
#                                   eviction no-full-scan regression),
#                                   the seeded scan-resistance suite,
#                                   and the compression/scan-mix sweep
#                                   landing in target/BENCH_smoke.json
#                                   (schema validated, the ≥20%
#                                   cold-read reduction and the scan-mix
#                                   hit-rate win asserted)
#   scripts/check.sh --analysis     gate + the static/dynamic analysis
#                                   suites run explicitly: the ndlint
#                                   fixture tests (each lint proven to
#                                   fire) and the exhaustive-interleaving
#                                   model of the buffer pool's
#                                   loading-frame protocol. ndlint itself
#                                   is always part of the default gate.
#   scripts/check.sh --sanitize     nightly-only dynamic analysis:
#                                   concurrency suites under
#                                   ThreadSanitizer and codec proptests
#                                   under Miri. Each job probes for its
#                                   toolchain component and skips with a
#                                   message when unavailable (this
#                                   container's nightly has neither
#                                   rust-src nor miri); intended for the
#                                   nightly CI lane, not the default
#                                   gate.
set -eu
cd "$(dirname "$0")/.."

chaos=0
bench_smoke=0
par_smoke=0
wal_smoke=0
load_smoke=0
planner_smoke=0
storage_smoke=0
analysis=0
sanitize=0
for arg in "$@"; do
  case "$arg" in
    --chaos) chaos=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --par-smoke) par_smoke=1 ;;
    --wal-smoke) wal_smoke=1 ;;
    --load-smoke) load_smoke=1 ;;
    --planner-smoke) planner_smoke=1 ;;
    --storage-smoke) storage_smoke=1 ;;
    --analysis) analysis=1 ;;
    --sanitize) sanitize=1 ;;
    *) echo "check.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# The invariant linter is part of the default gate: clock discipline,
# wire-tag freeze, metric-name registry, no-lock-across-io, panic-path.
cargo run --release -q -p netdir-analysis --bin ndlint

if [ "$chaos" = 1 ]; then
  echo "check.sh: running seeded fault-injection suites"
  cargo test -q -p netdir-server fault
  cargo test -q -p netdir-server retry
  cargo test -q -p netdir-server health
  cargo test -q -p netdir-wire --test chaos
fi

if [ "$bench_smoke" = 1 ]; then
  echo "check.sh: running instrumented benchmark smoke suite"
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$par_smoke" = 1 ]; then
  echo "check.sh: running parallel-evaluation guards"
  cargo test -q -p netdir-query --test parallel_prop
  cargo test -q -p netdir-pager --test concurrent_pool
  cargo test -q -p netdir-pager par
  cargo test -q -p netdir-bench smoke_sweep
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$wal_smoke" = 1 ]; then
  echo "check.sh: running write-path guards"
  cargo test -q -p netdir-journal
  cargo test -q -p netdir-journal --test recovery_torture
  cargo test -q -p netdir-journal --test snapshot_prop
  cargo test -q -p netdir-bench mutation
fi

if [ "$load_smoke" = 1 ]; then
  echo "check.sh: running overload guards"
  cargo test -q -p netdir-server admission
  cargo test -q -p netdir-wire --lib
  cargo test -q -p netdir-wire --test chaos admission_under_chaos
  cargo test -q --release -p netdir-bench --lib load
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$planner_smoke" = 1 ]; then
  echo "check.sh: running cost-based planner guards"
  cargo test -q -p netdir-query planner
  cargo test -q -p netdir-query --test planner_prop
  cargo test -q --release -p netdir-bench --lib planner
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$storage_smoke" = 1 ]; then
  echo "check.sh: running storage-engine guards"
  cargo test -q -p netdir-pager --lib
  cargo test -q -p netdir-pager --test scan_resistance
  cargo test -q --release -p netdir-bench --lib storage
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --smoke --json target/BENCH_smoke.json
  cargo run --release -q -p netdir-bench --bin run_experiments -- \
    --validate target/BENCH_smoke.json
fi

if [ "$analysis" = 1 ]; then
  echo "check.sh: running analysis suites"
  # Every lint fires on its committed bad fixture; the real tree is clean.
  cargo test -q -p netdir-analysis --test lints_fire
  # The loading-frame protocol survives every interleaving (and the
  # checker catches the planted check-then-read bug).
  cargo test -q -p netdir-analysis model
  # The wire-tag freeze, re-checked dynamically against the lockfile.
  cargo test -q -p netdir-wire every_tag_round_trips
fi

if [ "$sanitize" = 1 ]; then
  echo "check.sh: running sanitizer jobs (nightly-only)"
  if rustup toolchain list 2>/dev/null | grep -q nightly; then
    # TSan needs -Zbuild-std, which needs the rust-src component.
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src (installed)'; then
      echo "check.sh: ThreadSanitizer over the concurrency suites"
      RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
        -Zbuild-std --target x86_64-unknown-linux-gnu \
        -p netdir-pager --test concurrent_pool
    else
      echo "check.sh: SKIP ThreadSanitizer (nightly rust-src not installed;" \
           "run: rustup component add rust-src --toolchain nightly)"
    fi
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'miri (installed)'; then
      echo "check.sh: Miri over the codec property tests"
      cargo +nightly miri test -q -p netdir-wire codec
    else
      echo "check.sh: SKIP Miri (not installed;" \
           "run: rustup component add miri --toolchain nightly)"
    fi
  else
    echo "check.sh: SKIP sanitizers (no nightly toolchain installed)"
  fi
fi

echo "check.sh: all green"
